"""Shared plumbing for the benchmark harnesses and the CI bench gate.

``bench_kernel.py`` and ``bench_campaign.py`` used to duplicate the src/
path bootstrap, the best-of timing loop, the report header and the report
I/O; ``compare_bench.py`` (the CI regression gate) needs the same report
schema knowledge.  All of it lives here once.

None of these helpers import ``repro`` — call :func:`bootstrap_src` first,
then import the simulator from the harness itself.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

#: Scenario-name prefix of the tracked campaign wall-clock: the
#: low-contention runs are the regression-gated ones (the batch interpreter
#: and the event queue must keep winning there; the memory-latency-bound
#: contention runs are expected to sit near 1x).
TRACKED_PREFIX = "low_contention/"

#: Regression gate: a gated mode may not be more than this factor slower
#: than its same-process baseline on any tracked scenario, and a tracked
#: scenario's normalised throughput may not fall below baseline/factor.
REGRESSION_FACTOR = 1.2


def bootstrap_src() -> None:
    """Put the checkout's ``src/`` on ``sys.path`` (idempotent)."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


@dataclass(frozen=True)
class BenchScenario:
    """One benchmarked configuration of the paper's campaign grid."""

    name: str
    runner: Callable[..., Any]
    config: Any
    workload: Any

    @property
    def tracked(self) -> bool:
        """Whether this scenario is part of the regression gate."""
        return self.name.startswith(TRACKED_PREFIX)


def report_header(benchmark: str) -> dict[str, Any]:
    """The fields every report starts with (environment provenance)."""
    return {
        "benchmark": benchmark,
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def time_best(fn: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """Best-of-``repeats`` wall time of ``fn`` plus its last result."""
    best = float("inf")
    result: Any = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def write_report(path: Path, report: dict[str, Any]) -> None:
    """Write ``report`` as pretty JSON and announce it."""
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {path}")


def load_report(path: Path) -> dict[str, Any]:
    """Load a benchmark report written by :func:`write_report`."""
    return json.loads(Path(path).read_text())


def tracked_scenarios(report: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """The gated subset of a kernel report's ``scenarios`` section."""
    return {
        name: entry
        for name, entry in report.get("scenarios", {}).items()
        if name.startswith(TRACKED_PREFIX)
    }
