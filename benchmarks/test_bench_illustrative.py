"""Benchmark: the Section II illustrative example.

Paper numbers (analytical): a task with 1,000 six-cycle requests and a
10,000-cycle isolation time suffers a 9.4x slowdown against three 28-cycle
streaming contenders under request-fair arbitration, and 2.8x under
cycle-fair arbitration.  The benchmark regenerates both the analytical values
and the cycle-accurate simulation of the same scenario (request-fair =
random permutations, cycle-fair = CBA over random permutations).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.bounds import ContentionScenario
from repro.experiments.illustrative import run_illustrative_example

def run_and_report(print_section):
    result = run_illustrative_example(ContentionScenario(), seed=2017)
    print_section("Section II illustrative example: slowdown of the short-request task")
    rows = [
        ["isolation (cycles)", result.analytic_isolation_cycles, result.simulated_isolation_cycles],
        [
            "request-fair contention (cycles)",
            result.analytic_request_fair_cycles,
            result.simulated_request_fair_cycles,
        ],
        [
            "cycle-fair contention (cycles)",
            result.analytic_cycle_fair_cycles,
            result.simulated_cycle_fair_cycles,
        ],
        [
            "request-fair slowdown",
            result.analytic_request_fair_slowdown,
            result.simulated_request_fair_slowdown,
        ],
        [
            "cycle-fair slowdown",
            result.analytic_cycle_fair_slowdown,
            result.simulated_cycle_fair_slowdown,
        ],
    ]
    print(format_table(["quantity", "paper (analytic)", "simulated"], rows))
    return result


def test_bench_illustrative_example(benchmark, print_section):
    result = benchmark.pedantic(
        run_and_report, args=(print_section,), rounds=1, iterations=1
    )
    # Shape assertions: the request-fair slowdown is far above the core
    # count, the cycle-fair slowdown is in the vicinity of the core count,
    # and the analytic values match the paper exactly.
    assert result.analytic_request_fair_slowdown == 9.4
    assert result.analytic_cycle_fair_slowdown == 2.8
    assert result.simulated_request_fair_slowdown > 6.0
    assert result.simulated_cycle_fair_slowdown < 4.5
    assert (
        result.simulated_cycle_fair_slowdown
        < 0.6 * result.simulated_request_fair_slowdown
    )
