"""Shared configuration of the benchmark harness.

Each benchmark module regenerates one table or figure of the paper (see
DESIGN.md for the experiment index) and prints the regenerated rows/series so
they can be compared side by side with the paper.  Run them with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the printed tables; without it only the timing and the
shape assertions are visible.  Environment knobs:

* ``REPRO_BENCH_RUNS`` — randomised runs averaged per configuration
  (default 3; the paper uses 1,000);
* ``REPRO_BENCH_SCALE`` — workload-length scale factor (default 0.5).
"""

from __future__ import annotations

import os

import pytest


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_runs() -> int:
    """Randomised runs per configuration used by the heavier benchmarks."""
    return max(1, _env_int("REPRO_BENCH_RUNS", 3))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Workload-length scaling factor used by the heavier benchmarks."""
    return min(1.0, max(0.05, _env_float("REPRO_BENCH_SCALE", 0.5)))


def _print_section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


@pytest.fixture(scope="session")
def print_section():
    """Fixture returning the section-header printer.

    A fixture (rather than a bare ``from conftest import ...``) keeps the
    benchmark modules importable under pytest's ``importlib`` import mode,
    where conftest is not an importable module name.
    """
    return _print_section
