"""Benchmark: CBA composed with different base arbitration policies.

Section III-A claims CBA is policy-agnostic — it only filters eligibility —
and lists round-robin, lottery, random permutations and TDMA as
MBPTA-compatible base policies.  This ablation measures the ``matrix``
workload under maximum contention for each base policy with and without the
CBA filter and reports the contention slowdowns (normalised to the
random-permutations bus in isolation, the same baseline as Figure 1).
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_table
from repro.experiments.base_policy_sweep import DEFAULT_POLICIES, run_base_policy_sweep

def run_and_report(print_section, num_runs: int, access_scale: float):
    result = run_base_policy_sweep(
        policies=DEFAULT_POLICIES,
        benchmark="matrix",
        num_runs=num_runs,
        access_scale=access_scale,
    )
    print_section("CBA over different base policies (matrix, maximum contention)")
    rows = []
    for policy in result.policies():
        rows.append([
            policy,
            result.contention_slowdown(policy, use_cba=False),
            result.contention_slowdown(policy, use_cba=True),
            result.improvement(policy),
        ])
    print(format_table(
        ["base policy", "contention slowdown (no CBA)",
         "contention slowdown (CBA)", "improvement factor"],
        rows,
    ))
    return result


def test_bench_cba_over_base_policies(benchmark, print_section, bench_runs, bench_scale):
    result = benchmark.pedantic(
        run_and_report, args=(print_section, bench_runs, bench_scale),
        rounds=1, iterations=1
    )
    # The randomised policies — the MBPTA-friendly ones the paper targets —
    # benefit clearly from the CBA filter and stay near the core-count bound.
    for policy in ("lottery", "random_permutations"):
        assert result.improvement(policy) > 1.2
        assert result.contention_slowdown(policy, use_cba=True) < 4.0
    # Deterministic round-robin composes correctly too, though phase-locking
    # between grant boundaries and budget recovery limits the gain.
    assert result.improvement("round_robin") > 0.9
    # TDMA is already time-partitioned: its slots guarantee each core one
    # grant per round, so the budget filter changes (almost) nothing and the
    # slowdown is dominated by TDMA's own slot waste.
    assert result.improvement("tdma") == pytest.approx(1.0, rel=0.05)
