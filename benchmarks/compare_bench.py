"""CI regression gate over the benchmark reports.

Compares freshly produced ``BENCH_kernel.json``/``BENCH_campaign.json``
reports against hard same-process bounds and against the committed
baselines, exiting non-zero on a regression.  Moving the gate here (out of
``bench_kernel.py``'s process) makes it reusable — CI, local runs and other
harnesses all call the same checks — and lets the gate reason about the
*committed* baseline, not only the current process.

Two kinds of check, chosen for robustness across machines:

* **same-process gates** (current report only): wall-clock ratios between
  modes measured in one process on one machine — the batch interpreter must
  stay within ``factor`` of the fast-forward baseline and the event-queue
  scheduler within ``factor`` of the hint scan on every tracked scenario;
  every scenario must be bit-identical; the campaign's pool executor must be
  bit-identical to serial and MBPTA post-processing under its latency
  budget.
* **baseline diffs** (current vs committed): absolute wall clocks are
  machine-dependent (the committed baseline comes from a developer machine,
  the current report from a CI runner), so the gated quantity is the
  *normalised throughput* of each tracked scenario — its default-mode
  Mcycles/s divided by the same process's stepping Mcycles/s — which cancels
  machine speed.  A tracked scenario failing ``current >= baseline/factor``
  fails the gate; so does the campaign's ``speedup_pool_vs_serial`` (itself
  a same-process ratio) dropping below the committed baseline by more than
  the factor — unless the current machine has fewer CPUs than the baseline
  machine, in which case the speedup delta is informational.  Everything
  else is printed as an informational delta.

Usage (what the CI bench job runs)::

    python benchmarks/bench_kernel.py --quick --output BENCH_kernel.new.json
    python benchmarks/bench_campaign.py --quick --output BENCH_campaign.new.json
    python benchmarks/compare_bench.py \
        --kernel-current BENCH_kernel.new.json \
        --kernel-baseline BENCH_kernel.json \
        --campaign-current BENCH_campaign.new.json \
        --campaign-baseline BENCH_campaign.json
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Any

from common import REGRESSION_FACTOR, load_report, tracked_scenarios


def _normalised_throughput(entry: dict[str, Any]) -> float | None:
    """Default-mode throughput over stepping throughput (machine-neutral).

    Falls back through the mode columns so reports predating the event
    queue still diff cleanly.
    """
    stepping = entry.get("mcycles_per_s_stepping")
    default = entry.get("mcycles_per_s_event_queue") or entry.get("mcycles_per_s_batch")
    if not stepping or not default:
        return None
    return default / stepping


def check_kernel_current(report: dict[str, Any], factor: float) -> list[str]:
    """Same-process gates on a fresh kernel report."""
    failures = []
    for name, entry in report.get("scenarios", {}).items():
        if not entry.get("bit_identical", False):
            failures.append(f"kernel/{name}: modes are not bit-identical")
    untracked = sorted(set(report.get("scenarios", {})) - set(tracked_scenarios(report)))
    if untracked:
        print(
            "scenarios excluded from wall-clock gating (untracked prefix): "
            + ", ".join(untracked)
        )
    for name, entry in tracked_scenarios(report).items():
        batch = entry.get("wall_s_batch")
        fast_forward = entry.get("wall_s_fast_forward")
        if batch is not None and fast_forward is not None and batch > factor * fast_forward:
            failures.append(
                f"kernel/{name}: batch path {batch:.3f}s is more than "
                f"{factor:.2f}x the fast-forward baseline {fast_forward:.3f}s"
            )
        queue = entry.get("wall_s_event_queue")
        if queue is not None and batch is not None and queue > factor * batch:
            failures.append(
                f"kernel/{name}: event-queue scheduler {queue:.3f}s is more than "
                f"{factor:.2f}x the hint-scan baseline {batch:.3f}s"
            )
    return failures


def check_kernel_baseline(
    current: dict[str, Any], baseline: dict[str, Any], factor: float
) -> list[str]:
    """Normalised-throughput diff of the tracked scenarios vs the baseline.

    Only gating when both reports ran the same workload size: normalised
    throughput cancels machine speed but not workload size (smaller traces
    carry proportionally more fixed per-run cost), so a ``--quick`` report
    diffed against a full-size baseline is informational only.
    """
    failures = []
    if current.get("accesses") != baseline.get("accesses"):
        print(
            "\nbaseline diff skipped: workload sizes differ "
            f"(current accesses={current.get('accesses')}, "
            f"baseline accesses={baseline.get('accesses')}) — "
            "normalised throughput is only comparable at equal size"
        )
        return failures
    baseline_tracked = tracked_scenarios(baseline)
    current_tracked = tracked_scenarios(current)
    # A tracked scenario present in the committed baseline but absent from
    # the fresh report silently shrinks the gate's coverage — say so.
    for name in sorted(set(baseline_tracked) - set(current_tracked)):
        print(
            f"  {name:50s} DROPPED from comparison "
            "(in committed baseline, missing from current report)"
        )
    print("\ntracked scenarios vs committed baseline (normalised throughput):")
    for name, entry in current_tracked.items():
        base_entry = baseline_tracked.get(name)
        if base_entry is None:
            print(f"  {name:50s} (new scenario, no baseline)")
            continue
        now = _normalised_throughput(entry)
        then = _normalised_throughput(base_entry)
        if now is None or then is None:
            print(f"  {name:50s} (incomparable schemas)")
            continue
        verdict = "ok" if now >= then / factor else "REGRESSED"
        print(f"  {name:50s} baseline {then:6.2f}x  current {now:6.2f}x  {verdict}")
        if verdict != "ok":
            failures.append(
                f"kernel/{name}: normalised throughput fell from {then:.2f}x "
                f"to {now:.2f}x (allowed floor {then / factor:.2f}x)"
            )
    return failures


def check_campaign_current(report: dict[str, Any]) -> list[str]:
    """Same-process gates on a fresh campaign report."""
    failures = []
    campaign = report.get("campaign", {})
    if not campaign.get("bit_identical", False):
        failures.append("campaign: pool executor is not bit-identical to serial")
    mbpta = report.get("mbpta_post_1000_samples", {})
    if not mbpta.get("under_50ms", False):
        failures.append(
            f"campaign: MBPTA post-processing of 1000 samples took "
            f"{mbpta.get('total_ms', float('nan'))} ms (budget 50 ms)"
        )
    return failures


def diff_campaign_baseline(
    current: dict[str, Any], baseline: dict[str, Any], factor: float
) -> list[str]:
    """Gate ``speedup_pool_vs_serial`` against the committed baseline.

    The speedup is a same-process ratio (pool and serial measured back to
    back on one machine), so unlike absolute wall clocks it diffs cleanly
    against the committed value — *except* across different degrees of
    hardware parallelism.  When the current runner has fewer CPUs than the
    baseline machine the comparison is printed informationally instead of
    gated (a 1-CPU container cannot reproduce a multi-core speedup, and
    failing CI over core count would gate the machine, not the code).
    """
    failures: list[str] = []
    now = current.get("campaign", {})
    then = baseline.get("campaign", {})
    print(
        "\ncampaign vs committed baseline: "
        f"serial {then.get('wall_s_serial')}s -> {now.get('wall_s_serial')}s, "
        f"pool {then.get('wall_s_pool')}s -> {now.get('wall_s_pool')}s, "
        f"mbpta total {baseline.get('mbpta_post_1000_samples', {}).get('total_ms')}ms "
        f"-> {current.get('mbpta_post_1000_samples', {}).get('total_ms')}ms"
    )
    dispatch = now.get("batch_dispatch") or {}
    if dispatch:
        print(
            "campaign batched dispatch: "
            f"{dispatch.get('batches', 0)} batches "
            f"(mean {dispatch.get('mean_chunk_jobs', 0)} jobs, "
            f"max {dispatch.get('max_chunk_jobs', 0)}), "
            f"context cache {dispatch.get('context_cache_hits', 0)} hits / "
            f"{dispatch.get('context_cache_misses', 0)} misses, "
            f"trace cache {dispatch.get('trace_cache_hits', 0)} hits"
        )
    speedup_now = now.get("speedup_pool_vs_serial")
    speedup_then = then.get("speedup_pool_vs_serial")
    if speedup_now is None or speedup_then is None:
        print("campaign speedup gate skipped: speedup missing from a report")
        return failures
    cpus_now = now.get("cpu_count")
    cpus_then = then.get("cpu_count")
    if cpus_now is not None and cpus_then is not None and cpus_now < cpus_then:
        print(
            f"campaign speedup gate skipped: current machine has {cpus_now} "
            f"CPUs vs {cpus_then} at baseline "
            f"(speedup {speedup_then} -> {speedup_now}, informational)"
        )
        return failures
    floor = speedup_then / factor
    verdict = "ok" if speedup_now >= floor else "REGRESSED"
    print(
        f"campaign speedup_pool_vs_serial: baseline {speedup_then:.3f}x  "
        f"current {speedup_now:.3f}x  (floor {floor:.3f}x)  {verdict}"
    )
    if verdict != "ok":
        failures.append(
            f"campaign: pool speedup fell from {speedup_then:.3f}x to "
            f"{speedup_now:.3f}x (allowed floor {floor:.3f}x)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernel-current", type=Path, required=True)
    parser.add_argument("--kernel-baseline", type=Path, default=None)
    parser.add_argument("--campaign-current", type=Path, default=None)
    parser.add_argument("--campaign-baseline", type=Path, default=None)
    parser.add_argument(
        "--factor", type=float, default=REGRESSION_FACTOR,
        help=f"allowed slowdown factor (default: {REGRESSION_FACTOR})",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []

    kernel_current = load_report(args.kernel_current)
    failures += check_kernel_current(kernel_current, args.factor)
    if args.kernel_baseline is not None and args.kernel_baseline.exists():
        failures += check_kernel_baseline(
            kernel_current, load_report(args.kernel_baseline), args.factor
        )

    if args.campaign_current is not None:
        campaign_current = load_report(args.campaign_current)
        failures += check_campaign_current(campaign_current)
        if args.campaign_baseline is not None and args.campaign_baseline.exists():
            failures += diff_campaign_baseline(
                campaign_current, load_report(args.campaign_baseline), args.factor
            )

    if failures:
        print("\nREGRESSION GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
