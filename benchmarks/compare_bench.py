"""CI regression gate over the benchmark reports.

Compares freshly produced ``BENCH_kernel.json``/``BENCH_campaign.json``
reports against hard same-process bounds and against the committed
baselines, exiting non-zero on a regression.  Moving the gate here (out of
``bench_kernel.py``'s process) makes it reusable — CI, local runs and other
harnesses all call the same checks — and lets the gate reason about the
*committed* baseline, not only the current process.

Two kinds of check, chosen for robustness across machines:

* **same-process gates** (current report only): wall-clock ratios between
  modes measured in one process on one machine — the batch interpreter must
  stay within ``factor`` of the fast-forward baseline and the event-queue
  scheduler within ``factor`` of the hint scan on every tracked scenario;
  every scenario must be bit-identical; the campaign's pool executor must be
  bit-identical to serial and MBPTA post-processing under its latency
  budget.
* **baseline diffs** (current vs committed): absolute wall clocks are
  machine-dependent (the committed baseline comes from a developer machine,
  the current report from a CI runner), so the gated quantity is the
  *normalised throughput* of each tracked scenario — its default-mode
  Mcycles/s divided by the same process's stepping Mcycles/s — which cancels
  machine speed.  A tracked scenario failing ``current >= baseline/factor``
  fails the gate; everything else is printed as an informational delta.

Usage (what the CI bench job runs)::

    python benchmarks/bench_kernel.py --quick --output BENCH_kernel.new.json
    python benchmarks/bench_campaign.py --quick --output BENCH_campaign.new.json
    python benchmarks/compare_bench.py \
        --kernel-current BENCH_kernel.new.json \
        --kernel-baseline BENCH_kernel.json \
        --campaign-current BENCH_campaign.new.json \
        --campaign-baseline BENCH_campaign.json
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Any

from common import REGRESSION_FACTOR, load_report, tracked_scenarios


def _normalised_throughput(entry: dict[str, Any]) -> float | None:
    """Default-mode throughput over stepping throughput (machine-neutral).

    Falls back through the mode columns so reports predating the event
    queue still diff cleanly.
    """
    stepping = entry.get("mcycles_per_s_stepping")
    default = entry.get("mcycles_per_s_event_queue") or entry.get("mcycles_per_s_batch")
    if not stepping or not default:
        return None
    return default / stepping


def check_kernel_current(report: dict[str, Any], factor: float) -> list[str]:
    """Same-process gates on a fresh kernel report."""
    failures = []
    for name, entry in report.get("scenarios", {}).items():
        if not entry.get("bit_identical", False):
            failures.append(f"kernel/{name}: modes are not bit-identical")
    untracked = sorted(set(report.get("scenarios", {})) - set(tracked_scenarios(report)))
    if untracked:
        print(
            "scenarios excluded from wall-clock gating (untracked prefix): "
            + ", ".join(untracked)
        )
    for name, entry in tracked_scenarios(report).items():
        batch = entry.get("wall_s_batch")
        fast_forward = entry.get("wall_s_fast_forward")
        if batch is not None and fast_forward is not None and batch > factor * fast_forward:
            failures.append(
                f"kernel/{name}: batch path {batch:.3f}s is more than "
                f"{factor:.2f}x the fast-forward baseline {fast_forward:.3f}s"
            )
        queue = entry.get("wall_s_event_queue")
        if queue is not None and batch is not None and queue > factor * batch:
            failures.append(
                f"kernel/{name}: event-queue scheduler {queue:.3f}s is more than "
                f"{factor:.2f}x the hint-scan baseline {batch:.3f}s"
            )
    return failures


def check_kernel_baseline(
    current: dict[str, Any], baseline: dict[str, Any], factor: float
) -> list[str]:
    """Normalised-throughput diff of the tracked scenarios vs the baseline.

    Only gating when both reports ran the same workload size: normalised
    throughput cancels machine speed but not workload size (smaller traces
    carry proportionally more fixed per-run cost), so a ``--quick`` report
    diffed against a full-size baseline is informational only.
    """
    failures = []
    if current.get("accesses") != baseline.get("accesses"):
        print(
            "\nbaseline diff skipped: workload sizes differ "
            f"(current accesses={current.get('accesses')}, "
            f"baseline accesses={baseline.get('accesses')}) — "
            "normalised throughput is only comparable at equal size"
        )
        return failures
    baseline_tracked = tracked_scenarios(baseline)
    current_tracked = tracked_scenarios(current)
    # A tracked scenario present in the committed baseline but absent from
    # the fresh report silently shrinks the gate's coverage — say so.
    for name in sorted(set(baseline_tracked) - set(current_tracked)):
        print(
            f"  {name:50s} DROPPED from comparison "
            "(in committed baseline, missing from current report)"
        )
    print("\ntracked scenarios vs committed baseline (normalised throughput):")
    for name, entry in current_tracked.items():
        base_entry = baseline_tracked.get(name)
        if base_entry is None:
            print(f"  {name:50s} (new scenario, no baseline)")
            continue
        now = _normalised_throughput(entry)
        then = _normalised_throughput(base_entry)
        if now is None or then is None:
            print(f"  {name:50s} (incomparable schemas)")
            continue
        verdict = "ok" if now >= then / factor else "REGRESSED"
        print(f"  {name:50s} baseline {then:6.2f}x  current {now:6.2f}x  {verdict}")
        if verdict != "ok":
            failures.append(
                f"kernel/{name}: normalised throughput fell from {then:.2f}x "
                f"to {now:.2f}x (allowed floor {then / factor:.2f}x)"
            )
    return failures


def check_campaign_current(report: dict[str, Any]) -> list[str]:
    """Same-process gates on a fresh campaign report."""
    failures = []
    campaign = report.get("campaign", {})
    if not campaign.get("bit_identical", False):
        failures.append("campaign: pool executor is not bit-identical to serial")
    mbpta = report.get("mbpta_post_1000_samples", {})
    if not mbpta.get("under_50ms", False):
        failures.append(
            f"campaign: MBPTA post-processing of 1000 samples took "
            f"{mbpta.get('total_ms', float('nan'))} ms (budget 50 ms)"
        )
    return failures


def diff_campaign_baseline(current: dict[str, Any], baseline: dict[str, Any]) -> None:
    """Informational only: executor wall clocks are machine-dependent."""
    now = current.get("campaign", {})
    then = baseline.get("campaign", {})
    print(
        "\ncampaign vs committed baseline (informational): "
        f"serial {then.get('wall_s_serial')}s -> {now.get('wall_s_serial')}s, "
        f"pool {then.get('wall_s_pool')}s -> {now.get('wall_s_pool')}s, "
        f"mbpta total {baseline.get('mbpta_post_1000_samples', {}).get('total_ms')}ms "
        f"-> {current.get('mbpta_post_1000_samples', {}).get('total_ms')}ms"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernel-current", type=Path, required=True)
    parser.add_argument("--kernel-baseline", type=Path, default=None)
    parser.add_argument("--campaign-current", type=Path, default=None)
    parser.add_argument("--campaign-baseline", type=Path, default=None)
    parser.add_argument(
        "--factor", type=float, default=REGRESSION_FACTOR,
        help=f"allowed slowdown factor (default: {REGRESSION_FACTOR})",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []

    kernel_current = load_report(args.kernel_current)
    failures += check_kernel_current(kernel_current, args.factor)
    if args.kernel_baseline is not None and args.kernel_baseline.exists():
        failures += check_kernel_baseline(
            kernel_current, load_report(args.kernel_baseline), args.factor
        )

    if args.campaign_current is not None:
        campaign_current = load_report(args.campaign_current)
        failures += check_campaign_current(campaign_current)
        if args.campaign_baseline is not None and args.campaign_baseline.exists():
            diff_campaign_baseline(campaign_current, load_report(args.campaign_baseline))

    if failures:
        print("\nREGRESSION GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
