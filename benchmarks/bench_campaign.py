"""Wall-clock benchmark harness for campaign execution and MBPTA analysis.

Times what the ROADMAP "Campaign-level perf tracking" item asks for:

* a full ``Campaign().run`` grid (several benchmark x configuration labels)
  through both the serial executor and the process-pool executor, verifying
  the two produce bit-identical samples;
* the vectorised MBPTA post-processing of a 1,000-sample campaign — i.i.d.
  battery, block-maxima + Gumbel fit, pWCET grid — whose wall time must stay
  in the low-millisecond range (< 50 ms is the acceptance threshold recorded
  in the report).

Writes a ``BENCH_campaign.json`` report next to ``BENCH_kernel.json`` so
executor overheads and analysis latency are tracked from PR to PR.  Not
named ``test_*`` on purpose: this is a standalone harness (pytest tier-1
must stay fast), run directly or by the CI ``bench`` job::

    python benchmarks/bench_campaign.py --output BENCH_campaign.json
    python benchmarks/bench_campaign.py --quick      # CI-sized grid
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

import numpy as np

from common import bootstrap_src, report_header, write_report

bootstrap_src()

from repro.campaign.campaign import Campaign, aggregate_by_label  # noqa: E402
from repro.campaign.executor import ParallelExecutor, SerialExecutor  # noqa: E402
from repro.campaign.jobs import seed_block_jobs  # noqa: E402
from repro.mbpta.evt import fit_evt  # noqa: E402
from repro.mbpta.iid import iid_test_battery  # noqa: E402
from repro.mbpta.protocol import mbpta_from_samples  # noqa: E402
from repro.mbpta.pwcet import DEFAULT_EXCEEDANCE_GRID, PWCETCurve  # noqa: E402
from repro.platform.presets import config_by_label  # noqa: E402
from repro.workloads.eembc import eembc_workload  # noqa: E402
from repro.experiments.runner import scale_workload  # noqa: E402

#: The campaign grid: benchmark x bus-configuration labels, one scenario each.
GRID = [
    ("canrdr", "RP", "max_contention"),
    ("canrdr", "CBA", "wcet_estimation"),
    ("matrix", "RP", "max_contention"),
    ("matrix", "CBA", "wcet_estimation"),
]

MAX_CYCLES = 5_000_000


def build_jobs(runs_per_label: int, access_scale: float, seed: int) -> list:
    jobs = []
    for benchmark, configuration, scenario in GRID:
        workload = scale_workload(eembc_workload(benchmark), access_scale)
        jobs += seed_block_jobs(
            f"{benchmark}/{configuration}",
            scenario,
            seed=seed,
            num_runs=runs_per_label,
            workload=workload,
            config=config_by_label(configuration),
            max_cycles=MAX_CYCLES,
        )
    return jobs


def time_campaign(jobs, executor) -> tuple[float, dict, dict]:
    campaign = Campaign(executor=executor)
    start = time.perf_counter()
    results = campaign.run(jobs)
    elapsed = time.perf_counter() - start
    aggregated = aggregate_by_label(jobs, results)
    stats = dict(getattr(executor, "last_batch_stats", {}) or {})
    return elapsed, {label: agg.samples for label, agg in aggregated.items()}, stats


def time_mbpta_post(samples: np.ndarray, block_size: int = 20) -> dict:
    """Time the analysis stages on one campaign-sized sample vector."""
    timings: dict[str, float] = {}
    # Same well-posedness rule as mbpta_from_samples: keep >= 5 block maxima.
    block_size = max(2, min(block_size, int(samples.size) // 5))

    start = time.perf_counter()
    iid_test_battery(samples)
    timings["iid_battery_ms"] = (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    evt = fit_evt(samples, block_size=block_size)
    timings["evt_fit_ms"] = (time.perf_counter() - start) * 1e3

    curve = PWCETCurve(evt=evt, observed_max=float(samples.max()))
    grid = np.asarray(DEFAULT_EXCEEDANCE_GRID)
    start = time.perf_counter()
    curve.wcet_at(grid)
    timings["pwcet_grid_ms"] = (time.perf_counter() - start) * 1e3

    # The integrated entry point the experiments call (repeats the stages).
    start = time.perf_counter()
    mbpta_from_samples(samples, block_size=block_size)
    timings["mbpta_from_samples_ms"] = (time.perf_counter() - start) * 1e3

    timings["total_ms"] = (
        timings["iid_battery_ms"] + timings["evt_fit_ms"] + timings["pwcet_grid_ms"]
    )
    return timings


def best_mbpta_timings(samples: np.ndarray, repeats: int) -> dict:
    best: dict[str, float] = {}
    for _ in range(repeats):
        timings = time_mbpta_post(samples)
        for key, value in timings.items():
            best[key] = min(best.get(key, float("inf")), value)
    return {key: round(value, 3) for key, value in best.items()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_campaign.json"),
        help="where to write the JSON report (default: ./BENCH_campaign.json)",
    )
    parser.add_argument(
        "--runs", type=int, default=25,
        help="randomised runs per grid label (default: 25)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker processes for the pool executor (default: 4)",
    )
    parser.add_argument(
        "--access-scale", type=float, default=0.25,
        help="workload length scale factor (default: 0.25)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repetitions for the MBPTA stage; best-of is reported",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: 20 runs per label, 0.1 access scale",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.runs = min(args.runs, 20)
        args.access_scale = min(args.access_scale, 0.1)
    # The analysis stages timed below need >= 20 samples (MBPTA minimum) and
    # >= 10 for the i.i.d. battery; hold the floor so every grid label's
    # aggregate is analysable.
    args.runs = max(args.runs, 20)

    jobs = build_jobs(args.runs, args.access_scale, seed=7)
    print(f"campaign grid: {len(GRID)} labels x {args.runs} runs = {len(jobs)} jobs")

    serial_s, serial_samples, _ = time_campaign(jobs, SerialExecutor())
    pool_s, pool_samples, batch_stats = time_campaign(
        jobs, ParallelExecutor(max_workers=args.jobs)
    )

    identical = set(serial_samples) == set(pool_samples) and all(
        np.array_equal(serial_samples[label], pool_samples[label])
        for label in serial_samples
    )
    if not identical:
        raise AssertionError("process-pool campaign is NOT bit-identical to serial")
    print(
        f"campaign wall time: serial {serial_s:6.2f}s  "
        f"pool({args.jobs}) {pool_s:6.2f}s  -> {serial_s / pool_s:4.2f}x"
    )
    if batch_stats:
        print(
            f"batched dispatch: {batch_stats.get('batches', 0)} batches "
            f"(mean {batch_stats.get('mean_chunk_jobs', 0)} jobs, "
            f"max {batch_stats.get('max_chunk_jobs', 0)}), "
            f"context cache {batch_stats.get('context_cache_hits', 0)} hits / "
            f"{batch_stats.get('context_cache_misses', 0)} misses"
        )

    # MBPTA post-processing of a 1,000-sample campaign.  The sample vector
    # stands in for a paper-scale (1,000 runs per configuration) campaign;
    # a fixed seed keeps the report comparable across PRs.
    thousand = np.random.default_rng(2017).gumbel(30_000.0, 600.0, size=1000)
    mbpta_1000 = best_mbpta_timings(thousand, args.repeats)
    mbpta_1000["samples"] = 1000
    mbpta_1000["under_50ms"] = mbpta_1000["total_ms"] < 50.0
    print(
        "MBPTA post-processing (1000 samples): "
        f"iid {mbpta_1000['iid_battery_ms']:.2f}ms  "
        f"evt {mbpta_1000['evt_fit_ms']:.2f}ms  "
        f"grid {mbpta_1000['pwcet_grid_ms']:.3f}ms  "
        f"total {mbpta_1000['total_ms']:.2f}ms"
    )
    if not mbpta_1000["under_50ms"]:
        raise AssertionError(
            f"MBPTA post-processing took {mbpta_1000['total_ms']:.1f} ms "
            "for 1000 samples; the acceptance threshold is 50 ms"
        )

    # The same stages on the actual (smaller) campaign aggregate, so the
    # report also reflects real measured execution times, not only the
    # synthetic vector.
    campaign_vector = serial_samples[f"{GRID[0][0]}/{GRID[0][1]}"]
    mbpta_campaign = best_mbpta_timings(campaign_vector, args.repeats)
    mbpta_campaign["samples"] = int(campaign_vector.size)

    report = report_header("campaign_orchestration")
    report.update({
        "grid": {
            "labels": [f"{b}/{c}:{s}" for b, c, s in GRID],
            "runs_per_label": args.runs,
            "total_jobs": len(jobs),
            "access_scale": args.access_scale,
        },
        "campaign": {
            "wall_s_serial": round(serial_s, 3),
            "wall_s_pool": round(pool_s, 3),
            "pool_workers": args.jobs,
            "cpu_count": os.cpu_count(),
            "speedup_pool_vs_serial": round(serial_s / pool_s, 3),
            "bit_identical": True,
            "batch_dispatch": batch_stats,
        },
        "mbpta_post_1000_samples": mbpta_1000,
        "mbpta_post_campaign_samples": mbpta_campaign,
    })
    write_report(args.output, report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
