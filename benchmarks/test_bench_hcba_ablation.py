"""Benchmark: H-CBA design-choice ablation (Section III-A).

The paper sketches two ways to allocate heterogeneous bandwidth — uneven
replenishment shares (the evaluated H-CBA) and per-core budget-cap growth —
and notes the trade-off between favoured-core latency and temporal starvation
of the others.  The ablation sweeps both variants on a short-request task
under maximum contention and reports the favoured core's slowdown, its
achieved bandwidth share and the contenders' throughput.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.hcba_sweep import run_hcba_sweep

def run_and_report(print_section, num_runs: int, access_scale: float):
    result = run_hcba_sweep(
        fractions=(0.25, 0.4, 0.5, 0.75),
        cap_multipliers=(2, 4),
        num_runs=num_runs,
        access_scale=access_scale,
    )
    print_section("H-CBA ablation: favoured-core slowdown vs contender throughput")
    rows = []
    for point in result.points:
        rows.append(
            [
                point.label,
                point.favoured_fraction,
                point.tua_slowdown,
                point.tua_bandwidth_share,
                point.contender_completed_requests,
            ]
        )
    print(
        format_table(
            [
                "configuration",
                "favoured fraction",
                "TuA slowdown",
                "TuA bandwidth share",
                "contender requests",
            ],
            rows,
        )
    )
    print(f"\n(baseline isolation: {result.baseline_isolation_cycles:.0f} cycles)")
    return result


def test_bench_hcba_ablation(benchmark, print_section, bench_runs, bench_scale):
    result = benchmark.pedantic(
        run_and_report, args=(print_section, bench_runs, bench_scale),
        rounds=1, iterations=1
    )
    rp = result.by_label("RP")
    cba = result.by_label("CBA")
    half = result.by_label("H-CBA-shares-0.50")
    three_quarters = result.by_label("H-CBA-shares-0.75")
    # CBA improves on RP; giving the TuA a larger share improves it further.
    assert cba.tua_slowdown < rp.tua_slowdown
    assert half.tua_slowdown <= cba.tua_slowdown + 0.05
    assert three_quarters.tua_slowdown <= half.tua_slowdown + 0.05
    # The favoured core's bandwidth share grows with its replenishment share,
    # and the contenders pay for it with reduced throughput.
    assert three_quarters.tua_bandwidth_share >= cba.tua_bandwidth_share
    assert three_quarters.contender_completed_requests <= rp.contender_completed_requests
