"""Wall-clock benchmark harness for the simulation kernel's fast paths.

Runs the paper's campaign scenarios in four modes of the same binary —
cycle-by-cycle stepping, event-aware fast-forwarding (the PR 3 default),
fast-forwarding plus the batch interpreter under the hint-scan scheduler
(the PR 4 default), and the same under the heap-based event-queue scheduler
(the current default) — verifies all four are bit-identical, and writes a
``BENCH_kernel.json`` report so the performance trajectory of the simulator
is tracked from PR to PR.

The regression gate lives in ``benchmarks/compare_bench.py`` (run by the CI
``bench`` job against this harness's output and the committed baseline);
this process only measures and asserts bit-identity.

Not named ``test_*`` on purpose: this is a standalone harness (pytest tier-1
must stay fast), run directly or by the CI ``bench`` job::

    python benchmarks/bench_kernel.py --output BENCH_kernel.json
    python benchmarks/bench_kernel.py --quick      # CI-sized workloads

Reading the numbers: ``speedup_vs_stepping`` isolates what cycle-skipping
buys over stepping; ``speedup_batch_vs_fast_forward`` isolates what the
batch interpreter buys on top of that (large on low-contention/L1-resident
runs, where whole hit stretches collapse into single events; ~neutral on
memory-latency-bound runs, where every access goes to the bus anyway); and
``speedup_queue_vs_scan`` isolates what the event queue's O(log n) heap peek
buys over the O(components) hint poll at equal semantics.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from common import BenchScenario, bootstrap_src, report_header, time_best, write_report

bootstrap_src()

from repro.platform.scenarios import (  # noqa: E402  (path bootstrap above)
    ScenarioResult,
    run_isolation,
    run_max_contention,
    run_multiprogram,
    run_wcet_estimation,
)
from repro.sim.config import CBAParameters, PlatformConfig  # noqa: E402
from repro.workloads.base import WorkloadSpec  # noqa: E402
from repro.workloads.synthetic import streaming_workload  # noqa: E402

MAX_CYCLES = 20_000_000


def scenarios(accesses: int) -> list[BenchScenario]:
    """The benchmark grid: memory-latency-bound contention runs (every access
    of the task under analysis misses to DRAM while greedy neighbours keep
    maximum-length transactions pending) across the paper's key bus
    configurations, the Table I analysis-mode scenario, and the tracked
    low-contention campaign runs (L1-resident working sets where the batch
    interpreter collapses whole hit stretches into single events)."""
    streaming = streaming_workload(num_accesses=accesses)
    memlat = WorkloadSpec(
        name="memlat",
        num_accesses=accesses,
        working_set_bytes=4 * 1024 * 1024,
        mean_compute_gap=8.0,
        gap_variability=0.5,
        write_fraction=0.2,
    )
    # The working set fits in half the (default 4 KiB) L1: after the cold
    # misses nearly every read hits, which is the regime MBPTA isolation
    # campaigns and cache-friendly tasks spend their time in.
    l1_resident = WorkloadSpec(
        name="l1_resident",
        num_accesses=accesses * 4,
        working_set_bytes=2 * 1024,
        mean_compute_gap=6.0,
        gap_variability=0.5,
        write_fraction=0.0,
        hot_fraction=0.2,
        hot_region_bytes=512,
    )

    def config(arbitration: str, use_cba: bool = False) -> PlatformConfig:
        return PlatformConfig(arbitration=arbitration, use_cba=use_cba)

    # The scaling direction the event queue exists for (ROADMAP: "more
    # cores, split buses"): 16 L1-resident tasks consolidated on one bus,
    # where the O(components) hint scan becomes the per-cycle bottleneck
    # and the heap peek does not.
    many_core = PlatformConfig(
        arbitration="round_robin", num_cores=16, cba=CBAParameters(num_cores=16)
    )
    many_core_tasks = {core: l1_resident for core in range(16)}

    return [
        BenchScenario(
            "low_contention/isolation/round_robin",
            run_isolation,
            config("round_robin"),
            l1_resident,
        ),
        BenchScenario(
            "low_contention/multiprogram_16core/round_robin",
            run_multiprogram,
            many_core,
            many_core_tasks,
        ),
        BenchScenario(
            "low_contention/isolation/random_permutations+cba",
            run_isolation,
            config("random_permutations", use_cba=True),
            l1_resident,
        ),
        BenchScenario(
            "contention/random_permutations",
            run_max_contention,
            config("random_permutations"),
            streaming,
        ),
        BenchScenario(
            "contention/random_permutations+cba",
            run_max_contention,
            config("random_permutations", use_cba=True),
            streaming,
        ),
        BenchScenario(
            "contention/tdma", run_max_contention, config("tdma"), streaming
        ),
        BenchScenario(
            "contention/tdma+cba",
            run_max_contention,
            config("tdma", use_cba=True),
            streaming,
        ),
        BenchScenario(
            "contention/round_robin", run_max_contention, config("round_robin"), memlat
        ),
        BenchScenario(
            "wcet_estimation/random_permutations+cba",
            run_wcet_estimation,
            config("random_permutations", use_cba=True),
            streaming,
        ),
    ]


def _fingerprint(result: ScenarioResult) -> dict:
    """What must match between the modes for the run to count."""
    system = result.system
    return {
        "total_cycles": system.total_cycles,
        "tua_cycles": result.tua_cycles,
        "core_counters": {
            core: counters.as_dict() for core, counters in system.core_counters.items()
        },
        "bandwidth_shares": system.bandwidth_shares,
        "grants_per_core": system.grants_per_core,
        "cba_blocked_cycles": system.cba_blocked_cycles,
    }


def bench_scenario(scenario: BenchScenario, repeats: int) -> dict:
    def run(fast_forward: bool, batch: bool, queue: bool) -> ScenarioResult:
        return scenario.runner(
            scenario.workload,
            scenario.config,
            seed=7,
            run_index=0,
            max_cycles=MAX_CYCLES,
            fast_forward=fast_forward,
            batch_interpreter=batch,
            event_queue=queue,
        )

    stepped_s, stepped = time_best(lambda: run(False, False, False), repeats)
    skipped_s, skipped = time_best(lambda: run(True, False, False), repeats)
    batch_s, batched = time_best(lambda: run(True, True, False), repeats)
    queue_s, queued = time_best(lambda: run(True, True, True), repeats)

    reference = _fingerprint(stepped)
    for mode, result in (
        ("fast-forward", skipped),
        ("batch-interpreter", batched),
        ("event-queue", queued),
    ):
        if _fingerprint(result) != reference:
            raise AssertionError(
                f"{scenario.name}: {mode} run is NOT bit-identical to stepping"
            )

    cycles = queued.system.total_cycles
    return {
        "cycles": cycles,
        "wall_s_stepping": round(stepped_s, 6),
        "wall_s_fast_forward": round(skipped_s, 6),
        "wall_s_batch": round(batch_s, 6),
        "wall_s_event_queue": round(queue_s, 6),
        "speedup_vs_stepping": round(stepped_s / skipped_s, 3),
        "speedup_batch_vs_fast_forward": round(skipped_s / batch_s, 3),
        "speedup_queue_vs_scan": round(batch_s / queue_s, 3),
        "mcycles_per_s_stepping": round(cycles / stepped_s / 1e6, 3),
        "mcycles_per_s_fast_forward": round(cycles / skipped_s / 1e6, 3),
        "mcycles_per_s_batch": round(cycles / batch_s / 1e6, 3),
        "mcycles_per_s_event_queue": round(cycles / queue_s / 1e6, 3),
        "bit_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_kernel.json"),
        help="where to write the JSON report (default: ./BENCH_kernel.json)",
    )
    parser.add_argument(
        "--accesses", type=int, default=800,
        help="trace length of the task under analysis (default: 800)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per mode; best-of is reported (default: 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: 200 accesses, 2 repeats",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.accesses = min(args.accesses, 200)
        args.repeats = min(args.repeats, 2)

    results: dict[str, dict] = {}
    tracked: dict[str, dict] = {}
    for scenario in scenarios(args.accesses):
        entry = bench_scenario(scenario, args.repeats)
        results[scenario.name] = entry
        if scenario.tracked:
            tracked[scenario.name] = entry
        print(
            f"{scenario.name:50s} {entry['cycles']:>9d} cycles  "
            f"stepping {entry['wall_s_stepping']:7.3f}s  "
            f"fast-forward {entry['wall_s_fast_forward']:7.3f}s  "
            f"batch {entry['wall_s_batch']:7.3f}s  "
            f"queue {entry['wall_s_event_queue']:7.3f}s  "
            f"-> {entry['speedup_vs_stepping']:5.2f}x / "
            f"{entry['speedup_batch_vs_fast_forward']:5.2f}x / "
            f"{entry['speedup_queue_vs_scan']:5.2f}x"
        )

    speedups = [entry["speedup_vs_stepping"] for entry in results.values()]
    batch_speedups = [e["speedup_batch_vs_fast_forward"] for e in tracked.values()]
    queue_speedups = [e["speedup_queue_vs_scan"] for e in results.values()]
    report = report_header("kernel_fast_forward")
    report.update(
        {
            "accesses": args.accesses,
            "repeats": args.repeats,
            "scenarios": results,
            "summary": {
                "min_speedup_vs_stepping": min(speedups),
                "max_speedup_vs_stepping": max(speedups),
                "batch_speedup_low_contention": min(batch_speedups),
                "min_speedup_queue_vs_scan": min(queue_speedups),
                "max_speedup_queue_vs_scan": max(queue_speedups),
                "all_bit_identical": True,
            },
        }
    )
    write_report(args.output, report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
