"""Wall-clock benchmark harness for the event-aware fast-forward kernel.

Runs the paper's campaign scenarios once with fast-forwarding disabled
(cycle-by-cycle stepping) and once enabled, verifies the results are
bit-identical, and writes a ``BENCH_kernel.json`` report so the performance
trajectory of the simulator is tracked from PR to PR.

Not named ``test_*`` on purpose: this is a standalone harness (pytest tier-1
must stay fast), run directly or by the CI ``bench`` job::

    python benchmarks/bench_kernel.py --output BENCH_kernel.json
    python benchmarks/bench_kernel.py --quick      # CI-sized workloads

Reading the numbers: ``speedup_vs_stepping`` compares the two modes of the
*same* binary, so it isolates what cycle-skipping buys on top of this PR's
hot-path work.  The hot-path overhaul also made the stepping baseline itself
roughly 2x faster than the pre-PR code, so the end-to-end campaign speedup
versus the previous revision is larger than this number (5-8x measured at PR
time; see README "Performance").
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.platform.scenarios import (  # noqa: E402  (path bootstrap above)
    ScenarioResult,
    run_max_contention,
    run_wcet_estimation,
)
from repro.sim.config import PlatformConfig  # noqa: E402
from repro.workloads.base import WorkloadSpec  # noqa: E402
from repro.workloads.synthetic import streaming_workload  # noqa: E402

MAX_CYCLES = 20_000_000


@dataclass(frozen=True)
class BenchScenario:
    """One benchmarked configuration of the paper's campaign grid."""

    name: str
    runner: Callable[..., ScenarioResult]
    config: PlatformConfig
    workload: WorkloadSpec


def scenarios(accesses: int) -> list[BenchScenario]:
    """The benchmark grid: memory-latency-bound contention runs (every access
    of the task under analysis misses to DRAM while greedy neighbours keep
    maximum-length transactions pending) across the paper's key bus
    configurations, plus the Table I analysis-mode scenario."""
    streaming = streaming_workload(num_accesses=accesses)
    memlat = WorkloadSpec(
        name="memlat",
        num_accesses=accesses,
        working_set_bytes=4 * 1024 * 1024,
        mean_compute_gap=8.0,
        gap_variability=0.5,
        write_fraction=0.2,
    )

    def config(arbitration: str, use_cba: bool = False) -> PlatformConfig:
        return PlatformConfig(arbitration=arbitration, use_cba=use_cba)

    return [
        BenchScenario(
            "contention/random_permutations",
            run_max_contention,
            config("random_permutations"),
            streaming,
        ),
        BenchScenario(
            "contention/random_permutations+cba",
            run_max_contention,
            config("random_permutations", use_cba=True),
            streaming,
        ),
        BenchScenario(
            "contention/tdma", run_max_contention, config("tdma"), streaming
        ),
        BenchScenario(
            "contention/tdma+cba",
            run_max_contention,
            config("tdma", use_cba=True),
            streaming,
        ),
        BenchScenario(
            "contention/round_robin", run_max_contention, config("round_robin"), memlat
        ),
        BenchScenario(
            "wcet_estimation/random_permutations+cba",
            run_wcet_estimation,
            config("random_permutations", use_cba=True),
            streaming,
        ),
    ]


def _fingerprint(result: ScenarioResult) -> dict:
    """What must match between the two modes for the run to count."""
    system = result.system
    return {
        "total_cycles": system.total_cycles,
        "tua_cycles": result.tua_cycles,
        "core_counters": {
            core: counters.as_dict() for core, counters in system.core_counters.items()
        },
        "bandwidth_shares": system.bandwidth_shares,
        "grants_per_core": system.grants_per_core,
        "cba_blocked_cycles": system.cba_blocked_cycles,
    }


def _time_best(fn: Callable[[], ScenarioResult], repeats: int) -> tuple[float, ScenarioResult]:
    best = float("inf")
    result: ScenarioResult | None = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    assert result is not None
    return best, result


def bench_scenario(scenario: BenchScenario, repeats: int) -> dict:
    def run(fast_forward: bool) -> ScenarioResult:
        return scenario.runner(
            scenario.workload,
            scenario.config,
            seed=7,
            run_index=0,
            max_cycles=MAX_CYCLES,
            fast_forward=fast_forward,
        )

    stepped_s, stepped = _time_best(lambda: run(False), repeats)
    skipped_s, skipped = _time_best(lambda: run(True), repeats)

    if _fingerprint(stepped) != _fingerprint(skipped):
        raise AssertionError(
            f"{scenario.name}: fast-forward run is NOT bit-identical to stepping"
        )

    cycles = skipped.system.total_cycles
    return {
        "cycles": cycles,
        "wall_s_stepping": round(stepped_s, 6),
        "wall_s_fast_forward": round(skipped_s, 6),
        "speedup_vs_stepping": round(stepped_s / skipped_s, 3),
        "mcycles_per_s_stepping": round(cycles / stepped_s / 1e6, 3),
        "mcycles_per_s_fast_forward": round(cycles / skipped_s / 1e6, 3),
        "bit_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_kernel.json"),
        help="where to write the JSON report (default: ./BENCH_kernel.json)",
    )
    parser.add_argument(
        "--accesses", type=int, default=800,
        help="trace length of the task under analysis (default: 800)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per mode; best-of is reported (default: 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: 200 accesses, 2 repeats",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.accesses = min(args.accesses, 200)
        args.repeats = min(args.repeats, 2)

    results: dict[str, dict] = {}
    for scenario in scenarios(args.accesses):
        entry = bench_scenario(scenario, args.repeats)
        results[scenario.name] = entry
        print(
            f"{scenario.name:45s} {entry['cycles']:>9d} cycles  "
            f"stepping {entry['wall_s_stepping']:7.3f}s  "
            f"fast-forward {entry['wall_s_fast_forward']:7.3f}s  "
            f"-> {entry['speedup_vs_stepping']:5.2f}x"
        )

    speedups = [entry["speedup_vs_stepping"] for entry in results.values()]
    report = {
        "benchmark": "kernel_fast_forward",
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "accesses": args.accesses,
        "repeats": args.repeats,
        "scenarios": results,
        "summary": {
            "min_speedup_vs_stepping": min(speedups),
            "max_speedup_vs_stepping": max(speedups),
            "all_bit_identical": True,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
