"""Wall-clock benchmark harness for the simulation kernel's fast paths.

Runs the paper's campaign scenarios in three modes of the same binary —
cycle-by-cycle stepping, event-aware fast-forwarding (the PR 3 default), and
fast-forwarding plus the batch interpreter (the current default) — verifies
all three are bit-identical, and writes a ``BENCH_kernel.json`` report so the
performance trajectory of the simulator is tracked from PR to PR.

The harness doubles as the CI regression gate for the batch path: the
``low_contention/*`` scenarios are the tracked campaign wall-clock, and the
process exits non-zero if the batch path regresses any of them by more than
20% against the fast-forward baseline measured in the same process (a
same-machine comparison, immune to runner speed differences).

Not named ``test_*`` on purpose: this is a standalone harness (pytest tier-1
must stay fast), run directly or by the CI ``bench`` job::

    python benchmarks/bench_kernel.py --output BENCH_kernel.json
    python benchmarks/bench_kernel.py --quick      # CI-sized workloads

Reading the numbers: ``speedup_vs_stepping`` isolates what cycle-skipping
buys over stepping; ``speedup_batch_vs_fast_forward`` isolates what the batch
interpreter buys on top of that (large on low-contention/L1-resident runs,
where whole hit stretches collapse into single events; ~neutral on
memory-latency-bound runs, where every access goes to the bus anyway).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.platform.scenarios import (  # noqa: E402  (path bootstrap above)
    ScenarioResult,
    run_isolation,
    run_max_contention,
    run_wcet_estimation,
)
from repro.sim.config import PlatformConfig  # noqa: E402
from repro.workloads.base import WorkloadSpec  # noqa: E402
from repro.workloads.synthetic import streaming_workload  # noqa: E402

MAX_CYCLES = 20_000_000

#: Regression gate: the batch path may not be more than this factor slower
#: than the fast-forward baseline on any tracked low-contention scenario.
REGRESSION_FACTOR = 1.2


@dataclass(frozen=True)
class BenchScenario:
    """One benchmarked configuration of the paper's campaign grid."""

    name: str
    runner: Callable[..., ScenarioResult]
    config: PlatformConfig
    workload: WorkloadSpec

    @property
    def tracked(self) -> bool:
        """Whether this scenario is part of the batch regression gate."""
        return self.name.startswith("low_contention/")


def scenarios(accesses: int) -> list[BenchScenario]:
    """The benchmark grid: memory-latency-bound contention runs (every access
    of the task under analysis misses to DRAM while greedy neighbours keep
    maximum-length transactions pending) across the paper's key bus
    configurations, the Table I analysis-mode scenario, and the tracked
    low-contention campaign runs (L1-resident working sets where the batch
    interpreter collapses whole hit stretches into single events)."""
    streaming = streaming_workload(num_accesses=accesses)
    memlat = WorkloadSpec(
        name="memlat",
        num_accesses=accesses,
        working_set_bytes=4 * 1024 * 1024,
        mean_compute_gap=8.0,
        gap_variability=0.5,
        write_fraction=0.2,
    )
    # The working set fits in half the (default 4 KiB) L1: after the cold
    # misses nearly every read hits, which is the regime MBPTA isolation
    # campaigns and cache-friendly tasks spend their time in.
    l1_resident = WorkloadSpec(
        name="l1_resident",
        num_accesses=accesses * 4,
        working_set_bytes=2 * 1024,
        mean_compute_gap=6.0,
        gap_variability=0.5,
        write_fraction=0.0,
        hot_fraction=0.2,
        hot_region_bytes=512,
    )

    def config(arbitration: str, use_cba: bool = False) -> PlatformConfig:
        return PlatformConfig(arbitration=arbitration, use_cba=use_cba)

    return [
        BenchScenario(
            "low_contention/isolation/round_robin",
            run_isolation,
            config("round_robin"),
            l1_resident,
        ),
        BenchScenario(
            "low_contention/isolation/random_permutations+cba",
            run_isolation,
            config("random_permutations", use_cba=True),
            l1_resident,
        ),
        BenchScenario(
            "contention/random_permutations",
            run_max_contention,
            config("random_permutations"),
            streaming,
        ),
        BenchScenario(
            "contention/random_permutations+cba",
            run_max_contention,
            config("random_permutations", use_cba=True),
            streaming,
        ),
        BenchScenario(
            "contention/tdma", run_max_contention, config("tdma"), streaming
        ),
        BenchScenario(
            "contention/tdma+cba",
            run_max_contention,
            config("tdma", use_cba=True),
            streaming,
        ),
        BenchScenario(
            "contention/round_robin", run_max_contention, config("round_robin"), memlat
        ),
        BenchScenario(
            "wcet_estimation/random_permutations+cba",
            run_wcet_estimation,
            config("random_permutations", use_cba=True),
            streaming,
        ),
    ]


def _fingerprint(result: ScenarioResult) -> dict:
    """What must match between the two modes for the run to count."""
    system = result.system
    return {
        "total_cycles": system.total_cycles,
        "tua_cycles": result.tua_cycles,
        "core_counters": {
            core: counters.as_dict() for core, counters in system.core_counters.items()
        },
        "bandwidth_shares": system.bandwidth_shares,
        "grants_per_core": system.grants_per_core,
        "cba_blocked_cycles": system.cba_blocked_cycles,
    }


def _time_best(fn: Callable[[], ScenarioResult], repeats: int) -> tuple[float, ScenarioResult]:
    best = float("inf")
    result: ScenarioResult | None = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    assert result is not None
    return best, result


def bench_scenario(scenario: BenchScenario, repeats: int) -> dict:
    def run(fast_forward: bool, batch: bool) -> ScenarioResult:
        return scenario.runner(
            scenario.workload,
            scenario.config,
            seed=7,
            run_index=0,
            max_cycles=MAX_CYCLES,
            fast_forward=fast_forward,
            batch_interpreter=batch,
        )

    stepped_s, stepped = _time_best(lambda: run(False, False), repeats)
    skipped_s, skipped = _time_best(lambda: run(True, False), repeats)
    batch_s, batched = _time_best(lambda: run(True, True), repeats)

    if _fingerprint(stepped) != _fingerprint(skipped):
        raise AssertionError(
            f"{scenario.name}: fast-forward run is NOT bit-identical to stepping"
        )
    if _fingerprint(stepped) != _fingerprint(batched):
        raise AssertionError(
            f"{scenario.name}: batch-interpreter run is NOT bit-identical to stepping"
        )

    cycles = batched.system.total_cycles
    return {
        "cycles": cycles,
        "wall_s_stepping": round(stepped_s, 6),
        "wall_s_fast_forward": round(skipped_s, 6),
        "wall_s_batch": round(batch_s, 6),
        "speedup_vs_stepping": round(stepped_s / skipped_s, 3),
        "speedup_batch_vs_fast_forward": round(skipped_s / batch_s, 3),
        "mcycles_per_s_stepping": round(cycles / stepped_s / 1e6, 3),
        "mcycles_per_s_fast_forward": round(cycles / skipped_s / 1e6, 3),
        "mcycles_per_s_batch": round(cycles / batch_s / 1e6, 3),
        "bit_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_kernel.json"),
        help="where to write the JSON report (default: ./BENCH_kernel.json)",
    )
    parser.add_argument(
        "--accesses", type=int, default=800,
        help="trace length of the task under analysis (default: 800)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per mode; best-of is reported (default: 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: 200 accesses, 2 repeats",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.accesses = min(args.accesses, 200)
        args.repeats = min(args.repeats, 2)

    results: dict[str, dict] = {}
    tracked: dict[str, dict] = {}
    for scenario in scenarios(args.accesses):
        entry = bench_scenario(scenario, args.repeats)
        results[scenario.name] = entry
        if scenario.tracked:
            tracked[scenario.name] = entry
        print(
            f"{scenario.name:50s} {entry['cycles']:>9d} cycles  "
            f"stepping {entry['wall_s_stepping']:7.3f}s  "
            f"fast-forward {entry['wall_s_fast_forward']:7.3f}s  "
            f"batch {entry['wall_s_batch']:7.3f}s  "
            f"-> {entry['speedup_vs_stepping']:5.2f}x / "
            f"{entry['speedup_batch_vs_fast_forward']:5.2f}x"
        )

    speedups = [entry["speedup_vs_stepping"] for entry in results.values()]
    batch_speedups = [e["speedup_batch_vs_fast_forward"] for e in tracked.values()]
    report = {
        "benchmark": "kernel_fast_forward",
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "accesses": args.accesses,
        "repeats": args.repeats,
        "scenarios": results,
        "summary": {
            "min_speedup_vs_stepping": min(speedups),
            "max_speedup_vs_stepping": max(speedups),
            "batch_speedup_low_contention": min(batch_speedups),
            "all_bit_identical": True,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    # Regression gate on the tracked low-contention campaign wall-clock: the
    # batch path (the shipped default) must not be more than 20% slower than
    # the fast-forward baseline measured in this same process.
    regressed = [
        name
        for name, entry in tracked.items()
        if entry["wall_s_batch"] > REGRESSION_FACTOR * entry["wall_s_fast_forward"]
    ]
    if regressed:
        print(
            f"REGRESSION: batch path >{(REGRESSION_FACTOR - 1) * 100:.0f}% slower "
            f"than the fast-forward baseline on: {', '.join(regressed)}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
