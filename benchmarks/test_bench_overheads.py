"""Benchmark: implementation overheads (Section IV-B).

The paper synthesises the 4-core LEON3 with and without CBA: baseline FPGA
occupancy 73%, growth from adding CBA far below 0.1%, and no loss of the
100 MHz operating frequency.  The structural RTL cost model reproduces the
comparison: the CBA add-on is a handful of counters, comparators and control
bits per core, negligible next to the multicore.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.overheads import run_overheads
from repro.hw.rtl_cost import arbiter_cost, cba_addon_cost

def run_and_report(print_section):
    result = run_overheads()
    print_section("Section IV-B: implementation overhead of CBA (structural estimate)")
    rows = [
        ["base arbiter (random permutations)", result.base_arbiter_aluts],
        ["CBA add-on", result.cba_addon_aluts],
        ["whole multicore (73% of the DE4)", result.platform_aluts],
    ]
    print(format_table(["block", "ALUT-equivalent"], rows, float_format="{:.0f}"))
    print()
    print(f"CBA add-on vs whole platform: {result.addon_vs_platform_percent:.4f}%  "
          f"(paper claim: < {result.paper_claim_percent_upper_bound}%)")
    print()
    print_section("CBA add-on breakdown")
    addon = cba_addon_cost()
    breakdown_rows = [
        [name, ff, lut] for name, (ff, lut) in addon.breakdown.items()
    ]
    print(format_table(["block", "flip-flops", "LUTs"], breakdown_rows, float_format="{:.0f}"))
    print()
    print_section("Cost of every arbitration policy (for context)")
    policy_rows = []
    for policy in ("fixed_priority", "round_robin", "fifo", "tdma", "lottery", "random_permutations"):
        estimate = arbiter_cost(policy)
        policy_rows.append([policy, estimate.flip_flops, estimate.luts, estimate.alut_equivalent])
    print(format_table(["policy", "flip-flops", "LUTs", "ALUT-eq"], policy_rows, float_format="{:.0f}"))
    return result


def test_bench_implementation_overheads(benchmark, print_section):
    result = benchmark.pedantic(
        run_and_report, args=(print_section,), rounds=1, iterations=1
    )
    assert result.claim_holds
    assert result.addon_vs_platform_percent < 0.1
    assert result.cba_addon_aluts < result.platform_aluts / 1000
