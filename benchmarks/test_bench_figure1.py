"""Benchmark: Figure 1 — EEMBC slowdowns under RP / CBA / H-CBA.

Regenerates the normalised average execution times of ``cacheb``, ``canrdr``,
``matrix`` and ``tblook`` under the six configurations of the paper
({RP, CBA, H-CBA} x {isolation, maximum contention}), normalised to RP in
isolation.

Paper reference points (FPGA, 1,000 runs per configuration):

* worst contention slowdown without CBA: 3.34x (``matrix``);
* worst contention slowdown with CBA: 2.34x;
* CBA isolation overhead: ~3% on average;
* H-CBA isolation overhead: negligible;
* H-CBA further reduces the TuA's contention slowdown.

The simulated platform is not the authors' FPGA, so absolute values differ;
the assertions check the *shape*: orderings, the ~N bound with CBA, and the
small isolation overheads.  Run counts and workload sizes are controlled by
``REPRO_BENCH_RUNS`` / ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

from repro.experiments.figure1 import FIGURE1_CONFIGURATIONS, run_figure1

def run_and_report(print_section, num_runs: int, access_scale: float):
    result = run_figure1(
        num_runs=num_runs,
        access_scale=access_scale,
        seed=2017,
    )
    print_section(
        "Figure 1: normalised average execution time "
        f"(runs per config = {num_runs}, workload scale = {access_scale})"
    )
    print(result.to_table())
    print()
    print(f"worst RP-CON slowdown   : {result.worst_contention_slowdown('RP-CON'):.2f}  (paper: 3.34)")
    print(f"worst CBA-CON slowdown  : {result.worst_contention_slowdown('CBA-CON'):.2f}  (paper: 2.34)")
    print(f"worst H-CBA-CON slowdown: {result.worst_contention_slowdown('H-CBA-CON'):.2f}")
    print(f"CBA isolation overhead  : {100 * result.isolation_overhead('CBA-ISO'):.1f}%  (paper: ~3%)")
    print(f"H-CBA isolation overhead: {100 * result.isolation_overhead('H-CBA-ISO'):.1f}%  (paper: ~0%)")
    return result


def test_bench_figure1_slowdowns(benchmark, print_section, bench_runs, bench_scale):
    result = benchmark.pedantic(
        run_and_report, args=(print_section, bench_runs, bench_scale),
        rounds=1, iterations=1
    )
    for bench_name, per_config in result.slowdowns.items():
        assert set(per_config) == set(FIGURE1_CONFIGURATIONS)
        # Contention always costs something relative to the same bus in
        # isolation, and CBA bounds the damage.
        assert per_config["RP-CON"] > per_config["RP-ISO"]
        assert per_config["CBA-CON"] < per_config["RP-CON"]
        assert per_config["H-CBA-CON"] <= per_config["CBA-CON"] + 0.05
        # H-CBA is essentially free for the favoured core in isolation.
        assert per_config["H-CBA-ISO"] <= per_config["CBA-ISO"] + 0.02

    # Matrix is the most contention-sensitive benchmark, as in the paper.
    assert result.slowdowns["matrix"]["RP-CON"] == result.worst_contention_slowdown("RP-CON")
    # With CBA the worst slowdown stays in the vicinity of the core count.
    assert result.worst_contention_slowdown("CBA-CON") < 4.0
    # Isolation overheads: CBA is cheap on average, H-CBA nearly free.
    assert result.isolation_overhead("CBA-ISO") < 0.25
    assert result.isolation_overhead("H-CBA-ISO") < 0.08
