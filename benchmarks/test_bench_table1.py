"""Benchmark: Table I — signal-level behaviour of the CBA arbiter.

Regenerates the per-cycle signal table (budget counters, request lines,
compete bits) of the FPGA implementation in both operating modes and checks
the update rules the paper states:

* ``BUDGi`` increases by 1 per cycle, saturating at ``N*MaxL``, and decreases
  by ``N`` in every cycle core *i* uses the bus;
* in WCET-estimation mode the contenders' ``REQ`` lines are hardwired to 1
  and their ``COMP`` bits follow the budget-full ∧ TuA-request condition;
* in operation mode ``COMP`` bits are always set.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.table1 import run_table1

def run_and_report(print_section):
    result = run_table1(tua_requests=25, tua_request_duration=6, tua_gap_cycles=4)
    print_section("Table I: observed signal behaviour (first 20 cycles, WCET-estimation mode)")
    rows = result.wcet_mode_rows[:20]
    headers = list(rows[0].keys())
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))
    print_section("Table I: rule-check summary")
    for key, value in result.summary().items():
        print(f"{key:40s} {value}")
    return result


def test_bench_table1_signal_rules(benchmark, print_section):
    result = benchmark.pedantic(
        run_and_report, args=(print_section,), rounds=1, iterations=1
    )
    assert result.rules_hold
    assert len(result.wcet_mode_rows) > 0
    assert len(result.operation_mode_rows) > 0
    # Analysis mode creates more contention than operation mode for the same
    # TuA request stream, so it takes at least as long.
    assert len(result.wcet_mode_rows) >= len(result.operation_mode_rows)
