"""Benchmark: MBPTA compatibility (Section III-B).

The paper's WCET-estimation argument: execution times collected in the
analysis-time scenario (WCET-estimation mode, TuA starting with zero budget,
Table I contenders) are i.i.d. — thanks to the platform's randomisation — and
their EVT projection upper-bounds operation-time behaviour.  The benchmark
regenerates the full MBPTA campaign for one EEMBC benchmark on the CBA bus
and prints the i.i.d. verdicts, the Gumbel tail fit and the pWCET curve.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.mbpta_experiment import run_mbpta_experiment

def run_and_report(print_section, num_runs: int, access_scale: float):
    result = run_mbpta_experiment(
        benchmark="canrdr",
        configuration="CBA",
        num_runs=max(30, num_runs * 10),
        operation_runs=max(5, num_runs),
        access_scale=max(0.15, access_scale / 2),
        block_size=5,
    )
    print_section("MBPTA campaign: canrdr on the CBA bus (WCET-estimation mode)")
    print(format_table(
        ["i.i.d. test", "statistic", "p-value", "passed"],
        [[t.name, t.statistic, t.p_value, t.passed] for t in result.mbpta.iid_tests],
    ))
    print()
    fit = result.mbpta.evt.fit
    print(f"Gumbel tail fit: location={fit.location:.1f}, scale={fit.scale:.1f}, "
          f"method={fit.method}, goodness-of-fit passed={result.mbpta.evt.acceptable}")
    print()
    print(format_table(
        ["exceedance probability", "pWCET bound (cycles)"],
        [[f"{p:g}", bound] for p, bound in result.mbpta.pwcet.points()],
        float_format="{:.0f}",
    ))
    print()
    print(f"observed max (analysis mode) : {result.mbpta.observed_max:.0f}")
    print(f"observed max (operation mode): {max(result.operation_samples):.0f}")
    print(f"pWCET @ 1e-12                : {result.pwcet_bound:.0f}")
    return result


def test_bench_mbpta_pwcet(benchmark, print_section, bench_runs, bench_scale):
    result = benchmark.pedantic(
        run_and_report, args=(print_section, bench_runs, bench_scale),
        rounds=1, iterations=1
    )
    # The pWCET curve must dominate everything observed, in both modes.
    assert result.pwcet_bound >= result.mbpta.observed_max
    assert result.bound_dominates_operation
    # Execution times vary across runs (randomised platform) and the tail fit
    # is usable.
    assert len(set(result.mbpta.samples)) > 1
    assert result.mbpta.evt.fit.scale > 0
