"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in editable mode (``pip install -e .``) on
environments whose tooling predates PEP 660 editable wheels (no ``wheel``
package available offline).
"""

from setuptools import setup

setup()
