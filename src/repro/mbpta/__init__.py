"""Measurement-Based Probabilistic Timing Analysis (MBPTA) toolchain.

Implements the statistical pipeline the paper relies on for WCET estimation:
i.i.d. testing of execution-time observations, block-maxima extraction,
Gumbel tail fitting and pWCET curve projection.
"""

from .evt import EVTFit, block_maxima, fit_evt, goodness_of_fit
from .gumbel import GumbelFit, fit_gumbel_mle, fit_gumbel_moments
from .iid import (
    TestResult,
    iid_test_battery,
    ks_identical_distribution_test,
    ljung_box_test,
    runs_test,
)
from .protocol import MBPTAResult, mbpta_from_samples, run_mbpta
from .pwcet import DEFAULT_EXCEEDANCE_GRID, PWCETCurve

__all__ = [
    "TestResult",
    "iid_test_battery",
    "ks_identical_distribution_test",
    "runs_test",
    "ljung_box_test",
    "GumbelFit",
    "fit_gumbel_moments",
    "fit_gumbel_mle",
    "EVTFit",
    "block_maxima",
    "goodness_of_fit",
    "fit_evt",
    "PWCETCurve",
    "DEFAULT_EXCEEDANCE_GRID",
    "MBPTAResult",
    "run_mbpta",
    "mbpta_from_samples",
]
