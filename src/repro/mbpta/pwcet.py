"""Probabilistic WCET (pWCET) curves.

The output of MBPTA is not a single number but a curve: for each candidate
execution-time bound the probability that one run exceeds it.  Certification
arguments then pick the bound at the exceedance probability commensurate with
the integrity level (e.g. 10^-12 per run is a common reference point).

:class:`PWCETCurve` wraps a fitted tail model and answers the two questions
experiments ask: *what is the bound at probability p?* and *what is the
probability of exceeding bound x?*  Both accept either a scalar or a numpy
array of arguments, so a whole grid of probabilities is evaluated in one
vectorised call.  The curve also materialises itself at a standard grid of
probabilities for tabular reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..sim.errors import AnalysisError
from .evt import EVTFit

__all__ = ["PWCETCurve", "DEFAULT_EXCEEDANCE_GRID"]

#: Exceedance probabilities commonly reported in MBPTA studies.
DEFAULT_EXCEEDANCE_GRID: tuple[float, ...] = (
    1e-3,
    1e-6,
    1e-9,
    1e-12,
    1e-15,
)


@dataclass(frozen=True)
class PWCETCurve:
    """A pWCET curve derived from an EVT tail fit."""

    evt: EVTFit
    #: Observed maximum of the raw sample (the curve must dominate it).
    observed_max: float = 0.0
    exceedance_grid: tuple[float, ...] = field(default=DEFAULT_EXCEEDANCE_GRID)

    def wcet_at(self, exceedance: float | np.ndarray) -> float | np.ndarray:
        """pWCET bound at the given per-run exceedance probability.

        The EVT projection is clamped from below by the observed maximum: a
        probabilistic bound can never be smaller than something that was
        actually measured.  An array argument evaluates every probability in
        one vectorised call; the same ``(0, 1)`` domain check as the scalar
        path applies element-wise (NaN entries fail it too), so out-of-domain
        grids raise instead of yielding NaN/garbage bounds.
        """
        if isinstance(exceedance, np.ndarray):
            e = np.asarray(exceedance, dtype=np.float64)
            if e.size and not bool(np.all((e > 0.0) & (e < 1.0))):
                raise AnalysisError("exceedance probability must be in (0, 1)")
            return np.maximum(
                self.evt.fit.value_at_exceedance(e), self.observed_max
            )
        if not 0.0 < exceedance < 1.0:
            raise AnalysisError("exceedance probability must be in (0, 1)")
        return max(self.evt.fit.value_at_exceedance(exceedance), self.observed_max)

    def exceedance_of(self, bound: float | np.ndarray) -> float | np.ndarray:
        """Probability that one run exceeds ``bound`` according to the curve.

        Consistent with the observed-max clamp of :meth:`wcet_at`: the curve
        never emits a bound below the observed maximum, so for queries below
        it the exceedance saturates at 1.0 (something at least that large was
        actually measured; the raw model tail would not dominate there).

        NaN bounds are rejected: a NaN compares False against the observed
        maximum, so it would silently bypass the clamp and propagate a NaN
        probability into downstream tables.
        """
        if isinstance(bound, np.ndarray):
            b = np.asarray(bound, dtype=np.float64)
            if b.size and bool(np.isnan(b).any()):
                raise AnalysisError("pWCET bound query must not be NaN")
            model = self.evt.fit.exceedance_probability(b)
            return np.where(b < self.observed_max, 1.0, model)
        if math.isnan(bound):
            raise AnalysisError("pWCET bound query must not be NaN")
        if bound < self.observed_max:
            return 1.0
        return self.evt.fit.exceedance_probability(bound)

    def points(self) -> list[tuple[float, float]]:
        """The curve sampled at the standard grid: (probability, bound) pairs.

        One vectorised evaluation of the whole grid.
        """
        grid = np.asarray(self.exceedance_grid, dtype=np.float64)
        bounds = self.wcet_at(grid)
        return [(float(p), float(b)) for p, b in zip(grid, bounds, strict=True)]

    def as_dict(self) -> dict[str, object]:
        return {
            "observed_max": self.observed_max,
            "points": {f"{p:g}": bound for p, bound in self.points()},
            "evt": self.evt.as_dict(),
        }
