"""Extreme value theory machinery: block maxima and tail fitting.

The MBPTA flow implemented here follows the standard recipe:

1. collect ``R`` end-to-end execution-time observations of the task under
   analysis under the analysis-time (worst contention) scenario;
2. group them into blocks and keep each block's maximum (block maxima);
3. fit a Gumbel distribution to the block maxima;
4. check the fit (Kolmogorov–Smirnov goodness-of-fit against the fitted
   Gumbel);
5. project the fitted tail to the exceedance probabilities of interest
   (the pWCET curve, see :mod:`repro.mbpta.pwcet`).

EVT keeps only the high execution times, which is why MBPTA is robust to
effects that change the *average* behaviour but not the tail — the property
the paper appeals to when discussing the ``tblook`` cache-placement
sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..sim.errors import AnalysisError
from .gumbel import GumbelFit, fit_gumbel_mle, fit_gumbel_moments
from .iid import TestResult

__all__ = ["block_maxima", "goodness_of_fit", "EVTFit", "fit_evt"]


def block_maxima(samples, block_size: int = 10) -> np.ndarray:
    """Split ``samples`` into consecutive blocks and return each block's maximum.

    Trailing observations that do not fill a complete block are dropped, as is
    standard (they would bias the block-maximum distribution downwards).  The
    extraction is one reshape + row-max over the sample array; a ``float64``
    input (e.g. the read-only campaign sample vector) is used without copying.
    """
    data = np.asarray(samples, dtype=np.float64)
    if data.ndim != 1:
        raise AnalysisError("samples must be one-dimensional")
    if block_size < 1:
        raise AnalysisError("block size must be at least 1")
    num_blocks = data.size // block_size
    if num_blocks < 2:
        raise AnalysisError(
            f"need at least 2 complete blocks (block_size={block_size}, "
            f"samples={data.size})"
        )
    trimmed = data[: num_blocks * block_size]
    return trimmed.reshape(num_blocks, block_size).max(axis=1)


def goodness_of_fit(samples, fit: GumbelFit, alpha: float = 0.05) -> TestResult:
    """One-sample KS test of ``samples`` against the fitted Gumbel."""
    data = np.asarray(samples, dtype=np.float64)
    statistic, p_value = stats.kstest(
        data, "gumbel_r", args=(fit.location, fit.scale)
    )
    return TestResult(
        name="ks_goodness_of_fit",
        statistic=float(statistic),
        p_value=float(p_value),
        passed=bool(p_value > alpha),
        alpha=alpha,
        details=f"against Gumbel(mu={fit.location:.1f}, beta={fit.scale:.1f})",
    )


@dataclass(frozen=True)
class EVTFit:
    """Result of the EVT step: the tail model and its diagnostics."""

    fit: GumbelFit
    block_size: int
    num_blocks: int
    gof: TestResult

    @property
    def acceptable(self) -> bool:
        """Whether the tail model passed the goodness-of-fit check."""
        return self.gof.passed

    def as_dict(self) -> dict[str, object]:
        return {
            "fit": self.fit.as_dict(),
            "block_size": self.block_size,
            "num_blocks": self.num_blocks,
            "goodness_of_fit": self.gof.as_dict(),
        }


def fit_evt(
    samples,
    block_size: int = 10,
    use_mle: bool = True,
    alpha: float = 0.05,
) -> EVTFit:
    """Run the block-maxima + Gumbel pipeline on raw execution times."""
    maxima = block_maxima(samples, block_size=block_size)
    if np.std(maxima) == 0:
        # A perfectly deterministic tail (possible for tiny tests): widen it
        # with the raw sample's variability so a degenerate fit still yields a
        # usable, conservative model instead of crashing.
        raw = np.asarray(samples, dtype=np.float64)
        jitter = max(np.std(raw), 1.0) * 1e-3
        maxima = maxima + np.linspace(0.0, jitter, maxima.size)
    fitter = fit_gumbel_mle if use_mle else fit_gumbel_moments
    fit = fitter(maxima)
    gof = goodness_of_fit(maxima, fit, alpha=alpha)
    return EVTFit(fit=fit, block_size=block_size, num_blocks=int(maxima.size), gof=gof)
