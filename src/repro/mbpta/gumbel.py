"""Gumbel (EVT type I) distribution fitting.

MBPTA models the tail of the execution-time distribution with the Gumbel
distribution (the Generalised Extreme Value distribution with shape ξ = 0),
which is the standard choice for pWCET estimation: block maxima of
execution-time samples converge to a GEV, and industrial MBPTA constrains the
shape to the Gumbel case for conservativeness and stability.

Two estimators are provided:

* method of moments — closed form, robust, used as the initial guess;
* maximum likelihood — a Newton–Raphson solve of the Gumbel profile
  likelihood whose per-iteration work is fully vectorised over the sample
  array (falling back to :func:`scipy.stats.gumbel_r.fit` and then to
  moments if the solve does not converge).

The fitted model exposes the CDF, quantiles and exceedance probabilities the
pWCET curve needs; each accepts either a scalar or a numpy array, so a whole
grid of probabilities is evaluated in one call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..sim.errors import AnalysisError

__all__ = ["GumbelFit", "fit_gumbel_moments", "fit_gumbel_mle"]

#: Euler–Mascheroni constant, used by the method-of-moments estimator.
_EULER_GAMMA = 0.5772156649015329

#: Newton–Raphson controls for the maximum-likelihood scale solve.
_MLE_MAX_ITERATIONS = 100
_MLE_RELATIVE_TOLERANCE = 1e-12


@dataclass(frozen=True)
class GumbelFit:
    """A fitted Gumbel distribution ``G(x) = exp(-exp(-(x - mu)/beta))``."""

    location: float
    scale: float
    method: str = "moments"
    sample_size: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise AnalysisError("Gumbel scale must be positive")

    def cdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Probability that an observation does not exceed ``x``."""
        if isinstance(x, np.ndarray):
            z = (x - self.location) / self.scale
            return np.exp(-np.exp(-z))
        z = (x - self.location) / self.scale
        return math.exp(-math.exp(-z))

    def exceedance_probability(self, x: float | np.ndarray) -> float | np.ndarray:
        """Probability that an observation exceeds ``x`` (the pWCET reading)."""
        return 1.0 - self.cdf(x)

    def quantile(self, probability: float | np.ndarray) -> float | np.ndarray:
        """Value not exceeded with the given probability (inverse CDF)."""
        if isinstance(probability, np.ndarray):
            p = np.asarray(probability, dtype=np.float64)
            # Element-wise check rather than min/max bounds: NaN compares
            # False against both bounds and would otherwise slip through.
            if p.size and not bool(np.all((p > 0.0) & (p < 1.0))):
                raise AnalysisError("quantile probability must be in (0, 1)")
            return self.location - self.scale * np.log(-np.log(p))
        if not 0.0 < probability < 1.0:
            raise AnalysisError("quantile probability must be in (0, 1)")
        return self.location - self.scale * math.log(-math.log(probability))

    def value_at_exceedance(self, exceedance: float | np.ndarray) -> float | np.ndarray:
        """The pWCET estimate at a target exceedance probability.

        For the tiny exceedance probabilities MBPTA uses (10^-9 ... 10^-16 per
        run), ``-log(1 - p)`` underflows, so the asymptotic expansion
        ``quantile(1 - p) ≈ mu - beta * log(p)`` is used instead.  An array
        argument evaluates the whole probability grid in one vectorised call
        (same formulas, same branch point as the scalar path).
        """
        if isinstance(exceedance, np.ndarray):
            e = np.asarray(exceedance, dtype=np.float64)
            # Element-wise for the same reason as quantile(): NaN must raise,
            # not propagate into the pWCET grid.
            if e.size and not bool(np.all((e > 0.0) & (e < 1.0))):
                raise AnalysisError("exceedance probability must be in (0, 1)")
            values = np.empty_like(e)
            tiny = e < 1e-12
            values[tiny] = self.location - self.scale * np.log(e[tiny])
            rest = ~tiny
            values[rest] = self.location - self.scale * np.log(-np.log(1.0 - e[rest]))
            return values
        if not 0.0 < exceedance < 1.0:
            raise AnalysisError("exceedance probability must be in (0, 1)")
        if exceedance < 1e-12:
            return self.location - self.scale * math.log(exceedance)
        return self.quantile(1.0 - exceedance)

    def mean(self) -> float:
        return self.location + _EULER_GAMMA * self.scale

    def as_dict(self) -> dict[str, float | str | int]:
        return {
            "location": self.location,
            "scale": self.scale,
            "method": self.method,
            "sample_size": self.sample_size,
        }


def _validate(samples) -> np.ndarray:
    data = np.asarray(samples, dtype=np.float64)
    if data.ndim != 1:
        raise AnalysisError("samples must be one-dimensional")
    if data.size < 5:
        raise AnalysisError(f"need at least 5 samples to fit a Gumbel, got {data.size}")
    if np.std(data) == 0:
        raise AnalysisError("cannot fit a Gumbel to a constant sample")
    return data


def fit_gumbel_moments(samples) -> GumbelFit:
    """Method-of-moments fit: matches the sample mean and standard deviation."""
    data = _validate(samples)
    std = float(np.std(data, ddof=1))
    mean = float(np.mean(data))
    scale = std * math.sqrt(6.0) / math.pi
    location = mean - _EULER_GAMMA * scale
    return GumbelFit(location=location, scale=scale, method="moments", sample_size=data.size)


def _solve_mle_scale(data: np.ndarray, initial_scale: float) -> tuple[float, float] | None:
    """Newton–Raphson solve of the Gumbel likelihood equations.

    The MLE scale ``beta`` is the root of

        f(beta) = beta - mean(x) + sum(x * z) / sum(z),   z_i = exp(-x_i / beta),

    and the location then follows in closed form.  Each iteration is a few
    vectorised reductions over the sample; exponents are shifted by ``min(x)``
    for numerical stability (the shift cancels in the ratio).  Returns
    ``(location, scale)`` or ``None`` when the iteration leaves the valid
    domain or fails to converge.
    """
    x = data
    n = x.size
    minimum = float(x.min())
    mean = float(x.mean())
    shifted = x - minimum
    beta = float(initial_scale)
    for _ in range(_MLE_MAX_ITERATIONS):
        z = np.exp(-shifted / beta)
        sum_z = float(z.sum())
        sum_xz = float(np.dot(x, z))
        f = beta - mean + sum_xz / sum_z
        # d z_i / d beta = z_i * shifted_i / beta^2
        u = shifted / (beta * beta)
        zu = z * u
        sum_zu = float(zu.sum())
        sum_xzu = float(np.dot(x, zu))
        derivative = 1.0 + (sum_xzu * sum_z - sum_xz * sum_zu) / (sum_z * sum_z)
        if derivative == 0.0 or not math.isfinite(derivative):
            return None
        step = f / derivative
        beta_next = beta - step
        if not math.isfinite(beta_next) or beta_next <= 0.0:
            return None
        if abs(step) <= _MLE_RELATIVE_TOLERANCE * max(1.0, abs(beta_next)):
            beta = beta_next
            break
        beta = beta_next
    else:
        return None
    z = np.exp(-(x - minimum) / beta)
    location = minimum - beta * math.log(float(z.sum()) / n)
    if not math.isfinite(location):
        return None
    return location, beta


def fit_gumbel_mle(samples) -> GumbelFit:
    """Maximum-likelihood fit (vectorised Newton solve, scipy/moments fallback)."""
    data = _validate(samples)
    guess = fit_gumbel_moments(data)
    solved = _solve_mle_scale(data, guess.scale)
    if solved is None:
        try:
            solved = stats.gumbel_r.fit(data, loc=guess.location, scale=guess.scale)
        except (RuntimeError, ValueError):
            return guess
    location, scale = solved
    if not np.isfinite(location) or not np.isfinite(scale) or scale <= 0:
        return guess
    return GumbelFit(
        location=float(location), scale=float(scale), method="mle", sample_size=data.size
    )
