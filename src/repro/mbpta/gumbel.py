"""Gumbel (EVT type I) distribution fitting.

MBPTA models the tail of the execution-time distribution with the Gumbel
distribution (the Generalised Extreme Value distribution with shape ξ = 0),
which is the standard choice for pWCET estimation: block maxima of
execution-time samples converge to a GEV, and industrial MBPTA constrains the
shape to the Gumbel case for conservativeness and stability.

Two estimators are provided:

* method of moments — closed form, robust, used as the initial guess;
* maximum likelihood — via :func:`scipy.stats.gumbel_r.fit`.

The fitted model exposes the CDF, quantiles and exceedance probabilities the
pWCET curve needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..sim.errors import AnalysisError

__all__ = ["GumbelFit", "fit_gumbel_moments", "fit_gumbel_mle"]

#: Euler–Mascheroni constant, used by the method-of-moments estimator.
_EULER_GAMMA = 0.5772156649015329


@dataclass(frozen=True)
class GumbelFit:
    """A fitted Gumbel distribution ``G(x) = exp(-exp(-(x - mu)/beta))``."""

    location: float
    scale: float
    method: str = "moments"
    sample_size: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise AnalysisError("Gumbel scale must be positive")

    def cdf(self, x: float) -> float:
        """Probability that an observation does not exceed ``x``."""
        z = (x - self.location) / self.scale
        return math.exp(-math.exp(-z))

    def exceedance_probability(self, x: float) -> float:
        """Probability that an observation exceeds ``x`` (the pWCET reading)."""
        return 1.0 - self.cdf(x)

    def quantile(self, probability: float) -> float:
        """Value not exceeded with the given probability (inverse CDF)."""
        if not 0.0 < probability < 1.0:
            raise AnalysisError("quantile probability must be in (0, 1)")
        return self.location - self.scale * math.log(-math.log(probability))

    def value_at_exceedance(self, exceedance: float) -> float:
        """The pWCET estimate at a target exceedance probability.

        For the tiny exceedance probabilities MBPTA uses (10^-9 ... 10^-16 per
        run), ``-log(1 - p)`` underflows, so the asymptotic expansion
        ``quantile(1 - p) ≈ mu - beta * log(p)`` is used instead.
        """
        if not 0.0 < exceedance < 1.0:
            raise AnalysisError("exceedance probability must be in (0, 1)")
        if exceedance < 1e-12:
            return self.location - self.scale * math.log(exceedance)
        return self.quantile(1.0 - exceedance)

    def mean(self) -> float:
        return self.location + _EULER_GAMMA * self.scale

    def as_dict(self) -> dict[str, float | str | int]:
        return {
            "location": self.location,
            "scale": self.scale,
            "method": self.method,
            "sample_size": self.sample_size,
        }


def _validate(samples) -> np.ndarray:
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1:
        raise AnalysisError("samples must be one-dimensional")
    if data.size < 5:
        raise AnalysisError(f"need at least 5 samples to fit a Gumbel, got {data.size}")
    if np.std(data) == 0:
        raise AnalysisError("cannot fit a Gumbel to a constant sample")
    return data


def fit_gumbel_moments(samples) -> GumbelFit:
    """Method-of-moments fit: matches the sample mean and standard deviation."""
    data = _validate(samples)
    std = float(np.std(data, ddof=1))
    mean = float(np.mean(data))
    scale = std * math.sqrt(6.0) / math.pi
    location = mean - _EULER_GAMMA * scale
    return GumbelFit(location=location, scale=scale, method="moments", sample_size=data.size)


def fit_gumbel_mle(samples) -> GumbelFit:
    """Maximum-likelihood fit (falls back to moments if the optimiser fails)."""
    data = _validate(samples)
    guess = fit_gumbel_moments(data)
    try:
        location, scale = stats.gumbel_r.fit(data, loc=guess.location, scale=guess.scale)
    except (RuntimeError, ValueError):
        return guess
    if not np.isfinite(location) or not np.isfinite(scale) or scale <= 0:
        return guess
    return GumbelFit(
        location=float(location), scale=float(scale), method="mle", sample_size=data.size
    )
