"""The end-to-end MBPTA measurement protocol.

Putting the pieces together, an MBPTA campaign for one task and one platform
configuration is:

1. run the task ``num_runs`` times under the analysis-time scenario
   (worst-case contention, randomised caches and arbitration, fresh random
   streams per run, TuA starting with zero budget when CBA is enabled);
2. check the i.i.d. hypotheses on the collected execution times;
3. fit the EVT tail (block maxima + Gumbel);
4. produce the pWCET curve.

:func:`run_mbpta` drives the whole flow given a *scenario runner* — any
callable mapping a run index to one execution-time observation — so the same
protocol applies to simulator runs, to the signal-level model, and to
externally supplied measurement vectors (e.g. real hardware traces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..sim.errors import AnalysisError
from .evt import EVTFit, fit_evt
from .iid import TestResult, iid_test_battery
from .pwcet import PWCETCurve

__all__ = ["MBPTAResult", "run_mbpta", "mbpta_from_samples"]


def _as_readonly_samples(samples: Sequence[float] | np.ndarray) -> np.ndarray:
    """Normalise ``samples`` into a read-only ``float64`` vector without copying.

    A ``float64`` array is adopted in place (the returned object is a
    read-only *view*, so the caller's own array keeps its writeability);
    anything else — lists, tuples, integer arrays — is converted once.
    """
    data = np.asarray(samples, dtype=np.float64)
    if data.ndim != 1:
        raise AnalysisError("samples must be one-dimensional")
    view = data.view()
    view.flags.writeable = False
    return view


@dataclass(frozen=True)
class MBPTAResult:
    """Everything produced by one MBPTA campaign.

    ``samples`` is held as a read-only ``float64`` array — the columnar form
    every downstream consumer (i.i.d. battery, EVT fit, pWCET grid) operates
    on directly.
    """

    samples: np.ndarray
    iid_tests: tuple[TestResult, ...]
    evt: EVTFit
    pwcet: PWCETCurve
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def iid_ok(self) -> bool:
        """Whether every i.i.d. test passed."""
        return all(test.passed for test in self.iid_tests)

    @property
    def observed_max(self) -> float:
        return float(self.samples.max())

    @property
    def observed_mean(self) -> float:
        return float(self.samples.mean())

    def wcet_at(self, exceedance: float = 1e-12) -> float:
        """Convenience accessor for the pWCET bound at ``exceedance``."""
        return self.pwcet.wcet_at(exceedance)

    def summary(self) -> dict[str, object]:
        pwcet_grid = {f"{p:g}": bound for p, bound in self.pwcet.points()}
        return {
            "runs": int(self.samples.size),
            "mean": self.observed_mean,
            "max": self.observed_max,
            "iid_ok": self.iid_ok,
            "gof_ok": self.evt.acceptable,
            "pwcet": pwcet_grid,
            **self.metadata,
        }


def mbpta_from_samples(
    samples: Sequence[float] | np.ndarray,
    block_size: int = 10,
    alpha: float = 0.05,
    metadata: dict[str, object] | None = None,
) -> MBPTAResult:
    """Run the analysis part of MBPTA on already-collected execution times.

    ``samples`` may be any sequence; a ``float64`` numpy array is adopted
    without copying and held read-only, so campaign-sized sample vectors flow
    straight from the aggregation layer into the analysis.
    """
    data = _as_readonly_samples(samples)
    if data.size < 20:
        raise AnalysisError(
            f"MBPTA needs a reasonable number of observations (got {data.size}, want >= 20)"
        )
    tests = tuple(iid_test_battery(data, alpha=alpha))
    # Keep at least five block maxima so the Gumbel fit is well posed even
    # for small measurement campaigns: shrink the block size if necessary.
    effective_block_size = max(2, min(block_size, int(data.size) // 5))
    evt = fit_evt(data, block_size=effective_block_size, alpha=alpha)
    curve = PWCETCurve(evt=evt, observed_max=float(data.max()))
    return MBPTAResult(
        samples=data,
        iid_tests=tests,
        evt=evt,
        pwcet=curve,
        metadata=dict(metadata or {}),
    )


def run_mbpta(
    scenario_runner: Callable[[int], float],
    num_runs: int = 100,
    block_size: int = 10,
    alpha: float = 0.05,
    metadata: dict[str, object] | None = None,
) -> MBPTAResult:
    """Collect ``num_runs`` observations with ``scenario_runner`` and analyse them.

    Parameters
    ----------
    scenario_runner:
        Callable mapping the run index to one execution-time observation.
        Each call must use a fresh randomisation (the run index is the
        conventional way to derive per-run random streams).
    num_runs:
        Number of observations (the paper uses 1,000 runs per configuration;
        tests and CI use fewer).
    """
    if num_runs < 20:
        raise AnalysisError("MBPTA needs at least 20 runs")
    samples = np.fromiter(
        (float(scenario_runner(run)) for run in range(num_runs)),
        dtype=np.float64,
        count=num_runs,
    )
    return mbpta_from_samples(
        samples, block_size=block_size, alpha=alpha, metadata=metadata
    )
