"""Independence and identical-distribution (i.i.d.) tests.

MBPTA is only sound when the execution-time observations collected at
analysis time can be treated as independent and identically distributed
random variables.  Industrial MBPTA practice (Cucu-Grosjean et al., ECRTS
2012) checks this with statistical tests before fitting EVT models; this
module provides the standard battery:

* two-sample Kolmogorov–Smirnov test on the two halves of the sample
  (identical distribution over time);
* Wald–Wolfowitz runs test around the median (independence / randomness);
* Ljung–Box test on the autocorrelation function (serial independence).

Each test returns a :class:`TestResult` with a statistic, a p-value and a
pass/fail verdict at the requested significance level (MBPTA commonly uses
α = 0.05).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..sim.errors import AnalysisError

__all__ = [
    "TestResult",
    "ks_identical_distribution_test",
    "runs_test",
    "ljung_box_test",
    "iid_test_battery",
]


@dataclass(frozen=True)
class TestResult:
    """Outcome of one statistical test."""

    name: str
    statistic: float
    p_value: float
    passed: bool
    alpha: float
    details: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "statistic": self.statistic,
            "p_value": self.p_value,
            "passed": self.passed,
            "alpha": self.alpha,
            "details": self.details,
        }


def _as_array(samples) -> np.ndarray:
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1:
        raise AnalysisError("samples must be one-dimensional")
    if data.size < 10:
        raise AnalysisError(f"need at least 10 samples for i.i.d. testing, got {data.size}")
    return data


def ks_identical_distribution_test(samples, alpha: float = 0.05) -> TestResult:
    """Two-sample KS test between the first and second half of the sample.

    If the observations are identically distributed over time, the two halves
    come from the same distribution and the test should not reject.
    """
    data = _as_array(samples)
    half = data.size // 2
    first, second = data[:half], data[half:]
    statistic, p_value = stats.ks_2samp(first, second, method="asymp")
    return TestResult(
        name="ks_identical_distribution",
        statistic=float(statistic),
        p_value=float(p_value),
        passed=bool(p_value > alpha),
        alpha=alpha,
        details=f"halves of sizes {first.size}/{second.size}",
    )


def runs_test(samples, alpha: float = 0.05) -> TestResult:
    """Wald–Wolfowitz runs test around the median.

    Counts runs of observations above/below the median; too few runs indicate
    positive serial correlation (trends), too many indicate alternation.  The
    test statistic is asymptotically standard normal under independence.
    """
    data = _as_array(samples)
    median = np.median(data)
    # Drop values equal to the median (standard treatment).
    signs = data[data != median] > median
    n1 = int(np.sum(signs))
    n2 = int(signs.size - n1)
    if n1 == 0 or n2 == 0:
        # Degenerate sample (e.g. all values identical): independence cannot
        # be rejected, but flag it in the details.
        return TestResult(
            name="runs_test",
            statistic=0.0,
            p_value=1.0,
            passed=True,
            alpha=alpha,
            details="degenerate sample: all observations on one side of the median",
        )
    runs = 1 + int(np.sum(signs[1:] != signs[:-1]))
    expected = 1 + 2 * n1 * n2 / (n1 + n2)
    variance = (2 * n1 * n2 * (2 * n1 * n2 - n1 - n2)) / (
        (n1 + n2) ** 2 * (n1 + n2 - 1)
    )
    if variance <= 0:
        raise AnalysisError("runs test variance is not positive")
    z = (runs - expected) / np.sqrt(variance)
    p_value = 2 * stats.norm.sf(abs(z))
    return TestResult(
        name="runs_test",
        statistic=float(z),
        p_value=float(p_value),
        passed=bool(p_value > alpha),
        alpha=alpha,
        details=f"runs={runs}, expected={expected:.1f}",
    )


#: Above this lag count the autocovariance sweep switches to the single
#: O(n log n) FFT pass (Wiener–Khinchin).  Below it — which includes the
#: battery's default of 10 lags at any sample size — ``lags + 1`` vectorised
#: dot products are both cheaper (measured: ~0.2 ms for 100k samples vs
#: ~12 ms for the FFT, and ~100x cheaper than a full ``np.correlate`` sweep)
#: and bit-exact against the scalar per-lag reference.
_AUTOCOVARIANCE_FFT_LAGS = 64


def _autocovariances(centred: np.ndarray, lags: int) -> np.ndarray:
    """``[sum(centred[k:] * centred[:-k]) for k in 0..lags]``.

    Few lags (the battery's case) take one vectorised dot product per lag —
    O(n * lags), exact; many-lag analyses take one FFT pass, whose round-off
    stays ~1e-9 relative on the statistic while costing O(n log n)
    regardless of the lag count.
    """
    if lags <= _AUTOCOVARIANCE_FFT_LAGS:
        values = np.empty(lags + 1, dtype=np.float64)
        values[0] = np.dot(centred, centred)
        for lag in range(1, lags + 1):
            values[lag] = np.dot(centred[lag:], centred[:-lag])
        return values
    n = centred.size
    size = 1 << int(np.ceil(np.log2(2 * n - 1)))
    spectrum = np.fft.rfft(centred, size)
    return np.fft.irfft(spectrum * np.conj(spectrum), size)[: lags + 1]


def ljung_box_test(samples, lags: int = 10, alpha: float = 0.05) -> TestResult:
    """Ljung–Box portmanteau test for autocorrelation up to ``lags`` lags.

    The autocovariances for every lag come out of one sweep
    (:func:`_autocovariances`); lag 0 of that sweep is the normalising sum of
    squares, so the statistic is then a couple of array reductions rather
    than a per-lag Python accumulation.
    """
    data = _as_array(samples)
    n = data.size
    lags = min(lags, n // 4)
    if lags < 1:
        raise AnalysisError("not enough samples for the Ljung-Box test")
    centred = data - data.mean()
    autocovariances = _autocovariances(centred, lags)
    denominator = float(autocovariances[0])
    if denominator == 0.0:
        return TestResult(
            name="ljung_box",
            statistic=0.0,
            p_value=1.0,
            passed=True,
            alpha=alpha,
            details="degenerate sample: zero variance",
        )
    autocorrelations = autocovariances[1:] / denominator
    weights = 1.0 / (n - np.arange(1, lags + 1, dtype=np.float64))
    q = float(n * (n + 2) * np.dot(np.square(autocorrelations), weights))
    p_value = float(stats.chi2.sf(q, df=lags))
    return TestResult(
        name="ljung_box",
        statistic=float(q),
        p_value=p_value,
        passed=bool(p_value > alpha),
        alpha=alpha,
        details=f"lags={lags}",
    )


def iid_test_battery(samples, alpha: float = 0.05) -> list[TestResult]:
    """Run the full i.i.d. battery and return the individual results."""
    return [
        ks_identical_distribution_test(samples, alpha=alpha),
        runs_test(samples, alpha=alpha),
        ljung_box_test(samples, alpha=alpha),
    ]
