"""Credit (budget) accounts — the heart of CBA.

Each core owns a budget that tracks how much bus time it is entitled to use.
Equation 1 of the paper defines the dynamics:

``Budget_i(t+1) = min(Budget_i(t) + 1/N, MaxL)``

and the budget decreases by 1 for every cycle the core holds the bus.  To keep
all arithmetic integral (and match the 8-bit hardware counters of Table I),
budgets are stored *scaled by N*: the full budget is ``N * MaxL`` (228 for the
paper's ``N = 4``, ``MaxL = 56``), replenishment adds the core's scaled share
(1 for homogeneous CBA) per cycle, and holding the bus drains ``N`` per cycle.

A core is *eligible* for arbitration only when its budget is full — exactly
the filter rule of Section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.config import CBAParameters
from ..sim.errors import BudgetError

__all__ = ["CreditAccount", "CreditBank"]


@dataclass(slots=True)
class CreditAccount:
    """The budget counter of one core (values scaled by the core count).

    Attributes
    ----------
    core_id:
        The core this account belongs to.
    full_budget:
        Scaled budget required for eligibility (``N * MaxL``).
    cap:
        Scaled saturation value.  Equal to ``full_budget`` for homogeneous
        CBA; H-CBA may let a favoured core accumulate beyond the full budget
        (Section III-A, option 1), enabling back-to-back grants.
    replenish_share:
        Scaled per-cycle replenishment (1 for homogeneous CBA, i.e. 1/N
        unscaled; H-CBA redistributes the N units across cores).
    drain_per_cycle:
        Scaled drain applied for each cycle the core holds the bus (``N``).
    balance:
        Current scaled budget.
    """

    core_id: int
    full_budget: int
    cap: int
    replenish_share: int
    drain_per_cycle: int
    balance: int = 0
    #: Running totals for analysis: how much was ever earned / spent.
    total_replenished: int = field(default=0, repr=False)
    total_drained: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.full_budget <= 0:
            raise BudgetError("full budget must be positive")
        if self.cap < self.full_budget:
            raise BudgetError("budget cap cannot be below the full budget")
        if self.replenish_share <= 0:
            raise BudgetError("replenishment share must be positive")
        if self.drain_per_cycle <= 0:
            raise BudgetError("drain per cycle must be positive")
        if not 0 <= self.balance <= self.cap:
            raise BudgetError(
                f"initial balance {self.balance} outside [0, {self.cap}]"
            )

    @property
    def eligible(self) -> bool:
        """True when the core may be arbitrated (budget at least full)."""
        return self.balance >= self.full_budget

    @property
    def deficit(self) -> int:
        """Scaled budget still missing before the core becomes eligible."""
        return max(0, self.full_budget - self.balance)

    def cycles_until_eligible(self) -> int:
        """Cycles of replenishment needed before the core becomes eligible."""
        if self.eligible:
            return 0
        # Ceiling division: the last replenishment may overshoot into the cap.
        return -(-self.deficit // self.replenish_share)

    def replenish(self) -> None:
        """Apply one cycle of budget recovery (saturating at the cap)."""
        new_balance = min(self.balance + self.replenish_share, self.cap)
        self.total_replenished += new_balance - self.balance
        self.balance = new_balance

    def replenish_many(self, cycles: int) -> None:
        """Apply ``cycles`` cycles of recovery at once.

        Exactly equivalent to ``cycles`` :meth:`replenish` calls: the balance
        saturates at the cap, and ``total_replenished`` accumulates only what
        was actually gained.
        """
        new_balance = min(self.balance + self.replenish_share * cycles, self.cap)
        self.total_replenished += new_balance - self.balance
        self.balance = new_balance

    def drain(self) -> None:
        """Charge one cycle of bus usage.

        The balance is floored at zero: with the paper's parameters a core can
        only be granted with a full budget and the longest transaction exactly
        exhausts it (``MaxL`` cycles × drain ``N`` = ``N*MaxL``), but H-CBA
        caps above the full budget plus the concurrent replenishment make the
        floor a safety net rather than dead code.
        """
        drained = min(self.drain_per_cycle, self.balance)
        self.total_drained += drained
        self.balance -= drained

    def reset(self, balance: int | None = None) -> None:
        """Reset the running totals and set the balance (default: full)."""
        self.balance = self.full_budget if balance is None else balance
        if not 0 <= self.balance <= self.cap:
            raise BudgetError(f"reset balance {self.balance} outside [0, {self.cap}]")
        self.total_replenished = 0
        self.total_drained = 0


class CreditBank:
    """The set of credit accounts of all cores, built from :class:`CBAParameters`."""

    def __init__(self, params: CBAParameters) -> None:
        self.params = params
        self.accounts = [
            CreditAccount(
                core_id=core,
                full_budget=params.scaled_full_budget,
                cap=params.cap_for(core),
                replenish_share=params.share_for(core),
                drain_per_cycle=params.drain_per_busy_cycle,
                balance=params.initial_for(core),
            )
            for core in range(params.num_cores)
        ]

    def __len__(self) -> int:
        return len(self.accounts)

    def __getitem__(self, core_id: int) -> CreditAccount:
        return self.accounts[core_id]

    def eligible_cores(self) -> list[int]:
        """Cores currently allowed to take part in arbitration."""
        return [acct.core_id for acct in self.accounts if acct.eligible]

    def step(self, holder: int | None) -> None:
        """Advance one cycle: replenish every core, drain the bus holder."""
        for account in self.accounts:
            account.replenish()
        if holder is not None:
            self.accounts[holder].drain()

    def advance(self, cycles: int, holder: int | None) -> None:
        """Advance ``cycles`` cycles at once with a constant bus ``holder``.

        Exactly equivalent to ``cycles`` :meth:`step` calls.  Non-holders only
        replenish, which has a closed form; the holder interleaves replenish
        and drain (whose saturation/floor interplay has regimes), so its
        account is stepped cycle by cycle — bounded by the transaction length,
        i.e. at most ``MaxL`` iterations, inlined on local variables because
        this runs for every fast-forwarded stretch of a CBA run.
        """
        for account in self.accounts:
            if account.core_id == holder:
                share = account.replenish_share
                drain = account.drain_per_cycle
                cap = account.cap
                balance = account.balance
                replenished = 0
                drained = 0
                for _ in range(cycles):
                    new_balance = balance + share
                    if new_balance > cap:
                        new_balance = cap
                    replenished += new_balance - balance
                    paid = drain if drain < new_balance else new_balance
                    drained += paid
                    balance = new_balance - paid
                account.balance = balance
                account.total_replenished += replenished
                account.total_drained += drained
            else:
                account.replenish_many(cycles)

    def balances(self) -> list[int]:
        return [account.balance for account in self.accounts]

    def set_initial_budget(self, core_id: int, balance: int) -> None:
        """Force a core's starting budget (the paper zeroes the TuA's budget
        when collecting WCET-estimation measurements)."""
        self.accounts[core_id].reset(balance)

    def reset(self) -> None:
        for core, account in enumerate(self.accounts):
            account.reset(self.params.initial_for(core))
