"""Credit (budget) accounts — the heart of CBA.

Each core owns a budget that tracks how much bus time it is entitled to use.
Equation 1 of the paper defines the dynamics:

``Budget_i(t+1) = min(Budget_i(t) + 1/N, MaxL)``

and the budget decreases by 1 for every cycle the core holds the bus.  To keep
all arithmetic integral (and match the 8-bit hardware counters of Table I),
budgets are stored *scaled by N*: the full budget is ``N * MaxL`` (228 for the
paper's ``N = 4``, ``MaxL = 56``), replenishment adds the core's scaled share
(1 for homogeneous CBA) per cycle, and holding the bus drains ``N`` per cycle.

A core is *eligible* for arbitration only when its budget is full — exactly
the filter rule of Section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..sim.config import CBAParameters
from ..sim.errors import BudgetError

__all__ = ["CreditAccount", "CreditBank"]


@dataclass(slots=True)
class CreditAccount:
    """The budget counter of one core (values scaled by the core count).

    Attributes
    ----------
    core_id:
        The core this account belongs to.
    full_budget:
        Scaled budget required for eligibility (``N * MaxL``).
    cap:
        Scaled saturation value.  Equal to ``full_budget`` for homogeneous
        CBA; H-CBA may let a favoured core accumulate beyond the full budget
        (Section III-A, option 1), enabling back-to-back grants.
    replenish_share:
        Scaled per-cycle replenishment (1 for homogeneous CBA, i.e. 1/N
        unscaled; H-CBA redistributes the N units across cores).
    drain_per_cycle:
        Scaled drain applied for each cycle the core holds the bus (``N``).
    balance:
        Current scaled budget.
    """

    core_id: int
    full_budget: int
    cap: int
    replenish_share: int
    drain_per_cycle: int
    balance: int = 0
    #: Running totals for analysis: how much was ever earned / spent.
    total_replenished: int = field(default=0, repr=False)
    total_drained: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.full_budget <= 0:
            raise BudgetError("full budget must be positive")
        if self.cap < self.full_budget:
            raise BudgetError("budget cap cannot be below the full budget")
        if self.replenish_share <= 0:
            raise BudgetError("replenishment share must be positive")
        if self.drain_per_cycle <= 0:
            raise BudgetError("drain per cycle must be positive")
        if not 0 <= self.balance <= self.cap:
            raise BudgetError(
                f"initial balance {self.balance} outside [0, {self.cap}]"
            )

    @property
    def eligible(self) -> bool:
        """True when the core may be arbitrated (budget at least full)."""
        return self.balance >= self.full_budget

    @property
    def deficit(self) -> int:
        """Scaled budget still missing before the core becomes eligible."""
        return max(0, self.full_budget - self.balance)

    def cycles_until_eligible(self) -> int:
        """Cycles of replenishment needed before the core becomes eligible."""
        if self.eligible:
            return 0
        # Ceiling division: the last replenishment may overshoot into the cap.
        return -(-self.deficit // self.replenish_share)

    def replenish(self) -> None:
        """Apply one cycle of budget recovery (saturating at the cap)."""
        new_balance = min(self.balance + self.replenish_share, self.cap)
        self.total_replenished += new_balance - self.balance
        self.balance = new_balance

    def replenish_many(self, cycles: int) -> None:
        """Apply ``cycles`` cycles of recovery at once.

        Exactly equivalent to ``cycles`` :meth:`replenish` calls: the balance
        saturates at the cap, and ``total_replenished`` accumulates only what
        was actually gained.
        """
        new_balance = min(self.balance + self.replenish_share * cycles, self.cap)
        self.total_replenished += new_balance - self.balance
        self.balance = new_balance

    def advance_as_holder(self, cycles: int) -> None:
        """Apply ``cycles`` cycles of interleaved replenish-then-drain at once.

        Exactly equivalent to ``cycles`` iterations of the per-cycle holder
        update (:meth:`replenish` followed by :meth:`drain`), in O(1) time:

        ``new = min(balance + share, cap); paid = min(drain, new); balance = new - paid``

        The trajectory of that recurrence passes through at most three
        regimes, each with a closed form:

        * **cap clip** — ``balance + share`` saturates at the cap before the
          drain is applied.  With ``share <= drain`` this happens at most once
          (the first cycle of a transaction started at a cap above the full
          budget); with ``share > min(drain, cap)`` the balance pins at the
          cap and every following cycle clips identically (a fixed point).
        * **linear** — no saturation and the drain is fully covered, so the
          balance moves by ``share - drain`` per cycle; the number of cycles
          until the regime exits (into the floor going down, into the clip
          going up) is a single division.
        * **floor** — the drain exceeds the (unclipped) balance, the whole
          balance is paid out and sticks at zero; every following cycle earns
          and immediately pays ``min(share, cap)`` (a fixed point).

        ``total_replenished``/``total_drained`` accumulate exactly what the
        per-cycle loop would have accumulated.  The loop below iterates over
        *regime transitions* (at most three), never over cycles, which is what
        makes CBA fast-forward jumps O(1) regardless of transaction length.
        """
        if cycles <= 0:
            return
        share = self.replenish_share
        drain = self.drain_per_cycle
        cap = self.cap
        balance = self.balance
        replenished = 0
        drained = 0
        remaining = cycles
        while remaining > 0:
            new_balance = balance + share
            if new_balance > cap:
                # Cap-clip cycle: saturate, then drain from the cap.
                gained = cap - balance
                paid = drain if drain < cap else cap
                balance = cap - paid
                if balance + share > cap:
                    # Fixed point: every following cycle regains exactly what
                    # the drain took (clipped at the cap) and pays it again.
                    replenished += gained + paid * (remaining - 1)
                    drained += paid * remaining
                    remaining = 0
                else:
                    replenished += gained
                    drained += paid
                    remaining -= 1
            elif new_balance < drain:
                # Floor cycle: the whole balance is paid out; afterwards the
                # balance sticks at zero, earning and paying min(share, cap)
                # every cycle (share < drain here, so it never recovers).
                replenished += share
                drained += new_balance
                balance = 0
                remaining -= 1
                if remaining:
                    steady = share if share < cap else cap
                    replenished += steady * remaining
                    drained += steady * remaining
                    remaining = 0
            else:
                # Linear regime: balance moves by share - drain per cycle.
                if share == drain:
                    replenished += share * remaining
                    drained += drain * remaining
                    remaining = 0
                elif share > drain:
                    # Rising towards the cap: count the cycles that stay
                    # unclipped, bulk-apply them, then the clip fixed point
                    # (next iteration) absorbs the rest.
                    rise = share - drain
                    unclipped = (cap - share - balance) // rise + 1
                    steps = unclipped if unclipped < remaining else remaining
                    replenished += share * steps
                    drained += drain * steps
                    balance += rise * steps
                    remaining -= steps
                else:
                    # Falling towards the floor: the regime holds while
                    # balance >= drain - share.
                    fall = drain - share
                    covered = balance // fall
                    steps = covered if covered < remaining else remaining
                    replenished += share * steps
                    drained += drain * steps
                    balance -= fall * steps
                    remaining -= steps
        self.balance = balance
        self.total_replenished += replenished
        self.total_drained += drained

    def drain(self) -> None:
        """Charge one cycle of bus usage.

        The balance is floored at zero: with the paper's parameters a core can
        only be granted with a full budget and the longest transaction exactly
        exhausts it (``MaxL`` cycles × drain ``N`` = ``N*MaxL``), but H-CBA
        caps above the full budget plus the concurrent replenishment make the
        floor a safety net rather than dead code.
        """
        drained = min(self.drain_per_cycle, self.balance)
        self.total_drained += drained
        self.balance -= drained

    def reset(self, balance: int | None = None) -> None:
        """Reset the running totals and set the balance (default: full)."""
        self.balance = self.full_budget if balance is None else balance
        if not 0 <= self.balance <= self.cap:
            raise BudgetError(f"reset balance {self.balance} outside [0, {self.cap}]")
        self.total_replenished = 0
        self.total_drained = 0


class CreditBank:
    """The set of credit accounts of all cores, built from :class:`CBAParameters`."""

    def __init__(self, params: CBAParameters) -> None:
        self.params = params
        self.accounts = [
            CreditAccount(
                core_id=core,
                full_budget=params.scaled_full_budget,
                cap=params.cap_for(core),
                replenish_share=params.share_for(core),
                drain_per_cycle=params.drain_per_busy_cycle,
                balance=params.initial_for(core),
            )
            for core in range(params.num_cores)
        ]

    def __len__(self) -> int:
        return len(self.accounts)

    def __getitem__(self, core_id: int) -> CreditAccount:
        return self.accounts[core_id]

    def eligible_cores(self) -> list[int]:
        """Cores currently allowed to take part in arbitration."""
        return [acct.core_id for acct in self.accounts if acct.eligible]

    def step(self, holder: int | None) -> None:
        """Advance one cycle: replenish every core, drain the bus holder."""
        for account in self.accounts:
            account.replenish()
        if holder is not None:
            self.accounts[holder].drain()

    def advance(self, cycles: int, holder: int | None) -> None:
        """Advance ``cycles`` cycles at once with a constant bus ``holder``.

        Exactly equivalent to ``cycles`` :meth:`step` calls, in O(1) time per
        account: non-holders only replenish (:meth:`CreditAccount.replenish_many`)
        and the holder's interleaved replenish/drain dynamics collapse into the
        three-regime closed form of :meth:`CreditAccount.advance_as_holder`.
        """
        for account in self.accounts:
            if account.core_id == holder:
                account.advance_as_holder(cycles)
            else:
                account.replenish_many(cycles)

    def cycles_until_any_eligible(self, core_ids: Iterable[int]) -> int:
        """Fewest replenish cycles until one of ``core_ids`` becomes eligible.

        0 when one already is.  This is the credit side of the event-queue
        wake protocol: replenishment is deterministic while the bus idles, so
        the first cycle at which a blocked core clears the budget filter is
        known in advance, and the bus schedules its grant-opportunity wake
        there (:meth:`repro.core.cba.CreditBasedArbiter.next_grant_opportunity`)
        instead of being polled every cycle.  A grant restarts the holder's
        drain and invalidates that wake — the bus re-pushes at its next tick.
        """
        return min(self.accounts[core].cycles_until_eligible() for core in core_ids)

    def balances(self) -> list[int]:
        return [account.balance for account in self.accounts]

    def set_initial_budget(self, core_id: int, balance: int) -> None:
        """Force a core's starting budget (the paper zeroes the TuA's budget
        when collecting WCET-estimation measurements)."""
        self.accounts[core_id].reset(balance)

    def reset(self) -> None:
        for core, account in enumerate(self.accounts):
            account.reset(self.params.initial_for(core))
