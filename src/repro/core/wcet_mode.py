"""Operating modes and the COMP-bit gating logic of the CBA arbiter.

The FPGA implementation described in Section III-C can run in two modes:

* **Operation mode** — normal execution: each core's request line ``REQi`` is
  asserted when that core actually has a request, and the compete bits
  ``COMPi`` are always set (they impose no extra gating).
* **WCET-estimation mode** — the analysis-time configuration used to collect
  MBPTA measurements under worst-case contention.  The contender cores
  (cores 2, 3 and 4 in the paper; the task under analysis runs on core 1)
  have their ``REQi`` lines always set, but they only *compete* — i.e. their
  ``COMPi`` bit is set — when their budget is full **and** the task under
  analysis has a request ready (``REQ1 == 1``).  ``COMPi`` is cleared when
  core *i* is granted the bus, and a granted contender holds the bus for the
  maximum latency ``MaxL``.

The gating logic is captured by :class:`CompeteGate` so both the signal-level
RTL model (:mod:`repro.core.signals`) and the platform-level worst-case
contender workload (:mod:`repro.workloads.contender`) share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["OperatingMode", "CompeteGate"]


class OperatingMode(str, Enum):
    """Arbiter operating mode (Table I columns)."""

    OPERATION = "operation"
    WCET_ESTIMATION = "wcet_estimation"


@dataclass
class CompeteGate:
    """The COMP bit of one contender core.

    In operation mode the bit is constantly set.  In WCET-estimation mode it
    follows Table I: set when the contender's budget is full and the task
    under analysis has a request ready; cleared when the contender is granted
    the bus.
    """

    mode: OperatingMode = OperatingMode.OPERATION
    compete: bool = True

    def update(self, budget_full: bool, tua_request_ready: bool) -> bool:
        """Per-cycle update of the COMP bit; returns its new value."""
        if self.mode is OperatingMode.OPERATION:
            self.compete = True
        elif budget_full and tua_request_ready:
            self.compete = True
        return self.compete

    def on_granted(self) -> None:
        """Clear the bit when the contender is granted (WCET-estimation mode)."""
        if self.mode is OperatingMode.WCET_ESTIMATION:
            self.compete = False

    def reset(self) -> None:
        self.compete = self.mode is OperatingMode.OPERATION
