"""Signal-level (RTL-like) model of the CBA arbiter — Table I of the paper.

The FPGA implementation is described in terms of a handful of per-core
signals; this module reproduces them one-to-one so that their cycle-by-cycle
behaviour can be inspected, tested and printed:

===========  ==========================================  ====================
Signal       Every cycle                                  When using the bus
===========  ==========================================  ====================
``BUDGi``    ``min(BUDGi + 1, 228)``                      ``BUDGi - 4``
``REQ1``     set when the TuA has a request ready         (same)
``REQ2..4``  WCET mode: always 1; operation: when ready   (same)
``COMP2..4`` WCET mode: set when ``BUDGi == 228`` and      cleared when core i
             ``REQ1 == 1``; operation mode: always 1      is granted
===========  ==========================================  ====================

(228 = ``N * MaxL`` with the paper's ``N = 4`` cores and ``MaxL = 56``; the
budget counters are 8 bits wide in hardware.)

The model is deliberately standalone — it does not require the simulation
kernel — because its purpose is to mirror the RTL description closely enough
that the per-cycle signal table can be regenerated and checked, while the
full-system behaviour is exercised through :class:`repro.core.cba.CreditBasedArbiter`
inside the platform model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arbiters.base import Arbiter
from ..arbiters.round_robin import RoundRobinArbiter
from ..sim.errors import ConfigurationError
from .wcet_mode import CompeteGate, OperatingMode

__all__ = ["SignalSnapshot", "ArbiterSignalModel"]


@dataclass(frozen=True)
class SignalSnapshot:
    """The visible signal state at the end of one cycle."""

    cycle: int
    budgets: tuple[int, ...]
    requests: tuple[bool, ...]
    competes: tuple[bool, ...]
    granted: int | None
    bus_holder: int | None
    tua_waiting: bool

    def as_row(self) -> dict[str, object]:
        """Flatten into a dictionary, convenient for printing signal tables."""
        row: dict[str, object] = {"cycle": self.cycle}
        for core, budget in enumerate(self.budgets):
            row[f"BUDG{core + 1}"] = budget
        for core, req in enumerate(self.requests):
            row[f"REQ{core + 1}"] = int(req)
        for core, comp in enumerate(self.competes):
            row[f"COMP{core + 1}"] = int(comp)
        row["granted"] = "-" if self.granted is None else self.granted + 1
        row["holder"] = "-" if self.bus_holder is None else self.bus_holder + 1
        return row


class ArbiterSignalModel:
    """Cycle-steppable model of the CBA arbiter signals (Table I)."""

    def __init__(
        self,
        num_cores: int = 4,
        max_latency: int = 56,
        mode: OperatingMode = OperatingMode.WCET_ESTIMATION,
        tua_core: int = 0,
        tua_request_duration: int = 6,
        base_arbiter: Arbiter | None = None,
        tua_initial_budget: int | None = 0,
    ) -> None:
        """Create the signal model.

        Parameters
        ----------
        tua_core:
            Index of the core running the task under analysis (core 1 in the
            paper, index 0 here).
        tua_request_duration:
            Bus hold time of the TuA's requests (the illustrative L2-hit-like
            short request; any value in ``[1, max_latency]`` is accepted).
        base_arbiter:
            Policy applied among eligible cores; defaults to round-robin,
            which keeps signal traces deterministic for tests and tables.
        tua_initial_budget:
            Scaled initial budget of the TuA.  The paper starts the TuA with
            zero budget at analysis time; pass ``None`` for a full budget.
        """
        if num_cores < 2:
            raise ConfigurationError("the signal model needs at least two cores")
        if not 0 <= tua_core < num_cores:
            raise ConfigurationError("tua_core out of range")
        if not 1 <= tua_request_duration <= max_latency:
            raise ConfigurationError("TuA request duration must be in [1, MaxL]")
        self.num_cores = num_cores
        self.max_latency = max_latency
        self.mode = mode
        self.tua_core = tua_core
        self.tua_request_duration = tua_request_duration
        self.full_budget = num_cores * max_latency
        self.drain = num_cores
        self.base_arbiter = (
            base_arbiter if base_arbiter is not None else RoundRobinArbiter(num_cores)
        )
        if self.base_arbiter.num_masters != num_cores:
            raise ConfigurationError("base arbiter size does not match the core count")
        self.budgets = [self.full_budget] * num_cores
        if tua_initial_budget is not None:
            if not 0 <= tua_initial_budget <= self.full_budget:
                raise ConfigurationError("TuA initial budget outside [0, full budget]")
            self.budgets[tua_core] = tua_initial_budget
        self.gates = [
            CompeteGate(mode=mode, compete=(mode is OperatingMode.OPERATION))
            for _ in range(num_cores)
        ]
        # The TuA has no COMP gating (Table I marks COMP1 as not applicable).
        self.gates[tua_core].compete = True
        self.cycle = 0
        self.bus_holder: int | None = None
        self._release_cycle = 0
        self.history: list[SignalSnapshot] = []
        # Accounting for experiments.
        self.grants = [0] * num_cores
        self.busy_cycles = [0] * num_cores
        self.tua_completed_requests = 0
        self.tua_wait_cycles = 0

    # ------------------------------------------------------------------
    # Per-cycle step
    # ------------------------------------------------------------------
    def step(
        self,
        tua_request_ready: bool,
        contender_requests: list[bool] | None = None,
    ) -> SignalSnapshot:
        """Advance one cycle.

        Parameters
        ----------
        tua_request_ready:
            Whether the task under analysis has a request pending this cycle
            (drives ``REQ1``).
        contender_requests:
            Operation-mode request lines of the other cores (ignored in
            WCET-estimation mode, where ``REQ2..4`` are hardwired to 1).
        """
        requests = self._request_lines(tua_request_ready, contender_requests)
        competes = self._update_compete_bits(requests)
        granted = None

        # Bus release happens at the boundary before arbitration, so a new
        # transaction can start the cycle after the previous one finishes.
        if self.bus_holder is not None and self.cycle >= self._release_cycle:
            if self.bus_holder == self.tua_core:
                self.tua_completed_requests += 1
            self.bus_holder = None

        if self.bus_holder is None:
            eligible = [
                core
                for core in range(self.num_cores)
                if requests[core]
                and self.budgets[core] >= self.full_budget
                and (core == self.tua_core or competes[core])
            ]
            if eligible:
                granted = self.base_arbiter.arbitrate(eligible, self.cycle)
            if granted is not None:
                duration = (
                    self.tua_request_duration
                    if granted == self.tua_core
                    else self.max_latency
                )
                self.base_arbiter.on_grant(granted, duration, self.cycle)
                self.bus_holder = granted
                self._release_cycle = self.cycle + duration
                self.grants[granted] += 1
                self.gates[granted].on_granted()

        if tua_request_ready and self.bus_holder != self.tua_core:
            self.tua_wait_cycles += 1

        # Budget update (Table I): +1 saturating for everyone, -N for the
        # core using the bus this cycle.
        for core in range(self.num_cores):
            self.budgets[core] = min(self.budgets[core] + 1, self.full_budget_cap(core))
        if self.bus_holder is not None:
            self.budgets[self.bus_holder] = max(
                0, self.budgets[self.bus_holder] - self.drain
            )
            self.busy_cycles[self.bus_holder] += 1

        snapshot = SignalSnapshot(
            cycle=self.cycle,
            budgets=tuple(self.budgets),
            requests=tuple(requests),
            competes=tuple(g.compete for g in self.gates),
            granted=granted,
            bus_holder=self.bus_holder,
            tua_waiting=tua_request_ready and self.bus_holder != self.tua_core,
        )
        self.history.append(snapshot)
        self.cycle += 1
        return snapshot

    def full_budget_cap(self, core: int) -> int:
        """Saturation value of ``core``'s counter (homogeneous: 228)."""
        return self.full_budget

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _request_lines(
        self, tua_request_ready: bool, contender_requests: list[bool] | None
    ) -> list[bool]:
        requests = [False] * self.num_cores
        requests[self.tua_core] = tua_request_ready
        for core in range(self.num_cores):
            if core == self.tua_core:
                continue
            if self.mode is OperatingMode.WCET_ESTIMATION:
                requests[core] = True
            else:
                requests[core] = (
                    bool(contender_requests[core])
                    if contender_requests is not None
                    else False
                )
        return requests

    def _update_compete_bits(self, requests: list[bool]) -> list[bool]:
        tua_ready = requests[self.tua_core]
        competes = []
        for core in range(self.num_cores):
            if core == self.tua_core:
                competes.append(True)
                continue
            gate = self.gates[core]
            gate.update(
                budget_full=self.budgets[core] >= self.full_budget,
                tua_request_ready=tua_ready,
            )
            competes.append(gate.compete)
        return competes

    # ------------------------------------------------------------------
    # Convenience drivers
    # ------------------------------------------------------------------
    def run_tua_requests(
        self, num_requests: int, gap_cycles: int = 0, max_cycles: int = 1_000_000
    ) -> int:
        """Drive the model until the TuA completes ``num_requests`` requests.

        The TuA asserts a request, waits for it to complete, then waits
        ``gap_cycles`` before the next one.  Returns the number of cycles the
        whole sequence took — the quantity MBPTA measures.
        """
        completed_target = self.tua_completed_requests + num_requests
        gap_remaining = 0
        start_cycle = self.cycle
        while self.tua_completed_requests < completed_target:
            if self.cycle - start_cycle > max_cycles:
                raise RuntimeError("signal model did not converge within max_cycles")
            tua_busy = self.bus_holder == self.tua_core
            if gap_remaining > 0 and not tua_busy:
                gap_remaining -= 1
                self.step(tua_request_ready=False)
                continue
            before = self.tua_completed_requests
            self.step(tua_request_ready=not tua_busy)
            if self.tua_completed_requests > before:
                gap_remaining = gap_cycles
        return self.cycle - start_cycle

    def signal_table(self, first: int = 0, last: int | None = None) -> list[dict[str, object]]:
        """Rows of the observed signal table between cycles ``first`` and ``last``."""
        return [
            snap.as_row()
            for snap in self.history
            if snap.cycle >= first and (last is None or snap.cycle < last)
        ]
