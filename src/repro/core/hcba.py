"""Heterogeneous CBA (H-CBA).

Section III-A of the paper describes two ways to give one core a larger share
of the bus bandwidth than the others while keeping the CBA machinery intact:

1. **Budget-cap growth** — let the favoured core's budget saturate above
   ``MaxL`` (e.g. ``2*MaxL``), so it can issue several requests back-to-back.
   Good for the favoured core, but creates temporal starvation windows for
   the others.
2. **Replenishment-share redistribution** — keep the total replenishment of 1
   budget cycle per clock cycle, but split it unevenly: in the paper's
   evaluation the task under analysis recovers 1/2 cycle of budget per cycle
   and each other core 1/6, which virtually allocates 50% of the bandwidth to
   the TuA.  This is the configuration labelled **H-CBA** in Figure 1.

Both variants are expressed here as factory functions that produce the
corresponding :class:`~repro.sim.config.CBAParameters` /
:class:`~repro.core.cba.CreditBasedArbiter`, plus helpers to reason about the
resulting bandwidth fractions.
"""

from __future__ import annotations

from fractions import Fraction

from ..arbiters.base import Arbiter
from ..sim.config import CBAParameters
from ..sim.errors import ConfigurationError
from .cba import CreditBasedArbiter

__all__ = [
    "heterogeneous_share_parameters",
    "budget_cap_parameters",
    "make_hcba_arbiter",
    "bandwidth_fractions",
]


def heterogeneous_share_parameters(
    num_cores: int,
    max_latency: int,
    favoured_core: int,
    favoured_fraction: Fraction | float = Fraction(1, 2),
) -> CBAParameters:
    """Build CBA parameters implementing the replenishment-share variant.

    The favoured core receives ``favoured_fraction`` of the total
    replenishment; the remaining fraction is split evenly among the other
    cores.  Fractions are converted to integer scaled shares by putting all
    shares over a common denominator, which preserves exactness (the paper's
    1/2 vs 1/6 becomes scaled shares 3 and 1 with drain 6 per busy cycle —
    equivalently, everything is simply measured in finer budget units).
    """
    if not 0 <= favoured_core < num_cores:
        raise ConfigurationError(f"favoured core {favoured_core} out of range")
    if num_cores < 2:
        raise ConfigurationError("heterogeneous sharing needs at least two cores")
    favoured = Fraction(favoured_fraction).limit_denominator(10_000)
    if not 0 < favoured < 1:
        raise ConfigurationError("favoured fraction must be strictly between 0 and 1")
    others = (1 - favoured) / (num_cores - 1)
    denominator = favoured.denominator
    denominator = denominator * others.denominator // _gcd(denominator, others.denominator)
    shares = []
    for core in range(num_cores):
        fraction = favoured if core == favoured_core else others
        shares.append(int(fraction * denominator))
    if any(share <= 0 for share in shares):
        raise ConfigurationError("favoured fraction leaves another core with no share")
    # The per-cycle total replenishment must equal one bus cycle of budget,
    # i.e. the drain applied per busy cycle.  With shares over `denominator`
    # the drain per busy cycle is exactly `denominator` fine-grained units,
    # and the full budget is `denominator * MaxL` units.  We express this by
    # reusing CBAParameters with a virtual core count equal to `denominator`.
    return CBAParameters(
        max_latency=max_latency,
        num_cores=num_cores,
        replenish_shares=tuple(shares),
        budget_caps=None,
        initial_budget=None,
    )


def budget_cap_parameters(
    num_cores: int,
    max_latency: int,
    favoured_core: int,
    cap_multiplier: int = 2,
) -> CBAParameters:
    """Build CBA parameters implementing the budget-cap variant.

    The favoured core's budget may saturate at ``cap_multiplier * MaxL``
    (scaled), letting it issue up to ``cap_multiplier`` maximum-length
    requests back-to-back once it has been idle long enough.
    """
    if not 0 <= favoured_core < num_cores:
        raise ConfigurationError(f"favoured core {favoured_core} out of range")
    if cap_multiplier < 1:
        raise ConfigurationError("cap multiplier must be at least 1")
    full = num_cores * max_latency
    caps = tuple(
        full * cap_multiplier if core == favoured_core else full
        for core in range(num_cores)
    )
    return CBAParameters(
        max_latency=max_latency,
        num_cores=num_cores,
        replenish_shares=None,
        budget_caps=caps,
        initial_budget=None,
    )


def make_hcba_arbiter(
    base: Arbiter,
    num_cores: int,
    max_latency: int,
    favoured_core: int = 0,
    favoured_fraction: Fraction | float = Fraction(1, 2),
    variant: str = "shares",
    cap_multiplier: int = 2,
) -> CreditBasedArbiter:
    """Build an H-CBA arbiter of the requested variant around ``base``.

    ``variant`` is ``"shares"`` (paper's evaluated H-CBA) or ``"cap"``.
    """
    if variant == "shares":
        params = heterogeneous_share_parameters(
            num_cores, max_latency, favoured_core, favoured_fraction
        )
    elif variant == "cap":
        params = budget_cap_parameters(num_cores, max_latency, favoured_core, cap_multiplier)
    else:
        raise ConfigurationError(f"unknown H-CBA variant {variant!r}")
    return CreditBasedArbiter(base, params)


def bandwidth_fractions(params: CBAParameters) -> list[Fraction]:
    """Long-run bandwidth fraction each core can sustain under saturation.

    Under CBA a core that keeps the bus saturated can use at most as much bus
    time per cycle as it replenishes, so its sustainable share is its
    replenishment share divided by the total replenishment.
    """
    shares = [Fraction(params.share_for(core)) for core in range(params.num_cores)]
    total = sum(shares)
    return [share / total for share in shares]


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
