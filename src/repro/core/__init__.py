"""Credit-Based Arbitration — the paper's primary contribution.

This package implements the CBA mechanism proposed in the paper: the per-core
credit accounts (Equation 1), the arbitration filter that wraps any baseline
policy, the heterogeneous H-CBA variants, the signal-level model of the FPGA
arbiter (Table I) and the analytical contention bounds of Section II.
"""

from .bounds import (
    ContentionScenario,
    cycle_fair_execution_time,
    cycle_fair_wait,
    request_fair_execution_time,
    request_fair_wait,
    slowdown,
    worst_case_wait_cba,
    worst_case_wait_round_robin,
    worst_case_wait_tdma,
)
from .cba import CreditBasedArbiter
from .credit import CreditAccount, CreditBank
from .hcba import (
    bandwidth_fractions,
    budget_cap_parameters,
    heterogeneous_share_parameters,
    make_hcba_arbiter,
)
from .signals import ArbiterSignalModel, SignalSnapshot
from .wcet_mode import CompeteGate, OperatingMode

__all__ = [
    "CreditAccount",
    "CreditBank",
    "CreditBasedArbiter",
    "heterogeneous_share_parameters",
    "budget_cap_parameters",
    "make_hcba_arbiter",
    "bandwidth_fractions",
    "ArbiterSignalModel",
    "SignalSnapshot",
    "CompeteGate",
    "OperatingMode",
    "ContentionScenario",
    "request_fair_wait",
    "cycle_fair_wait",
    "request_fair_execution_time",
    "cycle_fair_execution_time",
    "slowdown",
    "worst_case_wait_round_robin",
    "worst_case_wait_tdma",
    "worst_case_wait_cba",
]
