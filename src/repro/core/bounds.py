"""Analytical contention bounds.

Section II of the paper motivates CBA with a closed-form example: a task
under analysis (TuA) whose requests occupy the bus for 6 cycles competes
against three streaming contenders whose requests occupy it for 28 cycles.
Under any *request-fair* policy each TuA request waits for roughly one
contender request per contender (84 cycles), giving a 9.4x slowdown; under a
*cycle-fair* policy each TuA request waits only as long as the contenders are
entitled to in cycles (18 cycles here), giving a 2.8x slowdown.

This module provides those closed forms so experiments can compare simulated
behaviour against the analytical expectation, plus general per-request
worst-case wait bounds for the policies in the library.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ContentionScenario",
    "request_fair_wait",
    "cycle_fair_wait",
    "request_fair_execution_time",
    "cycle_fair_execution_time",
    "slowdown",
    "worst_case_wait_round_robin",
    "worst_case_wait_tdma",
    "worst_case_wait_cba",
]


@dataclass(frozen=True)
class ContentionScenario:
    """Parameters of the Section II illustrative example.

    Attributes
    ----------
    isolation_cycles:
        Execution time of the TuA in isolation.
    tua_requests:
        Number of bus requests the TuA issues.
    tua_request_cycles:
        Bus hold time of each TuA request.
    contender_request_cycles:
        Bus hold time of each contender request.
    num_cores:
        Total number of cores (TuA + contenders).
    """

    isolation_cycles: int = 10_000
    tua_requests: int = 1_000
    tua_request_cycles: int = 6
    contender_request_cycles: int = 28
    num_cores: int = 4

    @property
    def num_contenders(self) -> int:
        return self.num_cores - 1

    @property
    def compute_cycles(self) -> int:
        """Cycles the TuA spends off the bus in isolation."""
        return self.isolation_cycles - self.tua_requests * self.tua_request_cycles


def request_fair_wait(scenario: ContentionScenario) -> int:
    """Per-request wait under a request-fair (slot-fair) policy.

    Each TuA request waits for one maximum-duration contender request per
    contender: ``(N-1) * contender_request_cycles`` (84 in the paper).
    """
    return scenario.num_contenders * scenario.contender_request_cycles


def cycle_fair_wait(scenario: ContentionScenario) -> int:
    """Per-request wait under a cycle-fair policy such as CBA.

    The contenders together may only use as many bus cycles as the TuA does,
    so each TuA request of ``c`` cycles waits ``(N-1) * c`` cycles
    (18 in the paper).
    """
    return scenario.num_contenders * scenario.tua_request_cycles


def request_fair_execution_time(scenario: ContentionScenario) -> int:
    """Execution time of the TuA under a request-fair policy (Section II).

    ``(isolation - bus time) + requests * (request + wait)`` — 94,000 cycles
    with the paper's numbers.
    """
    per_request = scenario.tua_request_cycles + request_fair_wait(scenario)
    return scenario.compute_cycles + scenario.tua_requests * per_request


def cycle_fair_execution_time(scenario: ContentionScenario) -> int:
    """Execution time of the TuA under a cycle-fair policy — 28,000 cycles
    with the paper's numbers."""
    per_request = scenario.tua_request_cycles + cycle_fair_wait(scenario)
    return scenario.compute_cycles + scenario.tua_requests * per_request


def slowdown(contended_cycles: float, isolation_cycles: float) -> float:
    """Execution-time ratio contended / isolation."""
    if isolation_cycles <= 0:
        raise ValueError("isolation execution time must be positive")
    return contended_cycles / isolation_cycles


# ----------------------------------------------------------------------
# Per-request worst-case wait bounds
# ----------------------------------------------------------------------
def worst_case_wait_round_robin(num_cores: int, max_latency: int) -> int:
    """Worst-case grant delay of one request under round-robin.

    Every other core may be granted one maximum-length request first, plus
    the residual of a request already in flight: ``(N-1 + 1) * MaxL`` is the
    safe bound typically used; we return ``(N-1) * MaxL + (MaxL - 1)``.
    """
    return (num_cores - 1) * max_latency + (max_latency - 1)


def worst_case_wait_tdma(num_cores: int, slot_cycles: int) -> int:
    """Worst-case grant delay under TDMA with issue-at-slot-start semantics.

    The request may arrive just after its slot's start cycle and must wait a
    full round of the schedule: ``N * slot_cycles - 1``.
    """
    return num_cores * slot_cycles - 1


def worst_case_wait_cba(
    num_cores: int,
    max_latency: int,
    tua_request_cycles: int,
    initial_budget_cycles: int | None = None,
) -> int:
    """Worst-case grant delay of one TuA request under CBA.

    Two terms bound the delay:

    * the TuA may have to rebuild its own budget if it issued requests
      back-to-back — at most ``N * tua_request_cycles`` cycles of
      replenishment per previously spent request cycle (bounded here by the
      budget the request itself costs, or by the deficit implied by
      ``initial_budget_cycles`` for the very first request);
    * contenders can jointly hold the bus for at most ``(N-1)`` times the
      cycles the TuA itself consumes in steady state, but never more than one
      ``MaxL`` request each before running out of budget relative to the TuA.

    The resulting per-request bound used by the paper's reasoning is
    ``(N-1) * max(tua_request_cycles, 1)`` in steady state plus the residual
    of one in-flight maximum request (``MaxL - 1``), plus the initial budget
    recovery for the first request.
    """
    steady_state = (num_cores - 1) * max(tua_request_cycles, 1) + (max_latency - 1)
    if initial_budget_cycles is None:
        return steady_state
    deficit_cycles = max(0, max_latency - initial_budget_cycles)
    first_request_recovery = num_cores * deficit_cycles
    return steady_state + first_request_recovery
