"""Credit-Based Arbitration (CBA) — the paper's primary contribution.

CBA is not an arbitration policy on its own: it is a *filter* placed in front
of any slot-fair policy (Section III-A).  Every cycle each core's budget is
replenished; only cores with a full budget are eligible for arbitration; and
the core holding the bus pays one cycle of budget for every cycle of
occupancy.  Because long transactions drain proportionally more budget, cores
issuing short requests are granted more often and the bus bandwidth converges
to a fair share in *cycles*, not in *slots*.

:class:`CreditBasedArbiter` implements this as a wrapper conforming to the
standard :class:`~repro.arbiters.base.Arbiter` interface, so the bus does not
need to know whether CBA is present — exactly like the hardware integration
in the paper, where CBA is a small addition to the existing AMBA arbiter.
"""

from __future__ import annotations

from typing import Sequence

from ..arbiters.base import Arbiter
from ..sim.config import CBAParameters
from ..sim.errors import ArbitrationError
from ..sim.trace import TraceRecorder
from .credit import CreditBank

__all__ = ["CreditBasedArbiter"]


class CreditBasedArbiter(Arbiter):
    """Budget filter wrapped around a base arbitration policy."""

    policy_name = "cba"

    def __init__(self, base: Arbiter, params: CBAParameters) -> None:
        """Create the CBA wrapper.

        Parameters
        ----------
        base:
            The underlying slot-fair policy used among eligible cores (the
            paper integrates CBA with random permutations on the FPGA).
        params:
            Budget parameters (``MaxL``, core count, optional heterogeneous
            shares/caps, initial budgets).
        """
        if base.num_masters != params.num_cores:
            raise ArbitrationError(
                f"base arbiter handles {base.num_masters} masters, "
                f"CBA parameters describe {params.num_cores} cores"
            )
        super().__init__(base.num_masters)
        self.base = base
        self.params = params
        self.credits = CreditBank(params)
        #: Count of cycles in which at least one request was pending but every
        #: pending requestor was budget-blocked (bus left idle by CBA).
        self.blocked_cycles = 0
        #: Optional timeline recorder (attached by the platform when timeline
        #: observability is on).  ``None`` keeps every trace branch dead, so
        #: the default path pays nothing beyond one attribute load.
        self._trace: TraceRecorder | None = None

    def attach_trace(self, recorder: TraceRecorder) -> None:
        """Record CBA credit dynamics (drains, refills, blocks) on ``recorder``."""
        self._trace = recorder
        self._traced_eligible = tuple(self.credits.eligible_cores())

    # ------------------------------------------------------------------
    # Arbiter interface
    # ------------------------------------------------------------------
    def arbitrate(self, requestors: Sequence[int], cycle: int) -> int | None:
        pending = self._validate_requestors(requestors)
        if not pending:
            return None
        eligible = [master for master in pending if self.credits[master].eligible]
        if not eligible:
            self.blocked_cycles += 1
            trace = self._trace
            if trace is not None and trace.enabled:
                trace.record(cycle, "cba", "cba.blocked", pending=list(pending))
            return None
        choice = self.base.arbitrate(eligible, cycle)
        return self._validate_choice(choice, eligible)

    def on_grant(self, master_id: int, duration: int, cycle: int) -> None:
        super().on_grant(master_id, duration, cycle)
        self.base.on_grant(master_id, duration, cycle)
        trace = self._trace
        if trace is not None and trace.enabled:
            trace.record(
                cycle,
                "cba",
                "cba.drain",
                master=master_id,
                duration=duration,
                balances=self.credits.balances(),
            )

    def on_request(self, master_id: int, cycle: int) -> None:
        self.base.on_request(master_id, cycle)

    def cycle_update(self, cycle: int, holder: int | None) -> None:
        """Per-cycle budget dynamics: replenish all cores, drain the holder."""
        self.base.cycle_update(cycle, holder)
        self.credits.step(holder)
        trace = self._trace
        if trace is not None and trace.enabled:
            eligible = tuple(self.credits.eligible_cores())
            if eligible != self._traced_eligible:
                self._traced_eligible = eligible
                trace.record(
                    cycle,
                    "cba",
                    "cba.refill",
                    eligible=list(eligible),
                    balances=self.credits.balances(),
                )

    # ------------------------------------------------------------------
    # Fast-forward support
    # ------------------------------------------------------------------
    def next_grant_opportunity(self, requestors: Sequence[int], cycle: int) -> int | None:
        """Earliest cycle a pending master could clear both filters.

        Two kinds of event can end a budget-induced idle stretch: a master
        that is already eligible gets a grant opportunity from the base policy
        (e.g. its TDMA slot starts), or replenishment makes a further pending
        master eligible (which changes the eligible set the base policy sees,
        so the bus must re-arbitrate).  The earlier of the two bounds the
        skip; being conservative is fine — the bus simply re-asks on wake-up.
        """
        pending = self._validate_requestors(requestors)
        if not pending:
            return None
        opportunity: int | None = None
        eligible = [master for master in pending if self.credits[master].eligible]
        if eligible:
            opportunity = self.base.next_grant_opportunity(eligible, cycle)
        blocked = [master for master in pending if not self.credits[master].eligible]
        if blocked:
            refill = cycle + self.credits.cycles_until_any_eligible(blocked)
            if opportunity is None or refill < opportunity:
                opportunity = refill
        return opportunity

    def advance_cycles(
        self,
        start_cycle: int,
        cycles: int,
        holder: int | None,
        idle_requestors: Sequence[int] = (),
    ) -> None:
        """Bulk budget dynamics plus the blocked-cycle accounting of
        :meth:`arbitrate` calls that returned ``None``.

        The eligibility test is done once, before advancing the credits: while
        the bus idles nothing drains, so eligibility can only be *gained*, and
        the skip window never extends past the first gain (bounded by
        :meth:`next_grant_opportunity`) — the "all pending blocked" predicate
        is therefore constant across the whole window.
        """
        self.base.advance_cycles(start_cycle, cycles, holder, idle_requestors)
        if (
            holder is None
            and idle_requestors
            and not any(self.credits[master].eligible for master in idle_requestors)
        ):
            self.blocked_cycles += cycles
        self.credits.advance(cycles, holder)

    def reset(self) -> None:
        super().reset()
        self.base.reset()
        self.credits.reset()
        self.blocked_cycles = 0

    # ------------------------------------------------------------------
    # Introspection helpers used by experiments and tests
    # ------------------------------------------------------------------
    def budget(self, core_id: int) -> int:
        """Current scaled budget of ``core_id``."""
        return self.credits[core_id].balance

    def budgets(self) -> list[int]:
        """Scaled budgets of all cores."""
        return self.credits.balances()

    def eligible_cores(self) -> list[int]:
        """Cores whose budget currently allows arbitration."""
        return self.credits.eligible_cores()

    def set_initial_budget(self, core_id: int, balance: int) -> None:
        """Force a core's starting budget (0 for the TuA at analysis time)."""
        self.credits.set_initial_budget(core_id, balance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CreditBasedArbiter(base={type(self.base).__name__}, "
            f"MaxL={self.params.max_latency}, N={self.params.num_cores})"
        )
