"""Result analysis: slowdowns, bandwidth shares, fairness indices and report
formatting."""

from .fairness import FairnessReport, fairness_report, jain_index, max_min_ratio
from .metrics import (
    MeanWithConfidence,
    bandwidth_shares_from_cycles,
    mean_with_confidence,
    normalised_execution_times,
    slot_shares_from_grants,
    slowdown,
)
from .reporting import format_figure1_table, format_key_values, format_table

__all__ = [
    "slowdown",
    "normalised_execution_times",
    "MeanWithConfidence",
    "mean_with_confidence",
    "bandwidth_shares_from_cycles",
    "slot_shares_from_grants",
    "jain_index",
    "max_min_ratio",
    "FairnessReport",
    "fairness_report",
    "format_table",
    "format_figure1_table",
    "format_key_values",
]
