"""Plain-text report tables.

The benchmarks regenerate the paper's tables and figure series as text; this
module renders small, dependency-free ASCII tables so results are readable in
a terminal, in pytest output and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_figure1_table", "format_key_values"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_figure1_table(
    slowdowns: Mapping[str, Mapping[str, float]],
    configurations: Sequence[str],
) -> str:
    """Render the Figure 1 data: one row per benchmark, one column per config."""
    headers = ["benchmark", *configurations]
    rows = []
    for benchmark in sorted(slowdowns):
        row: list[object] = [benchmark]
        for config in configurations:
            row.append(slowdowns[benchmark].get(config, float("nan")))
        rows.append(row)
    return format_table(headers, rows)


def format_key_values(values: Mapping[str, object], title: str = "") -> str:
    """Render a mapping as aligned ``key: value`` lines with an optional title."""
    width = max((len(k) for k in values), default=0)
    lines = [f"{key.ljust(width)} : {value}" for key, value in values.items()]
    if title:
        return "\n".join([title, "-" * len(title), *lines])
    return "\n".join(lines)
