"""Fairness indices.

The paper's central claim is about *which notion of fairness* an arbiter
provides: request-fair policies equalise slots, CBA equalises cycles.  To
quantify that difference the experiments use:

* Jain's fairness index over per-core allocations (1.0 = perfectly fair);
* the max/min ratio of allocations (1.0 = perfectly fair, larger = worse);
* a combined report comparing slot fairness and cycle fairness side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..sim.errors import AnalysisError

__all__ = ["jain_index", "max_min_ratio", "FairnessReport", "fairness_report"]


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    Equals 1 when all allocations are equal and tends to ``1/n`` when a
    single contender receives everything.  Zero allocations are legal (idle
    cores); an all-zero vector is considered perfectly fair.
    """
    values = [float(x) for x in allocations]
    if not values:
        raise AnalysisError("fairness of an empty allocation vector is undefined")
    if any(x < 0 for x in values):
        raise AnalysisError("allocations cannot be negative")
    total = sum(values)
    if total == 0:
        return 1.0
    squares = sum(x * x for x in values)
    return (total * total) / (len(values) * squares)


def max_min_ratio(allocations: Sequence[float]) -> float:
    """Ratio between the largest and smallest non-zero allocation.

    Returns ``inf`` when some contender received nothing while another
    received something (complete unfairness/starvation).
    """
    values = [float(x) for x in allocations]
    if not values:
        raise AnalysisError("fairness of an empty allocation vector is undefined")
    largest = max(values)
    smallest = min(values)
    if largest == 0:
        return 1.0
    if smallest == 0:
        return float("inf")
    return largest / smallest


@dataclass(frozen=True)
class FairnessReport:
    """Slot fairness vs cycle fairness for one run."""

    grants_per_core: tuple[int, ...]
    cycles_per_core: tuple[int, ...]
    slot_jain: float
    cycle_jain: float
    slot_max_min: float
    cycle_max_min: float

    def as_dict(self) -> dict[str, object]:
        return {
            "grants_per_core": list(self.grants_per_core),
            "cycles_per_core": list(self.cycles_per_core),
            "slot_jain": self.slot_jain,
            "cycle_jain": self.cycle_jain,
            "slot_max_min": self.slot_max_min,
            "cycle_max_min": self.cycle_max_min,
        }


def fairness_report(
    grants_per_core: Sequence[int], cycles_per_core: Sequence[int]
) -> FairnessReport:
    """Build the slot-vs-cycle fairness comparison the experiments print."""
    if len(grants_per_core) != len(cycles_per_core):
        raise AnalysisError("grants and cycles vectors must have the same length")
    return FairnessReport(
        grants_per_core=tuple(int(x) for x in grants_per_core),
        cycles_per_core=tuple(int(x) for x in cycles_per_core),
        slot_jain=jain_index(grants_per_core),
        cycle_jain=jain_index(cycles_per_core),
        slot_max_min=max_min_ratio(grants_per_core),
        cycle_max_min=max_min_ratio(cycles_per_core),
    )
