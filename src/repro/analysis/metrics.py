"""Performance metrics derived from simulation results.

All the quantities the paper reports are ratios of execution times or of bus
occupancy; this module provides them as small, well-tested functions so the
experiments and benchmarks share one definition:

* slowdown (normalised average execution time, the y-axis of Figure 1);
* per-core bandwidth shares in cycles and in slots;
* average over repeated randomised runs with confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.errors import AnalysisError

__all__ = [
    "slowdown",
    "normalised_execution_times",
    "MeanWithConfidence",
    "mean_with_confidence",
    "bandwidth_shares_from_cycles",
    "slot_shares_from_grants",
]


def slowdown(contended_cycles: float, baseline_cycles: float) -> float:
    """Execution-time ratio against a baseline (``RP`` in isolation in Figure 1)."""
    if baseline_cycles <= 0:
        raise AnalysisError("baseline execution time must be positive")
    return contended_cycles / baseline_cycles


def normalised_execution_times(
    execution_times: dict[str, float], baseline_key: str
) -> dict[str, float]:
    """Normalise every entry of ``execution_times`` to the baseline entry."""
    if baseline_key not in execution_times:
        raise AnalysisError(f"baseline key {baseline_key!r} missing from results")
    baseline = execution_times[baseline_key]
    return {key: slowdown(value, baseline) for key, value in execution_times.items()}


@dataclass(frozen=True)
class MeanWithConfidence:
    """Sample mean with a normal-approximation confidence interval."""

    mean: float
    half_width: float
    count: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width


def mean_with_confidence(samples: Sequence[float], z: float = 1.96) -> MeanWithConfidence:
    """Mean of ``samples`` with a ``z``-sigma confidence half-width.

    The paper averages 1,000 runs per configuration because the randomised
    platform makes individual runs noisy; the confidence interval quantifies
    how well-resolved a reported average is for a smaller run count.

    ``samples`` may be any sequence; a ``float64`` array (the campaign
    aggregation form) is consumed without copying, and the mean/variance are
    single vectorised reductions.
    """
    values = np.asarray(samples, dtype=np.float64)
    if values.size == 0:
        raise AnalysisError("cannot average an empty sample")
    n = int(values.size)
    mean = float(values.mean())
    if n == 1:
        return MeanWithConfidence(mean=mean, half_width=0.0, count=1)
    variance = float(values.var(ddof=1))
    half_width = z * math.sqrt(variance / n)
    return MeanWithConfidence(mean=mean, half_width=half_width, count=n)


def bandwidth_shares_from_cycles(cycles_per_core: Sequence[int]) -> list[float]:
    """Fraction of granted bus *cycles* used by each core."""
    total = sum(cycles_per_core)
    if total <= 0:
        return [0.0] * len(cycles_per_core)
    return [c / total for c in cycles_per_core]


def slot_shares_from_grants(grants_per_core: Sequence[int]) -> list[float]:
    """Fraction of granted *slots* (requests) used by each core."""
    total = sum(grants_per_core)
    if total <= 0:
        return [0.0] * len(grants_per_core)
    return [g / total for g in grants_per_core]
