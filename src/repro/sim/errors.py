"""Exception hierarchy for the simulator.

All errors raised by :mod:`repro` derive from :class:`SimulationError` so
callers can catch a single exception type at the library boundary.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the repro simulator."""


class ConfigurationError(SimulationError):
    """Raised when a component or platform is configured inconsistently."""


class SchedulingError(SimulationError):
    """Raised when the kernel detects an invalid scheduling operation.

    Examples include registering a component twice, running a kernel that has
    already finished, or ticking components outside a running simulation.
    """


class ProtocolError(SimulationError):
    """Raised when a component violates a hardware protocol invariant.

    For instance, a bus master issuing a new request while a previous one is
    still outstanding on a blocking port, or an arbiter granting a requestor
    that did not assert its request line.
    """


class ArbitrationError(ProtocolError):
    """Raised when an arbiter produces an invalid grant decision."""


class BudgetError(ProtocolError):
    """Raised when a credit/budget account is driven outside its legal range."""


class AnalysisError(SimulationError):
    """Raised by the MBPTA / statistics layer on invalid analysis inputs."""


class WorkloadError(SimulationError):
    """Raised when a workload description cannot be generated or replayed."""
