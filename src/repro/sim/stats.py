"""Statistics primitives used throughout the simulator.

Components accumulate counters and samples while the simulation runs;
experiments then summarise them.  Three small building blocks cover every
need in the library:

* :class:`Counter` — a named monotonically increasing event count;
* :class:`Gauge` — a named point-in-time value that can move both ways;
* :class:`RunningStats` — streaming mean / variance / min / max (Welford);
* :class:`Histogram` — integer-valued histogram with percentile queries;
* :class:`StatGroup` — a named collection of the above attached to one
  component, convertible to a plain ``dict`` for reporting.

Every primitive supports :meth:`merge`, which folds another instance of the
same kind into this one as if both had observed one combined event stream.
Merging is what lets the observability layer (:mod:`repro.obs`) aggregate
per-component and per-run statistics into campaign-level metric exports
without re-walking the underlying events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "RunningStats", "Histogram", "StatGroup"]


@dataclass(slots=True)
class Counter:
    """A monotonically increasing event counter.

    :meth:`increment` sits on the hottest paths of the simulator (several
    calls per simulated cycle), so the common case is a single unconditional
    add; the (always-raising) validation of negative amounts lives in a
    slow-path helper that also rolls the add back, keeping the counter value
    untouched by a rejected call.
    """

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        self.value += amount
        if amount < 0:
            self._reject_negative(amount)

    def _reject_negative(self, amount: int) -> None:
        """Slow path: undo the speculative add and raise."""
        self.value -= amount
        raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")

    def merge(self, other: "Counter") -> None:
        """Fold another counter's count into this one."""
        self.value += other.value

    def reset(self) -> None:
        self.value = 0


@dataclass(slots=True)
class Gauge:
    """A point-in-time value that can move in both directions.

    Unlike :class:`Counter`, a gauge reports the *current* level of something
    (a queue depth, a credit balance, a clock) rather than an accumulated
    event count.
    """

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def merge(self, other: "Gauge") -> None:
        """Adopt the other gauge's level (last-writer-wins semantics)."""
        self.value = other.value

    def reset(self) -> None:
        self.value = 0.0


class RunningStats:
    """Streaming mean/variance/min/max using Welford's algorithm."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self._total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: list[float] | tuple[float, ...]) -> None:
        """Record several samples."""
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStats") -> None:
        """Fold another stream's statistics in (Chan's parallel Welford merge).

        The result is exactly what one stream containing both sample sets
        would have produced (up to floating-point association).
        """
        if not other.count:
            return
        if not self.count:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            self._total = other._total
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean += delta * other.count / combined
        self.count = combined
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def total(self) -> float:
        return self._total

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0 when fewer than two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    def reset(self) -> None:
        self.__init__(self.name)

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum,
            "max": self.maximum,
            "total": self.total,
        }


class Histogram:
    """Histogram over integer sample values (e.g. latencies in cycles)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._bins: dict[int, int] = {}
        self.count = 0

    def add(self, value: int, weight: int = 1) -> None:
        """Record ``weight`` occurrences of ``value``."""
        if weight <= 0:
            raise ValueError("histogram weight must be positive")
        value = int(value)
        bins = self._bins
        bins[value] = bins.get(value, 0) + weight
        self.count += weight

    def frequency(self, value: int) -> int:
        return self._bins.get(int(value), 0)

    def items(self) -> list[tuple[int, int]]:
        """Sorted (value, count) pairs."""
        return sorted(self._bins.items())

    @property
    def mean(self) -> float:
        if not self.count:
            return 0.0
        return sum(v * c for v, c in self._bins.items()) / self.count

    @property
    def maximum(self) -> int:
        return max(self._bins) if self._bins else 0

    @property
    def minimum(self) -> int:
        return min(self._bins) if self._bins else 0

    def percentile(self, q: float) -> int:
        """Return the smallest value whose cumulative frequency reaches ``q``.

        ``q`` is a fraction in ``[0, 1]``.  With no samples the result is 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("percentile fraction must be in [0, 1]")
        if not self.count:
            return 0
        threshold = q * self.count
        cumulative = 0
        for value, count in self.items():
            cumulative += count
            if cumulative >= threshold:
                return value
        return self.maximum

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's frequencies into this one."""
        bins = self._bins
        for value, count in other._bins.items():
            bins[value] = bins.get(value, 0) + count
        self.count += other.count

    def reset(self) -> None:
        self._bins.clear()
        self.count = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


@dataclass(slots=True)
class StatGroup:
    """A named collection of counters and sample statistics."""

    name: str
    counters: dict[str, Counter] = field(default_factory=dict)
    samples: dict[str, RunningStats] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def sample(self, name: str) -> RunningStats:
        """Return (creating if needed) the running statistics called ``name``."""
        if name not in self.samples:
            self.samples[name] = RunningStats(name)
        return self.samples[name]

    def histogram(self, name: str) -> Histogram:
        """Return (creating if needed) the histogram called ``name``."""
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def merge(self, other: "StatGroup") -> None:
        """Fold another group's members in, creating missing ones by name."""
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, stats in other.samples.items():
            self.sample(name).merge(stats)
        for name, histogram in other.histograms.items():
            self.histogram(name).merge(histogram)

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.reset()
        for stats in self.samples.values():
            stats.reset()
        for histogram in self.histograms.values():
            histogram.reset()

    def as_dict(self) -> dict[str, object]:
        """Flatten everything into a plain dictionary for reporting."""
        out: dict[str, object] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, stats in self.samples.items():
            out[name] = stats.as_dict()
        for name, histogram in self.histograms.items():
            out[name] = histogram.as_dict()
        return out
