"""Cycle-driven simulation kernel and shared infrastructure.

The :mod:`repro.sim` package provides the machinery every other package builds
on: the :class:`~repro.sim.kernel.Kernel` that ticks components cycle by
cycle, the :class:`~repro.sim.component.Component` base class, deterministic
named random streams, statistics accumulators, event tracing and the platform
configuration dataclasses.
"""

from .clock import Clock
from .component import Component
from .config import (
    BusTimings,
    CacheGeometry,
    CBAParameters,
    PlatformConfig,
    DEFAULT_BUS_TIMINGS,
    DEFAULT_L1_GEOMETRY,
    DEFAULT_L2_GEOMETRY,
)
from .errors import (
    AnalysisError,
    ArbitrationError,
    BudgetError,
    ConfigurationError,
    ProtocolError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)
from .kernel import Kernel
from .rng import RandomStreams, derive_seed
from .stats import Counter, Histogram, RunningStats, StatGroup
from .trace import NullTraceRecorder, TraceEvent, TraceRecorder

__all__ = [
    "Clock",
    "Component",
    "Kernel",
    "RandomStreams",
    "derive_seed",
    "Counter",
    "Histogram",
    "RunningStats",
    "StatGroup",
    "TraceEvent",
    "TraceRecorder",
    "NullTraceRecorder",
    "BusTimings",
    "CacheGeometry",
    "CBAParameters",
    "PlatformConfig",
    "DEFAULT_BUS_TIMINGS",
    "DEFAULT_L1_GEOMETRY",
    "DEFAULT_L2_GEOMETRY",
    "SimulationError",
    "ConfigurationError",
    "SchedulingError",
    "ProtocolError",
    "ArbitrationError",
    "BudgetError",
    "AnalysisError",
    "WorkloadError",
]
