"""Simulation clock.

The simulator is cycle driven: a single global clock advances one cycle at a
time and every registered component is ticked once per cycle.  The clock keeps
the current cycle number and exposes helpers to convert cycles to wall-clock
time for a given operating frequency (the paper's FPGA prototype runs at
100 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Clock"]


@dataclass(slots=True)
class Clock:
    """A monotonically increasing cycle counter.

    The counter advances either one cycle at a time (plain stepping) or in
    bulk (``advance(n)``) when the kernel fast-forwards over dead cycles.

    Attributes
    ----------
    frequency_hz:
        Nominal operating frequency, only used to convert cycle counts into
        seconds for reporting.  Defaults to the paper's 100 MHz.
    """

    frequency_hz: float = 100_000_000.0
    _cycle: int = 0

    @property
    def cycle(self) -> int:
        """The current cycle number (0 before the first tick)."""
        return self._cycle

    @property
    def now(self) -> int:
        """Alias of :attr:`cycle`, reads naturally at call sites."""
        return self._cycle

    def advance(self, cycles: int = 1) -> int:
        """Advance the clock by ``cycles`` and return the new cycle number."""
        if cycles < 0:
            raise ValueError(f"cannot advance the clock by {cycles} cycles")
        self._cycle += cycles
        return self._cycle

    def reset(self) -> None:
        """Reset the clock to cycle 0."""
        self._cycle = 0

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert a number of cycles to seconds at :attr:`frequency_hz`."""
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> int:
        """Convert seconds to a whole number of cycles (rounded down)."""
        return int(seconds * self.frequency_hz)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(cycle={self._cycle}, frequency_hz={self.frequency_hz:g})"
