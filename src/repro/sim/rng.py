"""Deterministic, named random-number streams.

MBPTA requires execution-time observations that are independent and
identically distributed across runs.  On the FPGA platform of the paper this
is achieved with hardware randomisation (random placement/replacement caches
and random arbitration fed by the APRANDBANK pseudo-random number generator).
In the simulator we reproduce the same structure in software: a single
*experiment seed* is split into independent named streams, one per randomised
component (cache placement, cache replacement, arbitration, workload
generation, ...).  Two properties matter:

* determinism — the same experiment seed always reproduces the same run;
* independence — distinct (seed, run index, stream name) triples yield
  streams that do not overlap, so per-run observations are independent.

Both are provided by hashing the triple into a :class:`numpy.random.Generator`
seed via :class:`numpy.random.SeedSequence`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``base_seed`` and a label path.

    The derivation is stable across processes and Python versions (it does not
    rely on :func:`hash`), which keeps experiments reproducible.

    Parameters
    ----------
    base_seed:
        The experiment-level seed.
    labels:
        Arbitrary hashable labels (strings, integers) identifying the stream,
        e.g. ``("run", 3, "cache-placement", "core0")``.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        h.update(b"/")
        h.update(repr(label).encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


@dataclass
class RandomStreams:
    """A factory of independent named random streams for one simulation run.

    Parameters
    ----------
    seed:
        Experiment seed shared by all runs of an experiment.
    run_index:
        Index of the run within the experiment.  Each run index yields a fresh,
        independent set of streams, which is what makes per-run execution
        times independent draws for MBPTA.
    """

    seed: int = 0
    run_index: int = 0
    _cache: dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the same generator object so
        that a component can keep drawing from its stream across cycles.
        """
        if name not in self._cache:
            child_seed = derive_seed(self.seed, self.run_index, name)
            self._cache[name] = np.random.default_rng(child_seed)
        return self._cache[name]

    def spawn(self, run_index: int) -> "RandomStreams":
        """Return a new :class:`RandomStreams` for another run of the same seed."""
        return RandomStreams(seed=self.seed, run_index=run_index)

    def integers(self, name: str, low: int, high: int) -> int:
        """Draw one integer in ``[low, high)`` from the named stream."""
        return int(self.stream(name).integers(low, high))

    def random(self, name: str) -> float:
        """Draw one float in ``[0, 1)`` from the named stream."""
        return float(self.stream(name).random())

    def permutation(self, name: str, n: int) -> list[int]:
        """Draw a random permutation of ``range(n)`` from the named stream."""
        return [int(x) for x in self.stream(name).permutation(n)]

    def choice(self, name: str, options: list[int]) -> int:
        """Draw one element uniformly from ``options`` using the named stream."""
        if not options:
            raise ValueError("cannot choose from an empty list of options")
        idx = self.integers(name, 0, len(options))
        return options[idx]
