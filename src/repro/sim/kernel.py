"""Cycle-driven simulation kernel with an event queue for dead-cycle skipping.

The kernel owns the clock, the component list, the trace recorder and the
per-run random streams.  One call to :meth:`Kernel.step` advances the
simulated platform by exactly one cycle:

1. every component's :meth:`~repro.sim.component.Component.tick` runs
   (evaluate phase, registration order);
2. every component's :meth:`~repro.sim.component.Component.post_tick` runs
   (commit phase, registration order);
3. the clock advances.

:meth:`Kernel.run` steps until a stop condition (cycle limit or a registered
completion predicate) is met.  In addition, ``run`` *fast-forwards* through
dead cycles: when every component promises to be inert until some future
cycle, the kernel jumps the clock there in one step, replaying the skipped
cycles' uniform accounting through
:meth:`~repro.sim.component.Component.fast_forward`.  Because a cycle is only
skipped when *no* component can change state in it, the executed event cycles
(grants, completions, cache accesses, RNG draws) are identical to plain
stepping — fast-forwarded runs are bit-identical to cycle-by-cycle runs.

Two scheduling mechanisms decide how far the kernel may jump:

* the **event queue** (default, ``event_queue=True``) — components *push*
  their wakes into a binary heap (:class:`EventQueue`) via
  :meth:`Kernel.schedule_wake` at the state transitions where the wake
  changes (a bus grant, a request completion, a trace item boundary), and
  invalidate superseded wakes lazily through per-component generation
  counters.  Finding the next wake is then an O(log n) heap peek per
  executed cycle instead of an O(components) poll;
* the **hint scan** (``event_queue=False``, and the compatibility fallback
  for components that do not push) — before each cycle the kernel polls
  every component's :meth:`~repro.sim.component.Component.next_event` and
  takes the minimum.

Both mechanisms express the same contract and produce bit-identical runs
(enforced by the event-queue rows of the equivalence matrix).  Components
migrate incrementally: a component that sets
:attr:`~repro.sim.component.Component.event_driven` owns its heap entry; any
other component keeps being polled, and the kernel combines the heap minimum
with the polled hints.  A wake that is scheduled but stale (the component's
state moved on without rescheduling) only ever *adds* executed cycles — by
the hint contract a tick before a component's true wake is uniform
bookkeeping, so staleness degrades skipping, never correctness.

Components may do arbitrarily much work per *event* to widen the gaps between
events: the cores' batch interpreter (:mod:`repro.cpu.core_model`) executes a
whole bus-free trace stretch at the cycle it becomes known and then exposes
the stretch end as its wake, so the kernel jumps stretches that the per-item
hints would have broken into per-item wakes.  The kernel needs no knowledge
of this — the wake/``fast_forward`` contract already expresses it.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Iterable, Protocol

from .clock import Clock
from .component import Component
from .errors import SchedulingError
from .rng import RandomStreams
from .trace import NullTraceRecorder, TraceRecorder

__all__ = ["EventQueue", "Kernel", "RunProfiler"]


class RunProfiler(Protocol):
    """What :meth:`Kernel.enable_profiling` needs from a profiler.

    The concrete implementation lives in :mod:`repro.obs.profiler`; the
    kernel only depends on this structural interface so the simulation core
    stays import-free of the observability layer.
    """

    def proxy(self, component: "Component", hook: str) -> Any:
        """Return a stand-in exposing ``hook`` as a timed callable."""
        ...

    def on_run(self, wall_seconds: float, executed_cycles: int) -> None:
        """Record the wall-clock of one finished :meth:`Kernel.run` call."""
        ...


class EventQueue:
    """A heap of scheduled component wakes with lazy invalidation.

    Each registered component owns one *slot*.  Scheduling a wake pushes a
    ``(cycle, slot, generation)`` entry and bumps the slot's generation, so
    every previously pushed entry for the slot becomes stale; stale entries
    are discarded lazily when they reach the heap top (:meth:`next_wake`),
    which keeps both :meth:`schedule` and :meth:`cancel` O(log n) worst case
    and O(1) amortised — no in-heap deletion ever happens.

    A slot has at most one *live* entry (its most recent schedule).  A live
    entry persists until rescheduled or cancelled, even after its cycle
    passes: a live entry at or before the current cycle reads as "this
    component may act every cycle", which forces execution rather than
    skipping — the safe direction.
    """

    __slots__ = ("_generations", "_heap", "_targets")

    def __init__(self) -> None:
        #: Pending ``(cycle, slot, generation)`` entries (stale ones included).
        self._heap: list[tuple[int, int, int]] = []
        #: Current generation per slot; only entries carrying it are live.
        self._generations: list[int] = []
        #: Cycle of the slot's live entry, or ``None`` when nothing is
        #: scheduled.  Used to deduplicate same-cycle reschedules.
        self._targets: list[int | None] = []

    def add_slot(self) -> int:
        """Allocate a slot for one more component and return its index."""
        self._generations.append(0)
        self._targets.append(None)
        return len(self._generations) - 1

    def schedule(self, slot: int, cycle: int) -> None:
        """Make ``cycle`` the slot's wake, superseding any earlier schedule.

        Re-scheduling the already-live cycle is a no-op (no heap churn), which
        keeps steady-state re-confirmations — e.g. the bus re-asserting its
        release cycle every executed cycle of a long transaction — free.
        """
        if self._targets[slot] == cycle:
            return
        generation = self._generations[slot] + 1
        self._generations[slot] = generation
        self._targets[slot] = cycle
        heappush(self._heap, (cycle, slot, generation))

    def cancel(self, slot: int) -> None:
        """Drop the slot's live entry (the component has no self-scheduled wake)."""
        if self._targets[slot] is None:
            return
        self._generations[slot] += 1
        self._targets[slot] = None

    def next_wake(self) -> int | None:
        """Earliest live wake, or ``None`` when nothing is scheduled.

        Pops stale heap entries on the way; the returned entry itself is left
        in place (it stays live until its component reschedules or cancels).
        """
        heap = self._heap
        generations = self._generations
        while heap:
            cycle, slot, generation = heap[0]
            if generation == generations[slot]:
                return cycle
            heappop(heap)
        return None

    def scheduled_cycle(self, slot: int) -> int | None:
        """Cycle of the slot's live entry, or ``None`` (observability)."""
        return self._targets[slot]

    def clear(self) -> None:
        """Invalidate every entry (all slots keep their identity)."""
        self._heap.clear()
        generations = self._generations
        targets = self._targets
        for slot in range(len(generations)):
            generations[slot] += 1
            targets[slot] = None

    def __len__(self) -> int:
        """Number of heap entries, stale ones included (observability)."""
        return len(self._heap)


class Kernel:
    """The cycle-driven simulation engine."""

    def __init__(
        self,
        seed: int = 0,
        run_index: int = 0,
        frequency_hz: float = 100_000_000.0,
        trace: TraceRecorder | None = None,
        fast_forward: bool = True,
        event_queue: bool = True,
    ) -> None:
        self.clock = Clock(frequency_hz=frequency_hz)
        self.streams = RandomStreams(seed=seed, run_index=run_index)
        self.trace = trace if trace is not None else NullTraceRecorder()
        self._components: list[Component] = []
        self._by_name: dict[str, Component] = {}
        self._tickers: list[Component] = []
        self._post_tickers: list[Component] = []
        self._fast_forwarders: list[Component] = []
        #: Pre-bound ``next_event`` methods of every component — the hint
        #: scan used when the event queue is off; binding them at
        #: registration spares the attribute lookup per component per
        #: executed cycle.
        self._hinters: list[Callable[[int], int | None]] = []
        #: The subset of hinters still polled when the event queue is on:
        #: components that do not push wakes (the compatibility fallback).
        self._poll_hinters: list[Callable[[int], int | None]] = []
        self._all_hinted = True
        self._stop_conditions: list[Callable[[], bool]] = []
        self._stop_hints: list[Callable[[int], int | None]] = []
        self.finished = False
        self.stop_condition_fired = False
        #: Cycle bound of the :meth:`run` in progress (``start + max_cycles``),
        #: ``None`` outside a run.  See :meth:`run_horizon`.
        self._run_limit: int | None = None
        #: Enable event-aware fast-forwarding in :meth:`run`.  Skipping is
        #: bit-identical to stepping by construction; the switch exists for
        #: equivalence tests and benchmarking, not as a safety valve.
        self.fast_forward = fast_forward
        #: Use the heap-based :class:`EventQueue` to find the next wake
        #: (components push at state transitions) instead of polling every
        #: component's hint.  Bit-identical to the scan (enforced by the
        #: event-queue equivalence rows); the switch exists for those tests
        #: and for benchmarking the scheduling mechanisms against each other.
        self.event_queue = event_queue
        self._events = EventQueue()
        #: Cycles :meth:`run` jumped over instead of stepping (observability).
        self.cycles_skipped = 0
        #: Wall-clock profiler installed by :meth:`enable_profiling`
        #: (``None`` keeps the uninstrumented hot loop — the default).
        self.profiler: RunProfiler | None = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, component: Component) -> Component:
        """Register ``component`` so it is ticked every cycle.

        Components are ticked in registration order; the platform builder
        registers them in pipeline order (cores, caches, arbiter, bus, memory)
        so that requests issued in a cycle can be observed by the arbiter in
        the same cycle, matching the single-cycle arbitration of the paper.
        """
        if component.name in self._by_name:
            raise SchedulingError(f"a component named {component.name!r} is already registered")
        if self.profiler is not None:
            # The hook lists were already swapped for timing proxies; a late
            # registration would run unprofiled and skew the attribution.
            raise SchedulingError("cannot register components after profiling was enabled")
        component.bind(self)
        component._wake_slot = self._events.add_slot()
        if self.event_queue:
            component._wake_schedule = self._events.schedule
            component._wake_cancel = self._events.cancel
        self._components.append(component)
        self._by_name[component.name] = component
        # Components that keep the base class's no-op hooks are excluded from
        # the per-cycle loops entirely; this is the single hottest loop in the
        # simulator, and no built-in component overrides post_tick.
        if type(component).tick is not Component.tick:
            self._tickers.append(component)
        if type(component).post_tick is not Component.post_tick:
            self._post_tickers.append(component)
        if type(component).fast_forward is not Component.fast_forward:
            self._fast_forwarders.append(component)
        self._hinters.append(component.next_event)
        if component.event_driven:
            # The component owns a heap entry; seed it from its current state
            # so the first scheduling decision sees a valid wake even before
            # the component's first tick had a chance to push one.
            if self.event_queue:
                self._prime_wake(component)
        else:
            self._poll_hinters.append(component.next_event)
            if type(component).next_event is Component.next_event:
                # The base hint pins the wake to the current cycle, so one
                # non-opted-in component disables skipping for the whole
                # kernel; remember that and spare run() the per-cycle probing.
                self._all_hinted = False
        return component

    def _prime_wake(self, component: Component) -> None:
        """Seed an event-driven component's heap entry from its hint."""
        hint = component.next_event(self.clock.cycle)
        if hint is None:
            self._events.cancel(component._wake_slot)
        else:
            self._events.schedule(component._wake_slot, hint)

    def enable_profiling(self, profiler: RunProfiler) -> None:
        """Attribute hook wall-clock to components via ``profiler``.

        Swaps every entry of the pre-bound hook lists for a timing proxy, so
        the per-cycle cost exists *only* on profiled kernels — the disabled
        mode keeps the exact loops the hook-list filtering built (the same
        zero-cost-when-off pattern).  Must be called after every component is
        registered (later registrations raise) and at most once per kernel.
        """
        if self.profiler is not None:
            raise SchedulingError("profiling is already enabled on this kernel")
        self.profiler = profiler
        self._tickers = [profiler.proxy(c, "tick") for c in self._tickers]
        self._post_tickers = [profiler.proxy(c, "post_tick") for c in self._post_tickers]
        self._fast_forwarders = [
            profiler.proxy(c, "fast_forward") for c in self._fast_forwarders
        ]

    def register_all(self, components: Iterable[Component]) -> None:
        """Register several components in order."""
        for component in components:
            self.register(component)

    @property
    def components(self) -> tuple[Component, ...]:
        return tuple(self._components)

    def component(self, name: str) -> Component:
        """Return the registered component called ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no component named {name!r}") from None

    # ------------------------------------------------------------------
    # Wake scheduling (the event-queue side of the fast-forward contract)
    # ------------------------------------------------------------------
    def schedule_wake(self, component: Component, cycle: int) -> None:
        """Schedule (or move) ``component``'s wake to ``cycle``.

        The wake carries the same meaning as a ``next_event`` hint returning
        ``cycle``: every tick of the component before ``cycle`` is uniform
        bookkeeping replayed by ``fast_forward``, and the component must be
        ticked at ``cycle``.  It stays in force — superseding any earlier
        schedule via the queue's generation counters — until rescheduled or
        cancelled; components therefore push exactly at the state transitions
        after which their previous wake no longer describes them (a bus
        grant, a completion, a credit replenish target, a stretch end).

        No-op when the kernel runs the hint scan (``event_queue=False``) —
        components push unconditionally and the kernel ignores what it does
        not use, so a component behaves identically under both mechanisms.
        """
        if self.event_queue:
            self._events.schedule(component._wake_slot, cycle)

    def cancel_wake(self, component: Component) -> None:
        """Drop ``component``'s scheduled wake (hint value ``None``: only
        another component's activity — a tick the kernel executes anyway —
        can affect it)."""
        if self.event_queue:
            self._events.cancel(component._wake_slot)

    def scheduled_wake(self, component: Component) -> int | None:
        """The component's currently scheduled wake cycle (observability)."""
        return self._events.scheduled_cycle(component._wake_slot)

    # ------------------------------------------------------------------
    # Stop conditions
    # ------------------------------------------------------------------
    def add_stop_condition(
        self,
        predicate: Callable[[], bool],
        next_event: Callable[[int], int | None] | None = None,
    ) -> None:
        """Stop the run as soon as ``predicate()`` returns True (checked once per cycle).

        ``predicate`` is assumed to watch *event* state — state that flips on
        the exact cycle its event executes (task finished, request granted,
        bus released, ...).  Such predicates cannot flip across a
        fast-forwarded stretch, because cycles are only skipped when every
        tick in them would be a no-op.  A predicate that instead watches the
        clock ("stop at cycle X") or *accounting* — anything replayed in bulk
        by ``fast_forward`` (stall-cycle counters, credit balances, monitor
        windows) or applied eagerly by the cores' batch interpreter
        (trace-progress counters such as ``items_completed``/``l1_hits`` and
        cache hit statistics, which advance whole bus-free stretches at a
        time) — must supply ``next_event``, the same wake-hint contract as
        components: given the current cycle, return the earliest future cycle
        at which the predicate could flip, or ``None`` for "no time bound"
        (even a conservative ``lambda now: now`` suffices).  Without a hint
        such a predicate would fire on the wrong cycle; with one, the kernel
        re-checks it at the hinted cycles and the batch interpreter disables
        itself (:attr:`has_hinted_stops`), so the firing cycle is exactly the
        stepped one.
        """
        self._stop_conditions.append(predicate)
        if next_event is not None:
            self._stop_hints.append(next_event)

    def _should_stop(self) -> bool:
        # Checked once per executed cycle; a plain loop avoids allocating a
        # generator + closure pair each time (any() with a genexpr does).
        for predicate in self._stop_conditions:
            if predicate():
                return True
        return False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, cycles: int = 1) -> int:
        """Advance the simulation by ``cycles`` cycles and return the new time."""
        if self.finished:
            raise SchedulingError("cannot step a kernel that has already finished")
        tickers = self._tickers
        post_tickers = self._post_tickers
        clock = self.clock
        for _ in range(cycles):
            for component in tickers:
                component.tick()
            for component in post_tickers:
                component.post_tick()
            clock.advance()
        return clock.cycle

    def _fold_hints(
        self, hinters: list[Callable[[int], int | None]], wake: int, now: int
    ) -> int:
        """Fold polled component hints plus the stop hints into ``wake``.

        Returns ``now`` as soon as any hint pins the current cycle (no
        skipping possible), otherwise the earliest future wake not above the
        starting ``wake``.  One implementation serves both scheduling
        mechanisms so their folding semantics cannot drift apart.
        """
        for hinter in hinters:
            hint = hinter(now)
            if hint is None:
                continue
            if hint <= now:
                return now
            if hint < wake:
                wake = hint
        for stop_hint in self._stop_hints:
            hint = stop_hint(now)
            if hint is None:
                continue
            if hint <= now:
                return now
            if hint < wake:
                wake = hint
        return wake

    def _next_wake(self, limit: int) -> int:
        """Hint scan: earliest cycle at which any component (or stop hint) may act.

        Returns the current cycle when some component needs to run now (no
        skipping possible), otherwise a cycle in ``(now, limit]`` to jump to.
        """
        return self._fold_hints(self._hinters, limit, self.clock.cycle)

    def _poll_refine(self, wake: int, now: int) -> int:
        """Fold the poll-fallback hints and stop hints into a heap ``wake``.

        Only components that do not push wakes (the compatibility fallback,
        e.g. the WCET-mode contenders whose hint reads *another* component's
        state) and the hinted stop conditions are polled; the run loop skips
        this entirely when neither exists.
        """
        return self._fold_hints(self._poll_hinters, wake, now)

    @property
    def has_hinted_stops(self) -> bool:
        """Whether any registered stop condition supplied a wake hint.

        Hinted predicates are the ones allowed to watch the clock or
        fast-forwarded accounting (see :meth:`add_stop_condition`); a
        counter-watching one would observe eagerly-applied batch effects
        cycles before their real completion ticks, so the cores' batch
        interpreter falls back to cycle-accurate execution whenever such a
        predicate exists.
        """
        return bool(self._stop_hints)

    def run_horizon(self, now: int) -> int | None:
        """Earliest cycle whose tick might *not* execute, or ``None`` if unbounded.

        The cycle budget of the :meth:`run` in progress bounds how far the
        run can possibly step: the tick at the returned cycle — and at every
        later cycle — may never run.  Components that apply work *eagerly*
        for future cycles (the cores' batch interpreter) must keep that work
        strictly below this horizon, otherwise a run truncated at its budget
        would report effects from cycles it never executed.  Hinted stop
        conditions could also end the run early, but they disable eager
        batching altogether (:attr:`has_hinted_stops`), so they need no
        bounding here; they are still folded in as defense in depth.
        """
        bound = self._run_limit
        for stop_hint in self._stop_hints:
            hint = stop_hint(now)
            if hint is not None and (bound is None or hint < bound):
                bound = hint
        return bound

    def _jump_to(self, wake: int) -> None:
        """Fast-forward every component and the clock to cycle ``wake``."""
        delta = wake - self.clock.cycle
        trace = self.trace
        if trace.enabled:
            trace.record(self.clock.cycle, "kernel", "kernel.jump", cycles=delta, to=wake)
        for component in self._fast_forwarders:
            component.fast_forward(delta)
        self.clock.advance(delta)
        self.cycles_skipped += delta

    def run(self, max_cycles: int = 1_000_000) -> int:
        """Run until a stop condition fires or ``max_cycles`` is reached.

        Returns the number of cycles executed by this call (stepped plus
        fast-forwarded).  Whether the run ended because a stop condition fired
        (as opposed to exhausting the ``max_cycles`` budget) is recorded in
        :attr:`stop_condition_fired`; :attr:`truncated` is the complementary
        view.
        """
        if self.finished:
            raise SchedulingError("cannot run a kernel that has already finished")
        profiler = self.profiler
        # Profiler telemetry: wall time of the host loop, not simulated time.
        # repro-lint: allow[DET001]
        run_started = perf_counter() if profiler is not None else 0.0
        clock = self.clock
        start = clock.cycle
        limit = start + max_cycles
        self._run_limit = limit
        fast_forward = self.fast_forward and self._all_hinted
        use_queue = fast_forward and self.event_queue
        tickers = self._tickers
        post_tickers = self._post_tickers
        # The heap peek is inlined below (the queue's internals are bound
        # once): at a handful of components the scheduling decision is only
        # a few hundred nanoseconds, and a call per executed cycle is
        # measurable against it.
        events_heap = self._events._heap
        events_generations = self._events._generations
        must_poll = bool(self._poll_hinters or self._stop_hints)
        stop_fired = False
        while clock.cycle < limit:
            if self._should_stop():
                stop_fired = True
                break
            if fast_forward:
                if use_queue:
                    wake = limit
                    while events_heap:
                        cycle_, slot_, generation_ = events_heap[0]
                        if generation_ == events_generations[slot_]:
                            if cycle_ < limit:
                                wake = cycle_
                            break
                        heappop(events_heap)
                    if must_poll and wake > clock.cycle:
                        wake = self._poll_refine(wake, clock.cycle)
                else:
                    wake = self._next_wake(limit)
                if wake > clock.cycle:
                    self._jump_to(wake)
                    # No tick ran during the jump, so an event-state stop
                    # predicate (the add_stop_condition contract) cannot have
                    # flipped: fall straight through to stepping the wake
                    # cycle.  Only hinted predicates — the ones allowed to
                    # watch the clock or fast-forwarded accounting — must be
                    # re-checked, and only the cycle budget can run out.
                    if self._stop_hints:
                        continue
                    if clock.cycle >= limit:
                        break
            # One cycle, inlined from step(): this is the hottest loop in the
            # simulator and the call/loop setup of step(1) is measurable.
            for component in tickers:
                component.tick()
            for component in post_tickers:
                component.post_tick()
            clock.advance()
        if not stop_fired:
            # The loop ran out of cycle budget; a stop condition may still
            # hold at the boundary (e.g. the last step finished the work).
            stop_fired = self._should_stop()
        self.stop_condition_fired = stop_fired
        self.finished = True
        if profiler is not None:
            # repro-lint: allow[DET001]
            profiler.on_run(perf_counter() - run_started, clock.cycle - start)
        return clock.cycle - start

    @property
    def truncated(self) -> bool:
        """True when the run stopped at the cycle budget without completing."""
        return self.finished and not self.stop_condition_fired

    def reset(self) -> None:
        """Reset the clock and every component to its power-on state."""
        self.clock.reset()
        self.finished = False
        self.stop_condition_fired = False
        self._run_limit = None
        self.cycles_skipped = 0
        self._events.clear()
        for component in self._components:
            component.reset()
        if self.event_queue:
            # Re-seed the heap from the components' power-on hints, exactly
            # as registration did.
            for component in self._components:
                if component.event_driven:
                    self._prime_wake(component)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Kernel(cycle={self.clock.cycle}, components={len(self._components)}, "
            f"finished={self.finished})"
        )
