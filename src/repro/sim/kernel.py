"""Cycle-driven simulation kernel.

The kernel owns the clock, the component list, the trace recorder and the
per-run random streams.  One call to :meth:`Kernel.step` advances the
simulated platform by exactly one cycle:

1. every component's :meth:`~repro.sim.component.Component.tick` runs
   (evaluate phase, registration order);
2. every component's :meth:`~repro.sim.component.Component.post_tick` runs
   (commit phase, registration order);
3. the clock advances.

:meth:`Kernel.run` steps until a stop condition (cycle limit or a registered
completion predicate) is met.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .clock import Clock
from .component import Component
from .errors import SchedulingError
from .rng import RandomStreams
from .trace import NullTraceRecorder, TraceRecorder

__all__ = ["Kernel"]


class Kernel:
    """The cycle-driven simulation engine."""

    def __init__(
        self,
        seed: int = 0,
        run_index: int = 0,
        frequency_hz: float = 100_000_000.0,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.clock = Clock(frequency_hz=frequency_hz)
        self.streams = RandomStreams(seed=seed, run_index=run_index)
        self.trace = trace if trace is not None else NullTraceRecorder()
        self._components: list[Component] = []
        self._names: set[str] = set()
        self._stop_conditions: list[Callable[[], bool]] = []
        self._running = False
        self.finished = False
        self.stop_condition_fired = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, component: Component) -> Component:
        """Register ``component`` so it is ticked every cycle.

        Components are ticked in registration order; the platform builder
        registers them in pipeline order (cores, caches, arbiter, bus, memory)
        so that requests issued in a cycle can be observed by the arbiter in
        the same cycle, matching the single-cycle arbitration of the paper.
        """
        if component.name in self._names:
            raise SchedulingError(f"a component named {component.name!r} is already registered")
        component.bind(self)
        self._components.append(component)
        self._names.add(component.name)
        return component

    def register_all(self, components: Iterable[Component]) -> None:
        """Register several components in order."""
        for component in components:
            self.register(component)

    @property
    def components(self) -> tuple[Component, ...]:
        return tuple(self._components)

    def component(self, name: str) -> Component:
        """Return the registered component called ``name``."""
        for comp in self._components:
            if comp.name == name:
                return comp
        raise KeyError(f"no component named {name!r}")

    # ------------------------------------------------------------------
    # Stop conditions
    # ------------------------------------------------------------------
    def add_stop_condition(self, predicate: Callable[[], bool]) -> None:
        """Stop the run as soon as ``predicate()`` returns True (checked once per cycle)."""
        self._stop_conditions.append(predicate)

    def _should_stop(self) -> bool:
        return any(predicate() for predicate in self._stop_conditions)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, cycles: int = 1) -> int:
        """Advance the simulation by ``cycles`` cycles and return the new time."""
        if self.finished:
            raise SchedulingError("cannot step a kernel that has already finished")
        for _ in range(cycles):
            self._running = True
            for component in self._components:
                component.tick()
            for component in self._components:
                component.post_tick()
            self.clock.advance()
            self._running = False
        return self.clock.cycle

    def run(self, max_cycles: int = 1_000_000) -> int:
        """Run until a stop condition fires or ``max_cycles`` is reached.

        Returns the number of cycles executed by this call.  Whether the run
        ended because a stop condition fired (as opposed to exhausting the
        ``max_cycles`` budget) is recorded in :attr:`stop_condition_fired`;
        :attr:`truncated` is the complementary view.
        """
        if self.finished:
            raise SchedulingError("cannot run a kernel that has already finished")
        start = self.clock.cycle
        while self.clock.cycle - start < max_cycles:
            if self._should_stop():
                self.stop_condition_fired = True
                break
            self.step()
        else:
            # The loop ran out of cycle budget; a stop condition may still
            # hold at the boundary (e.g. the last step finished the work).
            self.stop_condition_fired = self._should_stop()
        self.finished = True
        return self.clock.cycle - start

    @property
    def truncated(self) -> bool:
        """True when the run stopped at the cycle budget without completing."""
        return self.finished and not self.stop_condition_fired

    def reset(self) -> None:
        """Reset the clock and every component to its power-on state."""
        self.clock.reset()
        self.finished = False
        self.stop_condition_fired = False
        for component in self._components:
            component.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Kernel(cycle={self.clock.cycle}, components={len(self._components)}, "
            f"finished={self.finished})"
        )
