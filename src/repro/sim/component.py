"""Component base class for the cycle-driven kernel.

Every hardware block in the simulated platform (core, cache, bus, arbiter,
memory controller, DRAM) derives from :class:`Component`.  The kernel calls
each component twice per cycle:

* :meth:`Component.tick` — the *evaluate* phase.  Components read the state
  published by other components during the previous cycle and compute their
  new outputs.  Components are ticked in registration order.
* :meth:`Component.post_tick` — the *commit* phase.  Components latch new
  state so that the next cycle's evaluate phase sees a consistent snapshot.

This two-phase scheme mirrors how synchronous RTL behaves (combinational
evaluation followed by the clock edge) and removes ordering sensitivity
between components within a cycle for state that is latched in
:meth:`post_tick`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .clock import Clock

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for type hints
    from .kernel import Kernel

__all__ = ["Component"]


class Component:
    """Base class for everything that is ticked by the kernel."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._kernel: "Kernel | None" = None

    # ------------------------------------------------------------------
    # Kernel wiring
    # ------------------------------------------------------------------
    def bind(self, kernel: "Kernel") -> None:
        """Attach this component to a kernel.  Called by ``Kernel.register``."""
        self._kernel = kernel

    @property
    def kernel(self) -> "Kernel":
        """The kernel this component is registered with."""
        if self._kernel is None:
            raise RuntimeError(
                f"component {self.name!r} is not registered with a kernel"
            )
        return self._kernel

    @property
    def clock(self) -> Clock:
        """The kernel's clock."""
        return self.kernel.clock

    @property
    def now(self) -> int:
        """Current cycle number."""
        return self.kernel.clock.cycle

    # ------------------------------------------------------------------
    # Per-cycle hooks
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Evaluate phase — override in subclasses.  Default: do nothing."""

    def post_tick(self) -> None:
        """Commit phase — override in subclasses.  Default: do nothing."""

    def reset(self) -> None:
        """Return the component to its power-on state.  Default: do nothing."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
