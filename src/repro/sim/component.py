"""Component base class for the cycle-driven kernel.

Every hardware block in the simulated platform (core, cache, bus, arbiter,
memory controller, DRAM) derives from :class:`Component`.  The kernel calls
each component twice per cycle:

* :meth:`Component.tick` — the *evaluate* phase.  Components read the state
  published by other components during the previous cycle and compute their
  new outputs.  Components are ticked in registration order.
* :meth:`Component.post_tick` — the *commit* phase.  Components latch new
  state so that the next cycle's evaluate phase sees a consistent snapshot.

This two-phase scheme mirrors how synchronous RTL behaves (combinational
evaluation followed by the clock edge) and removes ordering sensitivity
between components within a cycle for state that is latched in
:meth:`post_tick`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .clock import Clock

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for type hints
    from .kernel import Kernel

__all__ = ["Component"]


class Component:
    """Base class for everything that is ticked by the kernel."""

    #: Whether this component *pushes* its wake into the kernel's event queue
    #: (:meth:`schedule_wake`/:meth:`cancel_wake` at state transitions)
    #: instead of being polled through :meth:`next_event` at every scheduling
    #: decision.  Event-driven components must keep :meth:`next_event`
    #: implemented and consistent with what they push: the kernel uses the
    #: hint to seed the heap entry at registration/reset and falls back to
    #: polling it when the event queue is disabled, so a component behaves
    #: identically under both scheduling mechanisms.
    event_driven: bool = False

    def __init__(self, name: str) -> None:
        self.name = name
        self._kernel: "Kernel | None" = None
        self._clock: Clock | None = None
        #: Event-queue slot assigned by ``Kernel.register``.
        self._wake_slot = -1
        #: Cached ``kernel.event_queue`` so hot paths can skip computing a
        #: wake they would push into a disabled queue.
        self._wake_push = False
        #: Pre-bound queue hooks (set by ``Kernel.register`` when the event
        #: queue is on): hot push sites call these with ``_wake_slot``
        #: directly, skipping the ``schedule_wake`` dispatch chain.  Only
        #: valid while ``_wake_push`` is True.
        self._wake_schedule: "Callable[[int, int], None] | None" = None
        self._wake_cancel: "Callable[[int], None] | None" = None

    # ------------------------------------------------------------------
    # Kernel wiring
    # ------------------------------------------------------------------
    def bind(self, kernel: "Kernel") -> None:
        """Attach this component to a kernel.  Called by ``Kernel.register``."""
        self._kernel = kernel
        # Cached so the heavily used :attr:`now` is one attribute hop instead
        # of a three-property chain through kernel and clock.
        self._clock = kernel.clock
        self._wake_push = kernel.event_queue

    @property
    def kernel(self) -> "Kernel":
        """The kernel this component is registered with."""
        if self._kernel is None:
            raise RuntimeError(
                f"component {self.name!r} is not registered with a kernel"
            )
        return self._kernel

    @property
    def clock(self) -> Clock:
        """The kernel's clock."""
        if self._clock is None:
            raise RuntimeError(
                f"component {self.name!r} is not registered with a kernel"
            )
        return self._clock

    @property
    def now(self) -> int:
        """Current cycle number."""
        clock = self._clock
        if clock is None:
            raise RuntimeError(
                f"component {self.name!r} is not registered with a kernel"
            )
        return clock._cycle

    # ------------------------------------------------------------------
    # Per-cycle hooks
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Evaluate phase — override in subclasses.  Default: do nothing."""

    def post_tick(self) -> None:
        """Commit phase — override in subclasses.  Default: do nothing."""

    # ------------------------------------------------------------------
    # Fast-forward (event-aware skipping) hooks
    # ------------------------------------------------------------------
    def schedule_wake(self, cycle: int) -> None:
        """Push this component's wake to ``cycle`` (event-queue protocol).

        Carries the same meaning as :meth:`next_event` returning ``cycle``
        and stays in force until rescheduled or cancelled; see
        :meth:`repro.sim.kernel.Kernel.schedule_wake`.  Safe to call on an
        unbound component (no-op) and under the hint scan (the kernel
        ignores it), so push sites need no mode checks for correctness —
        hot paths may still consult :attr:`_wake_push` to skip computing a
        wake nobody will read.
        """
        kernel = self._kernel
        if kernel is not None:
            kernel.schedule_wake(self, cycle)

    def cancel_wake(self) -> None:
        """Drop this component's scheduled wake (hint value ``None``)."""
        kernel = self._kernel
        if kernel is not None:
            kernel.cancel_wake(self)

    def next_event(self, now: int) -> int | None:
        """Wake hint: the first cycle at which ticking this component matters.

        The kernel calls this before executing cycle ``now``.  The contract:

        * return an ``int`` cycle ``c >= now`` — "as long as no *other*
          component changes state, my :meth:`tick` at every cycle before ``c``
          is a no-op apart from the uniform per-cycle accounting replayed by
          :meth:`fast_forward`; wake me at ``c``";
        * return ``None`` — "I have no self-scheduled activity at all; only
          another component's activity can affect me" (skippable without
          bound).

        The default returns ``now`` ("I may act every cycle"), which makes
        fast-forwarding a strict opt-in: a kernel containing any component
        that does not implement hints never skips a cycle and behaves exactly
        like plain cycle-by-cycle stepping.
        """
        return now

    def fast_forward(self, cycles: int) -> None:
        """Account for ``cycles`` skipped cycles.

        Called by the kernel when it jumps the clock over a stretch of dead
        cycles.  Implementations must leave the component in exactly the
        state that ``cycles`` consecutive :meth:`tick`/:meth:`post_tick`
        calls would have produced (the kernel only skips cycles for which
        every component promised, via :meth:`next_event`, that those calls
        are uniform bookkeeping).  Default: nothing to account.
        """

    def reset(self) -> None:
        """Return the component to its power-on state.  Default: do nothing."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
