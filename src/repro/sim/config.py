"""Configuration dataclasses shared across the platform.

These dataclasses collect every knob the paper's platform exposes (latencies,
cache geometry, arbitration policy, CBA parameters) in one validated place.
The :mod:`repro.platform` package consumes them to assemble a system.

Defaults reproduce the configuration described in Section IV-A of the paper:

* 4 cores;
* bus transactions between 5 cycles (L2 read hit) and 56 cycles (two memory
  accesses of 28 cycles each, e.g. a dirty-line eviction plus a line fetch or
  an atomic read+write);
* memory latency 28 cycles;
* ``MaxL = 56``;
* CBA budget counters saturate at ``N * MaxL = 228``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigurationError

__all__ = [
    "BusTimings",
    "CacheGeometry",
    "CBAParameters",
    "MemoryConfig",
    "ObservabilityConfig",
    "PlatformConfig",
    "DEFAULT_BUS_TIMINGS",
    "DEFAULT_L1_GEOMETRY",
    "DEFAULT_L2_GEOMETRY",
]


@dataclass(frozen=True)
class BusTimings:
    """Latency model of the non-split bus and the memory behind it.

    All values are in bus-clock cycles and correspond to the total time the
    bus is *held* by one transaction (the bus is non-split, so the requesting
    core occupies it for the whole turnaround).
    """

    l2_hit_read: int = 5
    l2_hit_write: int = 6
    memory_latency: int = 28
    bus_overhead: int = 0
    #: Longest possible transaction: two back-to-back memory accesses, e.g. a
    #: dirty-line eviction followed by the line fetch, or an atomic read+write.
    max_latency: int = 56

    def __post_init__(self) -> None:
        if self.l2_hit_read <= 0 or self.l2_hit_write <= 0:
            raise ConfigurationError("L2 hit latencies must be positive")
        if self.memory_latency <= 0:
            raise ConfigurationError("memory latency must be positive")
        if self.bus_overhead < 0:
            raise ConfigurationError("bus overhead cannot be negative")
        if self.max_latency < max(self.l2_hit_read, self.l2_hit_write):
            raise ConfigurationError("max_latency must cover the L2 hit latencies")
        if self.max_latency < 2 * self.memory_latency:
            raise ConfigurationError(
                "max_latency must cover two memory accesses "
                f"(got {self.max_latency} < {2 * self.memory_latency})"
            )

    def l2_miss_clean(self) -> int:
        """Bus hold time of an L2 miss that does not evict a dirty line."""
        return self.memory_latency + self.bus_overhead

    def l2_miss_dirty(self) -> int:
        """Bus hold time of an L2 miss that writes back a dirty victim."""
        return 2 * self.memory_latency + self.bus_overhead

    def atomic(self) -> int:
        """Bus hold time of an atomic read-modify-write operation."""
        return 2 * self.memory_latency + self.bus_overhead


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ConfigurationError("cache geometry values must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ConfigurationError(
                "cache size must be a multiple of line size times associativity"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError("cache line size must be a power of two")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class CBAParameters:
    """Parameters of the credit-based arbitration mechanism.

    ``max_latency`` is the paper's ``MaxL``.  Budgets are stored scaled so all
    updates are integral: the *scale* is the sum of the per-core replenishment
    shares (``num_cores`` for homogeneous CBA, where every share is 1).  Every
    cycle each core's budget increases by its share, saturating at
    ``scale * max_latency`` (228 for the paper's 4 cores and MaxL=56); every
    cycle a core holds the bus its budget decreases by ``scale`` (4 in the
    paper), i.e. exactly one unscaled cycle of budget.  The invariant
    ``sum(shares) == scale == drain per busy cycle`` is what makes the total
    sustainable bandwidth equal to 100% of the bus.
    """

    max_latency: int = 56
    num_cores: int = 4
    #: Scaled per-cycle replenishment for each core.  Homogeneous CBA uses 1
    #: (i.e. 1/N per cycle unscaled).  H-CBA overrides this per core such that
    #: the shares still add up to ``num_cores``.
    replenish_shares: tuple[int, ...] | None = None
    #: Per-core budget cap override (scaled).  ``None`` means ``num_cores*max_latency``.
    budget_caps: tuple[int, ...] | None = None
    #: Budget each core starts with (scaled).  The paper sets the task under
    #: analysis to start with zero budget during WCET estimation.
    initial_budget: int | None = None

    def __post_init__(self) -> None:
        if self.max_latency <= 0:
            raise ConfigurationError("MaxL must be positive")
        if self.num_cores <= 0:
            raise ConfigurationError("number of cores must be positive")
        if self.replenish_shares is not None:
            if len(self.replenish_shares) != self.num_cores:
                raise ConfigurationError(
                    "replenish_shares must have one entry per core"
                )
            if any(share <= 0 for share in self.replenish_shares):
                raise ConfigurationError("replenishment shares must be positive")
        if self.budget_caps is not None:
            if len(self.budget_caps) != self.num_cores:
                raise ConfigurationError("budget_caps must have one entry per core")
            if any(cap < self.scaled_full_budget for cap in self.budget_caps):
                raise ConfigurationError(
                    "per-core budget caps cannot be below the full budget "
                    f"({self.scaled_full_budget})"
                )
        if self.initial_budget is not None and self.initial_budget < 0:
            raise ConfigurationError("initial budget cannot be negative")

    @property
    def scale(self) -> int:
        """Scaling factor of the integer budget arithmetic.

        Equals the sum of the per-core replenishment shares, which is also the
        budget drained per busy cycle.  Homogeneous CBA: ``num_cores``.
        """
        if self.replenish_shares is None:
            return self.num_cores
        return sum(self.replenish_shares)

    @property
    def scaled_full_budget(self) -> int:
        """The scaled budget value that makes a core eligible (scale * MaxL)."""
        return self.scale * self.max_latency

    @property
    def drain_per_busy_cycle(self) -> int:
        """Scaled budget charged for each cycle a core holds the bus."""
        return self.scale

    def share_for(self, core: int) -> int:
        """Scaled replenishment share of ``core`` (defaults to 1)."""
        if self.replenish_shares is None:
            return 1
        return self.replenish_shares[core]

    def cap_for(self, core: int) -> int:
        """Scaled budget cap of ``core``."""
        if self.budget_caps is None:
            return self.scaled_full_budget
        return self.budget_caps[core]

    def initial_for(self, core: int) -> int:
        """Scaled initial budget of ``core``."""
        if self.initial_budget is None:
            return self.scaled_full_budget
        return min(self.initial_budget, self.cap_for(core))


@dataclass(frozen=True)
class MemoryConfig:
    """Timing model of the DRAM behind the memory controller.

    ``model="fixed"`` reproduces the paper's platform: every memory access
    costs :attr:`BusTimings.memory_latency` cycles regardless of address, so
    the bus is the only contention point.  ``model="banked"`` enables the
    second contention point the CBA analysis extends to naturally: DRAM banks
    with per-bank row buffers, where an access costs

    * :attr:`row_hit_latency` when its row is already open in its bank,
    * :attr:`row_miss_latency` when the bank has no row open (row activate),
    * :attr:`row_conflict_latency` when another row is open (precharge +
      activate).

    The controller serves every access of one bus transaction back to back;
    :attr:`controller_policy` picks the order: ``"in_order"`` preserves the
    transaction's own sequence (writeback before fetch), ``"frfcfs"``
    (first-ready, first-come-first-served) serves accesses whose row is
    already open first, the standard open-row-priority reordering of real
    memory controllers.  Both are deterministic, so every kernel mode
    resolves identical timings.
    """

    model: str = "fixed"
    num_banks: int = 4
    row_bytes: int = 1024
    row_hit_latency: int = 16
    row_miss_latency: int = 24
    row_conflict_latency: int = 28
    controller_policy: str = "in_order"

    def __post_init__(self) -> None:
        if self.model not in ("fixed", "banked"):
            raise ConfigurationError(f"unknown memory model {self.model!r}")
        if self.controller_policy not in ("in_order", "frfcfs"):
            raise ConfigurationError(
                f"unknown memory controller policy {self.controller_policy!r}"
            )
        if self.num_banks <= 0:
            raise ConfigurationError("DRAM needs at least one bank")
        if self.row_bytes <= 0 or self.row_bytes & (self.row_bytes - 1):
            raise ConfigurationError("DRAM row size must be a positive power of two")
        if not 0 < self.row_hit_latency <= self.row_miss_latency <= self.row_conflict_latency:
            raise ConfigurationError(
                "DRAM latencies must satisfy 0 < hit <= miss <= conflict "
                f"(got {self.row_hit_latency}/{self.row_miss_latency}"
                f"/{self.row_conflict_latency})"
            )

    @property
    def worst_access_latency(self) -> int:
        """Latency of the slowest single access under this model."""
        return self.row_conflict_latency if self.model == "banked" else 0


@dataclass(frozen=True)
class ObservabilityConfig:
    """Opt-in instrumentation of one simulated system.

    Deliberately *not* a field of :class:`PlatformConfig`: observability never
    changes what a run computes, and platform configurations are content-hashed
    into campaign job IDs — folding these knobs in would invalidate every
    existing artifact store for a setting that cannot affect the results.
    """

    #: Record a timeline of simulation events (bus transactions, CBA credit
    #: dynamics, batch stretches, kernel jumps) for Chrome trace-event export.
    timeline: bool = False
    #: Bound the timeline to the most recent N events (ring buffer);
    #: ``None`` keeps every event.
    timeline_capacity: int | None = None
    #: Restrict recording to these event kinds (``None`` records all).
    timeline_kinds: tuple[str, ...] | None = None
    #: Attribute ``Kernel.run`` wall-clock to component hooks.
    profile_kernel: bool = False

    def __post_init__(self) -> None:
        if self.timeline_capacity is not None and self.timeline_capacity <= 0:
            raise ConfigurationError("timeline_capacity must be positive")
        if self.timeline_kinds is not None and not self.timeline:
            raise ConfigurationError("timeline_kinds requires timeline=True")
        if self.timeline_capacity is not None and not self.timeline:
            raise ConfigurationError("timeline_capacity requires timeline=True")

    @property
    def enabled(self) -> bool:
        """True when any instrumentation is requested."""
        return self.timeline or self.profile_kernel


DEFAULT_BUS_TIMINGS = BusTimings()
#: LEON3-class private L1 (4 KiB, 32-byte lines, 4-way).
DEFAULT_L1_GEOMETRY = CacheGeometry(size_bytes=4 * 1024, line_bytes=32, associativity=4)
#: Shared L2; partitioned per core (32 KiB per core with the default 4 cores).
DEFAULT_L2_GEOMETRY = CacheGeometry(size_bytes=128 * 1024, line_bytes=32, associativity=4)


@dataclass(frozen=True)
class PlatformConfig:
    """Top-level configuration of the simulated multicore platform."""

    num_cores: int = 4
    arbitration: str = "random_permutations"
    use_cba: bool = False
    cba: CBAParameters = field(default_factory=CBAParameters)
    bus_timings: BusTimings = field(default_factory=BusTimings)
    l1_geometry: CacheGeometry = DEFAULT_L1_GEOMETRY
    l2_geometry: CacheGeometry = DEFAULT_L2_GEOMETRY
    #: L2 is partitioned per core (paper setup), so one core cannot evict
    #: another core's lines; each partition gets 1/num_cores of the capacity.
    l2_partitioned: bool = True
    #: Cache randomisation (random placement + replacement) for MBPTA.
    random_caches: bool = True
    #: Entries of the per-core write (store) buffer; 0 disables it and keeps
    #: stores fully blocking, which is the configuration used for the paper's
    #: experiments (see DESIGN.md).  Real LEON3 pipelines have a small buffer,
    #: exposed here for ablation studies.
    store_buffer_entries: int = 0
    #: DRAM timing model behind the memory controller.  The default fixed
    #: model reproduces the paper; the banked model adds row-buffer
    #: contention as a second shared resource (see :class:`MemoryConfig`).
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    frequency_hz: float = 100_000_000.0

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigurationError("platform needs at least one core")
        if self.memory.model == "banked":
            # The longest banked transaction is two worst-case (row conflict)
            # accesses plus the bus overhead — it must fit under MaxL or the
            # bus would reject the slave's duration.
            worst = 2 * self.memory.row_conflict_latency + self.bus_timings.bus_overhead
            if worst > self.bus_timings.max_latency:
                raise ConfigurationError(
                    "max_latency must cover the worst banked DRAM transaction "
                    f"(got {self.bus_timings.max_latency} < {worst})"
                )
        if self.store_buffer_entries < 0:
            raise ConfigurationError("store_buffer_entries cannot be negative")
        if self.cba.num_cores != self.num_cores:
            raise ConfigurationError(
                "CBAParameters.num_cores must match PlatformConfig.num_cores "
                f"({self.cba.num_cores} != {self.num_cores})"
            )
        if self.cba.max_latency != self.bus_timings.max_latency:
            raise ConfigurationError(
                "CBA MaxL must equal the bus maximum transaction latency "
                f"({self.cba.max_latency} != {self.bus_timings.max_latency})"
            )

    def with_updates(self, **kwargs: object) -> "PlatformConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
