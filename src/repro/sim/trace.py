"""Lightweight event tracing.

A :class:`TraceRecorder` collects timestamped events emitted by components
(bus grants, cache misses, budget updates...).  Tracing is disabled by default
because recording every bus cycle of a long run is expensive; experiments and
tests enable it selectively to inspect fine-grained behaviour, e.g. to verify
the per-cycle signal behaviour of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = ["TraceEvent", "TraceRecorder", "NullTraceRecorder"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced event.

    Attributes
    ----------
    cycle:
        Cycle at which the event occurred.
    source:
        Name of the component that emitted the event.
    kind:
        Short event-type string, e.g. ``"bus.grant"`` or ``"cache.miss"``.
    payload:
        Free-form event data (small dictionary of plain values).
    """

    cycle: int
    source: str
    kind: str
    payload: dict[str, object] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceEvent` objects with optional kind filtering."""

    def __init__(self, kinds: Iterable[str] | None = None, capacity: int | None = None):
        """Create a recorder.

        Parameters
        ----------
        kinds:
            If given, only events whose ``kind`` is in this set are kept.
        capacity:
            If given, only the most recent ``capacity`` events are kept.
        """
        self._kinds = set(kinds) if kinds is not None else None
        self._capacity = capacity
        self.events: list[TraceEvent] = []
        self.enabled = True

    def record(self, cycle: int, source: str, kind: str, **payload: object) -> None:
        """Record one event (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        self.events.append(TraceEvent(cycle=cycle, source=source, kind=kind, payload=payload))
        if self._capacity is not None and len(self.events) > self._capacity:
            del self.events[: len(self.events) - self._capacity]

    def filter(
        self,
        kind: str | None = None,
        source: str | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """Return events matching all given criteria."""
        out = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if source is not None and event.source != source:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class NullTraceRecorder(TraceRecorder):
    """A recorder that drops everything — used when tracing is disabled."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def record(self, cycle: int, source: str, kind: str, **payload: object) -> None:  # noqa: D102
        return
