"""Command-line interface.

``python -m repro <command>`` exposes the experiment drivers so the paper's
tables and figures can be regenerated without writing any Python:

========================  =====================================================
Command                   Regenerates
========================  =====================================================
``illustrative``          the Section II example (9.4x vs 2.8x slowdowns)
``table1``                the Table I signal behaviour and rule checks
``figure1``               the Figure 1 slowdown table (EEMBC, RP/CBA/H-CBA)
``overheads``             the Section IV-B implementation-overhead comparison
``mbpta``                 an MBPTA campaign and its pWCET curve
``hcba-sweep``            the H-CBA design-space ablation
``policy-sweep``          CBA over different base arbitration policies
``list-workloads``        the modelled EEMBC-like and synthetic workloads
``obs``                   observability: record/inspect traces, profiles, metrics
``campaign``              campaign engine utilities (``chaos`` fault harness)
``fuzz``                  the property-based scenario fuzzer (run/replay/shrink)
``lint``                  the repository-contract static analyzer
========================  =====================================================

Every command accepts ``--runs`` and ``--scale`` where applicable so the
fidelity/runtime trade-off is explicit (the paper averages 1,000 runs per
configuration; the defaults here are sized for a laptop).

Every experiment command also accepts the campaign-engine flags:

* ``--jobs N`` — execute the campaign's jobs on ``N`` worker processes
  (``1`` = serial, ``0`` = one worker per CPU).  Results are bit-identical
  whatever ``N`` is;
* ``--store PATH`` — persist per-job results to a JSON-lines artifact store;
* ``--resume`` — with ``--store``, skip jobs whose results are already in
  the store (resuming an interrupted campaign, or reusing results across
  related experiments);
* ``--quiet`` — suppress the progress/ETA lines written to stderr;
* ``--profile PATH`` — write a per-phase campaign wall-clock profile
  (spawn/dispatch/simulate/result/store, plus batch/cache counters) as JSON
  to PATH;
* ``--chunk-seconds S`` / ``--chunk-jobs N`` — tune the parallel executor's
  batched dispatch: adapt chunk sizes toward ``S`` seconds per batch
  (default 0.25), or pin every batch to ``N`` jobs;
* ``--metrics PATH`` — export a labelled metrics registry built from every
  job result to PATH (JSONL, or Prometheus text for ``.prom``/``.txt``);
* ``--retries N`` — retry failing jobs up to N extra times (seeded
  exponential backoff; poison jobs are quarantined after the budget);
* ``--job-timeout SECONDS`` — kill and retry jobs that hang past the budget
  (parallel execution only);
* ``--strict-store`` — fail hard on any corrupt store line instead of
  quarantining it into the ``.quarantine`` sidecar.

``repro campaign chaos`` runs the deterministic fault-injection harness: a
scenario grid executed once cleanly and once under injected worker crashes,
transient failures and store corruption, with the recovered samples checked
bit-for-bit against the clean run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.reporting import format_key_values, format_table
from .campaign.campaign import Campaign
from .campaign.executor import create_executor
from .campaign.progress import NullProgress, ProgressReporter
from .campaign.resilience import RetryPolicy
from .campaign.store import ArtifactStore
from .fuzz.cli import add_fuzz_arguments, run_from_args as _run_fuzz_args
from .lint.cli import add_lint_arguments, run_from_args as _run_lint_args
from .obs.profiler import CampaignProfiler
from .core.bounds import ContentionScenario
from .sim.errors import ConfigurationError, SimulationError
from .experiments.base_policy_sweep import run_base_policy_sweep
from .experiments.figure1 import run_figure1
from .experiments.hcba_sweep import run_hcba_sweep
from .experiments.illustrative import run_illustrative_example
from .experiments.mbpta_experiment import run_mbpta_experiment
from .experiments.overheads import run_overheads
from .experiments.table1 import run_table1
from .workloads.eembc import FIGURE1_BENCHMARKS, available_benchmarks
from .workloads.registry import available_workloads, workload_by_name

__all__ = ["build_parser", "campaign_from_args", "main"]


def _campaign_flags() -> argparse.ArgumentParser:
    """Shared parent parser holding the campaign-engine flags."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("campaign execution")
    group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = serial, 0 = one per CPU; default: 1)",
    )
    group.add_argument(
        "--store", default=None, metavar="PATH",
        help="JSON-lines artifact store for per-job results",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="skip jobs already present in --store",
    )
    group.add_argument(
        "--quiet", action="store_true",
        help="suppress campaign progress output on stderr",
    )
    group.add_argument(
        "--profile", default=None, metavar="PATH",
        help="write a per-phase campaign wall-clock profile (JSON) to PATH",
    )
    group.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="export campaign metrics to PATH (JSONL; .prom/.txt = Prometheus)",
    )
    group.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="extra attempts for failing jobs (default: 0 = fail fast)",
    )
    group.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget; hung jobs are killed and retried",
    )
    group.add_argument(
        "--chunk-seconds", type=float, default=None, metavar="S",
        help="target seconds per dispatched job batch (default: 0.25)",
    )
    group.add_argument(
        "--chunk-jobs", type=int, default=None, metavar="N",
        help="pin every dispatched batch to N jobs (default: adaptive)",
    )
    group.add_argument(
        "--strict-store", action="store_true",
        help="fail on corrupt store lines instead of quarantining them",
    )
    return parent


def campaign_from_args(args: argparse.Namespace) -> Campaign:
    """Build the campaign engine a command was asked to run on."""
    store = (
        ArtifactStore(args.store, strict=getattr(args, "strict_store", False))
        if args.store
        else None
    )
    progress = (
        NullProgress()
        if args.quiet
        else ProgressReporter(stream=sys.stderr, prefix=args.command)
    )
    profile_path = getattr(args, "profile", None)
    profiler = CampaignProfiler(output_path=profile_path) if profile_path else None
    retries = getattr(args, "retries", 0)
    if retries < 0:
        raise ConfigurationError("--retries cannot be negative")
    retry_policy = RetryPolicy(max_attempts=retries + 1) if retries else None
    job_timeout = getattr(args, "job_timeout", None)
    return Campaign(
        executor=create_executor(
            args.jobs,
            retry_policy=retry_policy,
            job_timeout=job_timeout,
            chunk_target_seconds=getattr(args, "chunk_seconds", None),
            chunk_jobs=getattr(args, "chunk_jobs", None),
        ),
        store=store,
        resume=args.resume,
        progress=progress,
        profiler=profiler,
        metrics_path=getattr(args, "metrics", None),
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the DATE 2017 credit-based bus arbitration paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    campaign_flags = _campaign_flags()

    illustrative = sub.add_parser(
        "illustrative", help="Section II example", parents=[campaign_flags]
    )
    illustrative.add_argument("--requests", type=int, default=1000)
    illustrative.add_argument("--isolation-cycles", type=int, default=10_000)
    illustrative.add_argument("--seed", type=int, default=2017)

    table1 = sub.add_parser(
        "table1", help="Table I signal behaviour", parents=[campaign_flags]
    )
    table1.add_argument("--tua-requests", type=int, default=25)
    table1.add_argument("--rows", type=int, default=20, help="signal rows to print")

    figure1 = sub.add_parser(
        "figure1", help="Figure 1 slowdowns", parents=[campaign_flags]
    )
    figure1.add_argument("--benchmarks", nargs="*", default=list(FIGURE1_BENCHMARKS),
                         choices=available_benchmarks())
    figure1.add_argument("--runs", type=int, default=3)
    figure1.add_argument("--scale", type=float, default=0.5)
    figure1.add_argument("--seed", type=int, default=2017)

    sub.add_parser(
        "overheads",
        help="Section IV-B implementation overheads",
        parents=[campaign_flags],
    )

    mbpta = sub.add_parser(
        "mbpta", help="MBPTA campaign and pWCET curve", parents=[campaign_flags]
    )
    mbpta.add_argument("benchmark", nargs="?", default="canrdr", choices=available_benchmarks())
    mbpta.add_argument("--config", default="CBA", choices=["RP", "CBA", "H-CBA"])
    mbpta.add_argument("--runs", type=int, default=40)
    mbpta.add_argument("--scale", type=float, default=0.25)
    mbpta.add_argument("--seed", type=int, default=7)

    hcba = sub.add_parser(
        "hcba-sweep", help="H-CBA design-space ablation", parents=[campaign_flags]
    )
    hcba.add_argument("--fractions", type=float, nargs="*", default=[0.25, 0.5, 0.75])
    hcba.add_argument("--runs", type=int, default=2)
    hcba.add_argument("--scale", type=float, default=0.5)

    policy = sub.add_parser(
        "policy-sweep",
        help="CBA over different base policies",
        parents=[campaign_flags],
    )
    policy.add_argument("--benchmark", default="matrix", choices=available_benchmarks())
    policy.add_argument("--runs", type=int, default=2)
    policy.add_argument("--scale", type=float, default=0.5)

    # list-workloads prints static metadata — no campaign runs, no flags.
    workloads = sub.add_parser("list-workloads", help="list modelled workloads")
    workloads.add_argument("--verbose", action="store_true")

    obs = sub.add_parser("obs", help="observability: traces, profiles, metrics")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    record = obs_sub.add_parser(
        "record",
        help="run one instrumented contention scenario and write its artifacts",
    )
    record.add_argument("--out", default="obs-artifacts", metavar="DIR",
                        help="output directory (default: obs-artifacts)")
    record.add_argument("--benchmark", default="canrdr", choices=available_benchmarks())
    record.add_argument("--cores", type=int, default=4)
    record.add_argument("--arbitration", default="random_permutations")
    record.add_argument("--cba", action="store_true", help="wrap the arbiter with CBA")
    record.add_argument("--scale", type=float, default=0.25)
    record.add_argument("--seed", type=int, default=2017)
    record.add_argument("--ring", type=int, default=None, metavar="N",
                        help="bound the timeline to the most recent N events")

    timeline = obs_sub.add_parser(
        "timeline", help="summarise a recorded Chrome trace-event file"
    )
    timeline.add_argument("path", help="timeline.json written by `repro obs record`")

    profile = obs_sub.add_parser(
        "profile", help="render a kernel or campaign profile JSON"
    )
    profile.add_argument("path", help="profile JSON (kernel_profile.json or --profile output)")

    metrics = obs_sub.add_parser(
        "metrics", help="render an exported metrics file (JSONL or Prometheus text)"
    )
    metrics.add_argument("path", help="metrics.jsonl / metrics.prom")

    campaign = sub.add_parser(
        "campaign", help="campaign engine utilities (chaos fault harness)"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)
    chaos = campaign_sub.add_parser(
        "chaos",
        help="run the deterministic fault-injection harness on a scenario grid",
    )
    chaos.add_argument("--workers", type=int, default=2,
                       help="pool workers for the faulty campaign (default: 2)")
    chaos.add_argument("--runs", type=int, default=4,
                       help="runs per grid label (default: 4)")
    chaos.add_argument("--seed", type=int, default=2017,
                       help="simulation seed for the scenario grid")
    chaos.add_argument("--fault-seed", type=int, default=2017,
                       help="seed deriving which jobs crash/fail/hang")
    chaos.add_argument("--seed-sweep", type=int, default=None, metavar="N",
                       help="run the harness over N consecutive fault seeds "
                            "starting at --fault-seed (exit 0 only if all pass)")
    chaos.add_argument("--crashes", type=int, default=1,
                       help="worker crashes to inject (default: 1)")
    chaos.add_argument("--failures", type=int, default=1,
                       help="transient job failures to inject (default: 1)")
    chaos.add_argument("--hangs", type=int, default=0,
                       help="job hangs to inject (needs --job-timeout)")
    chaos.add_argument("--corrupt-lines", type=int, default=1,
                       help="store lines to corrupt (default: 1)")
    chaos.add_argument("--retries", type=int, default=2,
                       help="extra attempts per job (default: 2)")
    chaos.add_argument("--job-timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds")
    chaos.add_argument("--store", default=None, metavar="PATH",
                       help="store path (default: a temporary file)")
    chaos.add_argument("--quiet", action="store_true",
                       help="suppress chaos progress output on stderr")

    fuzz = sub.add_parser(
        "fuzz",
        help="property-based scenario fuzzer (run, replay, shrink)",
    )
    add_fuzz_arguments(fuzz)

    lint = sub.add_parser(
        "lint",
        help="AST-based contract analyzer (determinism, hot paths, resources)",
    )
    add_lint_arguments(lint)

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_illustrative(args: argparse.Namespace) -> int:
    scenario = ContentionScenario(
        isolation_cycles=args.isolation_cycles, tua_requests=args.requests
    )
    result = run_illustrative_example(
        scenario, seed=args.seed, campaign=campaign_from_args(args)
    )
    print(format_key_values(
        {
            "analytic request-fair slowdown": f"{result.analytic_request_fair_slowdown:.2f}x",
            "analytic cycle-fair slowdown": f"{result.analytic_cycle_fair_slowdown:.2f}x",
            "simulated request-fair slowdown": f"{result.simulated_request_fair_slowdown:.2f}x",
            "simulated cycle-fair slowdown": f"{result.simulated_cycle_fair_slowdown:.2f}x",
        },
        title="Section II illustrative example",
    ))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    result = run_table1(
        tua_requests=args.tua_requests, campaign=campaign_from_args(args)
    )
    rows = result.wcet_mode_rows[: args.rows]
    headers = list(rows[0].keys())
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))
    print()
    print(format_key_values(result.summary(), title="Table I rule checks"))
    return 0 if result.rules_hold else 1


def _cmd_figure1(args: argparse.Namespace) -> int:
    result = run_figure1(
        benchmarks=args.benchmarks, num_runs=args.runs,
        access_scale=args.scale, seed=args.seed,
        campaign=campaign_from_args(args),
    )
    print(result.to_table())
    print()
    print(format_key_values(
        {
            "worst RP-CON slowdown": (
                f"{result.worst_contention_slowdown('RP-CON'):.2f} (paper: 3.34)"
            ),
            "worst CBA-CON slowdown": (
                f"{result.worst_contention_slowdown('CBA-CON'):.2f} (paper: 2.34)"
            ),
            "CBA isolation overhead": (
                f"{100 * result.isolation_overhead('CBA-ISO'):.1f}% (paper: ~3%)"
            ),
            "H-CBA isolation overhead": f"{100 * result.isolation_overhead('H-CBA-ISO'):.1f}%",
        },
        title="Figure 1 headline numbers",
    ))
    return 0


def _cmd_overheads(args: argparse.Namespace) -> int:
    result = run_overheads(campaign=campaign_from_args(args))
    print(format_key_values(result.summary(), title="Implementation overheads (Section IV-B)"))
    return 0 if result.claim_holds else 1


def _cmd_mbpta(args: argparse.Namespace) -> int:
    result = run_mbpta_experiment(
        benchmark=args.benchmark, configuration=args.config,
        num_runs=args.runs, access_scale=args.scale, seed=args.seed,
        campaign=campaign_from_args(args),
    )
    print(format_key_values(result.summary(), title="MBPTA campaign"))
    print()
    print(format_table(
        ["exceedance probability", "pWCET (cycles)"],
        [[f"{p:g}", bound] for p, bound in result.mbpta.pwcet.points()],
        float_format="{:.0f}",
    ))
    return 0 if result.bound_dominates_operation else 1


def _cmd_hcba_sweep(args: argparse.Namespace) -> int:
    result = run_hcba_sweep(
        fractions=tuple(args.fractions), num_runs=args.runs,
        access_scale=args.scale, campaign=campaign_from_args(args),
    )
    rows = [
        [p.label, p.favoured_fraction, p.tua_slowdown, p.tua_bandwidth_share]
        for p in result.points
    ]
    print(format_table(
        ["configuration", "favoured fraction", "TuA slowdown", "TuA bus share"], rows
    ))
    return 0


def _cmd_policy_sweep(args: argparse.Namespace) -> int:
    result = run_base_policy_sweep(
        benchmark=args.benchmark, num_runs=args.runs,
        access_scale=args.scale, campaign=campaign_from_args(args),
    )
    rows = []
    for policy in result.policies():
        rows.append([
            policy,
            result.contention_slowdown(policy, use_cba=False),
            result.contention_slowdown(policy, use_cba=True),
            result.improvement(policy),
        ])
    print(format_table(
        ["base policy", "contention slowdown", "with CBA", "improvement"], rows
    ))
    return 0


def _cmd_list_workloads(args: argparse.Namespace) -> int:
    rows = []
    for name in available_workloads():
        spec = workload_by_name(name)
        if args.verbose:
            rows.append([
                name, spec.num_accesses, spec.working_set_bytes,
                spec.mean_compute_gap, spec.pattern, spec.description,
            ])
        else:
            rows.append([name, spec.description])
    headers = (
        ["name", "accesses", "working set (B)", "mean gap", "pattern", "description"]
        if args.verbose
        else ["name", "description"]
    )
    print(format_table(headers, rows))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    # The record path pulls in the whole platform layer; the render paths
    # only read JSON — import per subcommand to keep `repro obs metrics`
    # and friends instant.
    import json

    from .obs import report

    if args.obs_command == "record":
        from .obs.record import record_contention

        summary = record_contention(
            args.out,
            benchmark=args.benchmark,
            cores=args.cores,
            arbitration=args.arbitration,
            use_cba=args.cba,
            access_scale=args.scale,
            seed=args.seed,
            ring=args.ring,
        )
        utilization = float(summary["bus_utilization"])  # type: ignore[arg-type]
        print(format_key_values(
            {
                "benchmark": summary["benchmark"],
                "configuration": f"{summary['arbitration']}"
                                 f"{' + CBA' if summary['use_cba'] else ''}",
                "total cycles": summary["total_cycles"],
                "bus utilization": f"{utilization:.3f}",
                "trace events": summary["trace_events"],
                "metric series": summary["metrics_series"],
                "artifacts": args.out,
            },
            title="observability recording",
        ))
        return 0
    if args.obs_command == "timeline":
        with open(args.path, encoding="utf-8") as handle:
            document = json.load(handle)
        print(report.render_timeline_summary(document))
        return 0
    if args.obs_command == "profile":
        with open(args.path, encoding="utf-8") as handle:
            data = json.load(handle)
        print(report.render_profile(data))
        return 0
    print(report.render_metrics_file(args.path))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    # Only the chaos harness lives here for now; the subparser enforces it.
    from .campaign.faults import run_chaos, run_chaos_sweep

    knobs = dict(
        seed=args.seed,
        runs_per_label=args.runs,
        workers=args.workers,
        crashes=args.crashes,
        failures=args.failures,
        hangs=args.hangs,
        corrupt_lines=args.corrupt_lines,
        retries=args.retries,
        job_timeout=args.job_timeout,
        store_path=args.store,
        quiet=args.quiet,
    )
    if args.seed_sweep is None:
        report = run_chaos(fault_seed=args.fault_seed, **knobs)
        print(format_key_values(report.summary(), title="campaign chaos harness"))
        return 0 if report.passed else 1
    reports = run_chaos_sweep(args.seed_sweep, fault_seed=args.fault_seed, **knobs)
    for fault_seed, report in reports:
        print(
            format_key_values(
                report.summary(),
                title=f"campaign chaos harness (fault seed {fault_seed})",
            )
        )
    failed = [seed for seed, report in reports if not report.passed]
    verdict = (
        f"chaos sweep: {len(reports) - len(failed)}/{len(reports)} seeds passed"
    )
    if failed:
        verdict += f" (failed: {', '.join(map(str, failed))})"
    print(verdict)
    return 0 if not failed else 1


_COMMANDS = {
    "illustrative": _cmd_illustrative,
    "table1": _cmd_table1,
    "figure1": _cmd_figure1,
    "overheads": _cmd_overheads,
    "mbpta": _cmd_mbpta,
    "hcba-sweep": _cmd_hcba_sweep,
    "policy-sweep": _cmd_policy_sweep,
    "list-workloads": _cmd_list_workloads,
    "obs": _cmd_obs,
    "campaign": _cmd_campaign,
    "fuzz": _run_fuzz_args,
    "lint": _run_lint_args,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not getattr(args, "store", None):
        parser.error("--resume requires --store PATH")
    handler = _COMMANDS[args.command]
    try:
        return handler(args)
    except SimulationError as error:
        # Bad flag values, corrupt stores, inconsistent configurations:
        # user-facing problems, not crashes — report them like argparse does.
        print(f"{parser.prog}: error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. `head`);
        # this is not an error from the experiment's point of view.
        try:
            sys.stdout.close()
        except OSError:  # pragma: no cover - depends on the platform
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
