"""repro — Credit-Based Arbitration (CBA) for fair bus bandwidth sharing.

A production-quality Python reproduction of *"Design and Implementation of a
Fair Credit-Based Bandwidth Sharing Scheme for Buses"* (Slijepcevic,
Hernandez, Abella, Cazorla — DATE 2017): a cycle-accurate model of a 4-core
LEON3-like platform with a non-split shared bus, the slot-fair baseline
arbiters, the credit-based arbitration filter (CBA) and its heterogeneous
variant (H-CBA), the MBPTA/EVT WCET-estimation toolchain, EEMBC-like
workloads, and the experiment harnesses that regenerate every table and
figure of the paper.

Quickstart::

    from repro import cba_config, rp_config, run_max_contention, eembc_workload

    workload = eembc_workload("matrix")
    rp = run_max_contention(workload, rp_config(), seed=1)
    cba = run_max_contention(workload, cba_config(), seed=1)
    print(rp.tua_cycles, cba.tua_cycles)

See ``examples/`` for runnable scripts and ``DESIGN.md`` for the full system
inventory.
"""

from .analysis import fairness_report, jain_index, mean_with_confidence, slowdown
from .arbiters import (
    Arbiter,
    FIFOArbiter,
    FixedPriorityArbiter,
    LotteryArbiter,
    RandomPermutationsArbiter,
    RoundRobinArbiter,
    TDMAArbiter,
    available_policies,
    create_arbiter,
)
from .bus import AccessType, BusMonitor, BusRequest, LatencyTable, SharedBus, TransactionClass
from .core import (
    ArbiterSignalModel,
    ContentionScenario,
    CreditAccount,
    CreditBank,
    CreditBasedArbiter,
    OperatingMode,
    make_hcba_arbiter,
)
from .experiments import (
    run_figure1,
    run_hcba_sweep,
    run_illustrative_example,
    run_mbpta_experiment,
    run_overheads,
    run_table1,
)
from .mbpta import MBPTAResult, PWCETCurve, fit_evt, mbpta_from_samples, run_mbpta
from .platform import (
    MulticoreSystem,
    SystemResult,
    cba_config,
    config_by_label,
    hcba_config,
    rp_config,
    run_isolation,
    run_max_contention,
    run_multiprogram,
    run_wcet_estimation,
)
from .sim import (
    BusTimings,
    CacheGeometry,
    CBAParameters,
    Clock,
    Component,
    Kernel,
    PlatformConfig,
    RandomStreams,
)
from .workloads import (
    FIGURE1_BENCHMARKS,
    WorkloadSpec,
    available_benchmarks,
    available_workloads,
    eembc_workload,
    workload_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # sim
    "Kernel",
    "Clock",
    "Component",
    "RandomStreams",
    "PlatformConfig",
    "CBAParameters",
    "BusTimings",
    "CacheGeometry",
    # bus
    "SharedBus",
    "BusRequest",
    "AccessType",
    "LatencyTable",
    "TransactionClass",
    "BusMonitor",
    # arbiters
    "Arbiter",
    "RoundRobinArbiter",
    "FIFOArbiter",
    "TDMAArbiter",
    "LotteryArbiter",
    "RandomPermutationsArbiter",
    "FixedPriorityArbiter",
    "create_arbiter",
    "available_policies",
    # core (CBA)
    "CreditAccount",
    "CreditBank",
    "CreditBasedArbiter",
    "make_hcba_arbiter",
    "ArbiterSignalModel",
    "OperatingMode",
    "ContentionScenario",
    # platform
    "MulticoreSystem",
    "SystemResult",
    "rp_config",
    "cba_config",
    "hcba_config",
    "config_by_label",
    "run_isolation",
    "run_max_contention",
    "run_wcet_estimation",
    "run_multiprogram",
    # workloads
    "WorkloadSpec",
    "eembc_workload",
    "workload_by_name",
    "available_benchmarks",
    "available_workloads",
    "FIGURE1_BENCHMARKS",
    # mbpta
    "MBPTAResult",
    "PWCETCurve",
    "run_mbpta",
    "mbpta_from_samples",
    "fit_evt",
    # analysis
    "slowdown",
    "jain_index",
    "fairness_report",
    "mean_with_confidence",
    # experiments
    "run_figure1",
    "run_illustrative_example",
    "run_table1",
    "run_overheads",
    "run_mbpta_experiment",
    "run_hcba_sweep",
]
