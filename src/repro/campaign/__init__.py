"""Campaign orchestration: parallel, resumable experiment execution.

The paper's evaluation is built on large randomised campaigns (1,000 runs per
benchmark x scenario x arbitration policy).  This package is the engine that
executes such campaigns at scale:

* :mod:`~repro.campaign.jobs` — declarative :class:`CampaignJob` specs with
  stable content-hash IDs and a scenario-runner registry;
* :mod:`~repro.campaign.executor` — pluggable backends
  (:class:`SerialExecutor`, process-pool :class:`ParallelExecutor`) with
  bit-identical results across backends;
* :mod:`~repro.campaign.store` — a JSON-lines :class:`ArtifactStore` keyed by
  job ID, enabling resumable campaigns and cross-experiment reuse;
* :mod:`~repro.campaign.campaign` — the :class:`Campaign` orchestrator;
* :mod:`~repro.campaign.progress` — throttled progress/ETA reporting;
* :mod:`~repro.campaign.resilience` — retry policies with seeded backoff,
  structured :class:`JobFailure` records and poison-job quarantine;
* :mod:`~repro.campaign.faults` — deterministic fault injection
  (:class:`FaultPlan`) and the ``repro campaign chaos`` harness.

Typical use::

    from repro.campaign import Campaign, create_executor, ArtifactStore
    from repro.experiments.figure1 import run_figure1

    campaign = Campaign(
        executor=create_executor(8),
        store=ArtifactStore("figure1.jsonl"),
        resume=True,
    )
    result = run_figure1(num_runs=1000, campaign=campaign)
"""

from .campaign import AggregatedRuns, Campaign, CampaignReport, aggregate_by_label
from .executor import Executor, ParallelExecutor, SerialExecutor, create_executor
from .faults import ChaosReport, FaultInjectedError, FaultPlan, run_chaos
from .jobs import (
    CampaignJob,
    JobResult,
    RunOutcome,
    register_scenario,
    resolve_scenario,
    run_job,
    seed_block_jobs,
)
from .progress import NullProgress, ProgressReporter
from .resilience import JobFailure, ResilienceSummary, RetryPolicy
from .store import ArtifactStore

__all__ = [
    "AggregatedRuns",
    "ArtifactStore",
    "Campaign",
    "CampaignJob",
    "CampaignReport",
    "ChaosReport",
    "Executor",
    "FaultInjectedError",
    "FaultPlan",
    "JobFailure",
    "JobResult",
    "NullProgress",
    "ParallelExecutor",
    "ProgressReporter",
    "ResilienceSummary",
    "RetryPolicy",
    "RunOutcome",
    "SerialExecutor",
    "aggregate_by_label",
    "create_executor",
    "register_scenario",
    "resolve_scenario",
    "run_chaos",
    "run_job",
    "seed_block_jobs",
]
