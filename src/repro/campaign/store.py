"""JSON-lines artifact store for campaign results.

One line per finished job, keyed by the job's content hash.  Append-only:
re-running a job appends a fresh record and the *last* record for a job ID
wins on load, so a crashed or interrupted campaign leaves a valid store
behind — that is what makes campaigns resumable.  The format is deliberately
plain (one JSON object per line, no framing) so stores can be inspected,
concatenated, grepped and diffed with standard tools.

Durability and corruption handling (schema 2):

* every record carries a CRC-32 over its canonical encoding, so silent
  bit-rot is detected, not silently aggregated (schema-1 records, which
  predate the checksum, are still read);
* a truncated *trailing* line (crash mid-append) is silently recovered;
  a corrupt line anywhere *earlier* is moved to a ``<store>.quarantine``
  sidecar and skipped — pass ``strict=True`` to get the old hard failure;
* appends hold an advisory ``flock`` (a ``<store>.lock`` sidecar), so two
  campaigns cannot interleave half-lines into one store;
* ``put`` and ``compact`` fsync the parent directory after creating or
  replacing the file, so a crash immediately afterwards cannot lose the
  rename on journalling filesystems.
"""

from __future__ import annotations

import json
import os
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping

try:  # POSIX advisory locking; campaigns on other platforms run unlocked.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms only
    fcntl = None  # type: ignore[assignment]

from ..sim.errors import ConfigurationError
from .jobs import JobResult

__all__ = ["ArtifactStore"]

#: Bump when the record layout changes incompatibly.
#: v1: plain records.  v2: adds a per-record ``crc`` checksum (v1 readable).
SCHEMA_VERSION = 2

#: The oldest schema this reader still accepts.
MIN_SCHEMA_VERSION = 1


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-created/renamed entry survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. directories not openable (win)
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem without dir fsync
        pass
    finally:
        os.close(fd)


def _encode_record(record: Mapping[str, object]) -> str:
    """The canonical encoding the CRC is computed over (and written as).

    Only the top level is sorted: nested payloads keep their insertion order
    (it can be meaningful, e.g. table column order).  The reader re-encodes
    the parsed record the same way, so writer and verifier agree bit-for-bit.
    """
    return json.dumps({key: record[key] for key in sorted(record)})


class ArtifactStore:
    """Persistent per-job results, keyed by content-hash job ID.

    ``strict=True`` restores hard failure on any non-trailing corruption;
    the default quarantines corrupt lines into :attr:`quarantine_path` and
    carries on, because at campaign scale one rotten record must not cost
    the other 99.9% of the samples.
    """

    def __init__(self, path: str | os.PathLike[str], strict: bool = False) -> None:
        self.path = Path(path)
        self.strict = strict
        #: Corrupt lines moved to the sidecar by the most recent load().
        self.quarantined_lines = 0
        self._index: dict[str, JobResult] = {}
        self._loaded = False
        self._lock_handle = None
        self._lock_count = 0
        #: Append handle kept open across puts while an *outer* lock is held
        #: (a campaign run), so streaming batch results pay one open() per
        #: campaign instead of one per record.
        self._append_handle = None

    @property
    def quarantine_path(self) -> Path:
        """Sidecar file receiving corrupt lines (one JSON record per line)."""
        return self.path.with_suffix(self.path.suffix + ".quarantine")

    @property
    def lock_path(self) -> Path:
        """Sidecar file carrying the advisory append lock."""
        return self.path.with_suffix(self.path.suffix + ".lock")

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------
    def acquire_lock(self) -> None:
        """Take the advisory store lock (re-entrant within this instance).

        Raises :class:`ConfigurationError` immediately when another process
        (or another store instance) holds it — interleaved appends from two
        campaigns are a corruption source, not something to wait out silently.
        """
        if self._lock_count == 0 and fcntl is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle = self.lock_path.open("a+")
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                raise ConfigurationError(
                    f"{self.path}: another campaign holds the store lock "
                    f"({self.lock_path}); refusing to interleave appends"
                ) from None
            self._lock_handle = handle
        self._lock_count += 1

    def release_lock(self) -> None:
        """Release one acquisition of the advisory lock."""
        if self._lock_count == 0:
            return
        self._lock_count -= 1
        if self._lock_count == 0:
            self._close_append_handle()
            if self._lock_handle is not None:
                try:
                    fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_UN)
                finally:
                    self._lock_handle.close()
                    self._lock_handle = None

    def _close_append_handle(self) -> None:
        if self._append_handle is not None:
            try:
                self._append_handle.close()
            finally:
                self._append_handle = None

    @contextmanager
    def locked(self) -> Iterator["ArtifactStore"]:
        """Hold the advisory lock for a block (used per-append and per-campaign)."""
        self.acquire_lock()
        try:
            yield self
        finally:
            self.release_lock()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self) -> dict[str, JobResult]:
        """Read the store into memory (idempotent) and return the index."""
        if self._loaded:
            return self._index
        self._index = {}
        self.quarantined_lines = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        # A partially written trailing line (crash mid-append)
                        # is expected and silently recovered; anything earlier
                        # is corruption.
                        remaining = handle.read().strip()
                        if remaining:
                            self._reject(line, line_number, "invalid JSON")
                            # Re-scan what we read ahead: the lines after the
                            # corruption are intact records that must not be
                            # lost (and the very last may itself be a
                            # tolerated trailing truncation).
                            rest_lines = [text.strip() for text in remaining.splitlines()]
                            for offset, rest in enumerate(rest_lines):
                                if not rest:
                                    continue
                                number = line_number + 1 + offset
                                try:
                                    rest_record = json.loads(rest)
                                except json.JSONDecodeError:
                                    if offset == len(rest_lines) - 1:
                                        break  # trailing truncation: recover
                                    self._reject(rest, number, "invalid JSON")
                                    continue
                                self._load_line_record(rest_record, rest, number)
                        break
                    self._load_line_record(record, line, line_number)
        self._loaded = True
        return self._index

    def _load_line_record(
        self, record: Mapping[str, object], line: str, line_number: int
    ) -> None:
        """Verify and index one parsed record; quarantine what fails."""
        if not isinstance(record, dict):
            self._reject(line, line_number, "record is not a JSON object")
            return
        crc = record.pop("crc", None)
        if crc is not None:
            expected = zlib.crc32(_encode_record(record).encode("utf-8"))
            if crc != expected:
                self._reject(
                    line, line_number, f"CRC mismatch (stored {crc}, computed {expected})"
                )
                return
        try:
            self._apply(record, line_number)
        except ConfigurationError:
            raise  # schema/version problems are configuration, not corruption
        except (KeyError, TypeError, ValueError) as error:
            self._reject(line, line_number, f"malformed record: {error}")

    def _reject(self, line: str, line_number: int, reason: str) -> None:
        """Strict mode: raise.  Default: quarantine the line and carry on."""
        if self.strict:
            raise ConfigurationError(
                f"{self.path}: corrupt record on line {line_number} ({reason})"
            )
        entry = {"line_number": line_number, "reason": reason, "line": line}
        self.quarantine_path.parent.mkdir(parents=True, exist_ok=True)
        with self.quarantine_path.open("a", encoding="utf-8") as handle:
            handle.write(_encode_record(entry) + "\n")
        self.quarantined_lines += 1

    def _apply(self, record: Mapping[str, object], line_number: int) -> None:
        raw_schema = record.get("schema", SCHEMA_VERSION)
        try:
            schema = int(raw_schema)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"{self.path}: line {line_number} has a non-integer schema "
                f"field ({raw_schema!r})"
            ) from None
        if schema > SCHEMA_VERSION:
            raise ConfigurationError(
                f"{self.path}: line {line_number} uses schema {schema}, "
                f"newer than this reader ({SCHEMA_VERSION})"
            )
        if schema < MIN_SCHEMA_VERSION:
            raise ConfigurationError(
                f"{self.path}: line {line_number} uses schema {schema}, "
                f"older than this reader supports ({MIN_SCHEMA_VERSION})"
            )
        result = JobResult.from_dict(record)
        self._index[result.job_id] = result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, job_id: str) -> bool:
        return job_id in self.load()

    def __len__(self) -> int:
        return len(self.load())

    def get(self, job_id: str) -> JobResult | None:
        return self.load().get(job_id)

    def results(self) -> Iterator[JobResult]:
        """Iterate over the stored results (last record per job ID)."""
        return iter(self.load().values())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @staticmethod
    def _record_line(result: JobResult) -> str:
        """One checksummed schema-2 line (without the trailing newline)."""
        record = {"schema": SCHEMA_VERSION, **result.to_dict()}
        record["crc"] = zlib.crc32(_encode_record(record).encode("utf-8"))
        return _encode_record(record)

    def put(self, result: JobResult) -> None:
        """Append ``result`` and update the in-memory index.

        Each record is written with a single flushed ``write`` call so that
        concurrent readers never observe a torn line and an interrupted
        campaign loses at most the job that was being written.  The append
        happens under the advisory store lock, and creating the store file
        is followed by an fsync of the parent directory.  When the caller
        already holds the lock across puts (a campaign run does, for its
        whole duration), the append handle is kept open between records —
        the per-record flush+fsync durability contract is unchanged, only
        the open/close churn goes away.
        """
        self.load()
        line = self._record_line(result) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        created = not self.path.exists()
        with self.locked():
            handle = self._append_handle
            if handle is None or handle.closed:
                handle = self.path.open("a", encoding="utf-8")
                if self._lock_count > 1:  # outer lock outlives this put
                    self._append_handle = handle
            try:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
            finally:
                if handle is not self._append_handle:
                    handle.close()
            if created:
                _fsync_dir(self.path.parent)
        self._index[result.job_id] = result

    def compact(self) -> int:
        """Rewrite the store keeping only the winning record per job ID.

        Returns the number of dropped (superseded or quarantined) records.
        Useful after many interrupted/re-run campaigns have accumulated
        duplicates.  Records are rewritten at the current schema (so a v1
        store upgrades to checksummed v2 lines), the temporary file is
        fsynced before the atomic rename, and the parent directory is
        fsynced afterwards so the rename itself is durable.
        """
        index = dict(self.load())
        dropped = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                total = sum(1 for line in handle if line.strip())
            dropped = total - len(index)
        tmp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        with self.locked():
            # A cached append handle points at the inode the rename below
            # replaces; drop it so later puts reopen the fresh file.
            self._close_append_handle()
            with tmp_path.open("w", encoding="utf-8") as handle:
                for result in index.values():
                    handle.write(self._record_line(result) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            tmp_path.replace(self.path)
            _fsync_dir(self.path.parent)
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.path)!r}, entries={len(self.load())})"
