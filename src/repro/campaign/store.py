"""JSON-lines artifact store for campaign results.

One line per finished job, keyed by the job's content hash.  Append-only:
re-running a job appends a fresh record and the *last* record for a job ID
wins on load, so a crashed or interrupted campaign leaves a valid store
behind — that is what makes campaigns resumable.  The format is deliberately
plain (one JSON object per line, no framing) so stores can be inspected,
concatenated, grepped and diffed with standard tools.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Mapping

from ..sim.errors import ConfigurationError
from .jobs import JobResult

__all__ = ["ArtifactStore"]

#: Bump when the record layout changes incompatibly.
SCHEMA_VERSION = 1


class ArtifactStore:
    """Persistent per-job results, keyed by content-hash job ID."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._index: dict[str, JobResult] = {}
        self._loaded = False

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self) -> dict[str, JobResult]:
        """Read the store into memory (idempotent) and return the index."""
        if self._loaded:
            return self._index
        self._index = {}
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        # A partially written trailing line (crash mid-append)
                        # is expected; anything earlier is corruption.
                        remaining = handle.read().strip()
                        if remaining:
                            raise ConfigurationError(
                                f"{self.path}: corrupt record on line {line_number}"
                            ) from None
                        break
                    self._apply(record, line_number)
        self._loaded = True
        return self._index

    def _apply(self, record: Mapping[str, object], line_number: int) -> None:
        schema = int(record.get("schema", SCHEMA_VERSION))
        if schema > SCHEMA_VERSION:
            raise ConfigurationError(
                f"{self.path}: line {line_number} uses schema {schema}, "
                f"newer than this reader ({SCHEMA_VERSION})"
            )
        result = JobResult.from_dict(record)
        self._index[result.job_id] = result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, job_id: str) -> bool:
        return job_id in self.load()

    def __len__(self) -> int:
        return len(self.load())

    def get(self, job_id: str) -> JobResult | None:
        return self.load().get(job_id)

    def results(self) -> Iterator[JobResult]:
        """Iterate over the stored results (last record per job ID)."""
        return iter(self.load().values())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def put(self, result: JobResult) -> None:
        """Append ``result`` and update the in-memory index.

        Each record is written with a single flushed ``write`` call so that
        concurrent readers never observe a torn line and an interrupted
        campaign loses at most the job that was being written.
        """
        self.load()
        record = {"schema": SCHEMA_VERSION, **result.to_dict()}
        # Sort only the top level: nested payloads keep their insertion order
        # (it can be meaningful, e.g. table column order).
        record = {key: record[key] for key in sorted(record)}
        line = json.dumps(record) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._index[result.job_id] = result

    def compact(self) -> int:
        """Rewrite the store keeping only the winning record per job ID.

        Returns the number of dropped (superseded) records.  Useful after
        many interrupted/re-run campaigns have accumulated duplicates.
        """
        index = dict(self.load())
        dropped = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                total = sum(1 for line in handle if line.strip())
            dropped = total - len(index)
        tmp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for result in index.values():
                record = {"schema": SCHEMA_VERSION, **result.to_dict()}
                record = {key: record[key] for key in sorted(record)}
                handle.write(json.dumps(record) + "\n")
        tmp_path.replace(self.path)
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.path)!r}, entries={len(self.load())})"
