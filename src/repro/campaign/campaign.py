"""The campaign orchestrator.

:class:`Campaign` turns a flat list of :class:`~repro.campaign.jobs.CampaignJob`
into results: it deduplicates jobs that share a content hash (cross-experiment
reuse), skips jobs already present in the artifact store when resuming,
dispatches the remainder through the configured executor, persists each
result as it lands, and reports progress.

Experiments express their runs as jobs, call :meth:`Campaign.run`, and fold
the returned ``job_id -> JobResult`` mapping back into their own result
shapes with :func:`aggregate_by_label`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..sim.errors import ConfigurationError
from .executor import Executor, SerialExecutor
from .jobs import CampaignJob, JobResult
from .progress import NullProgress
from .store import ArtifactStore

__all__ = ["AggregatedRuns", "Campaign", "CampaignReport", "aggregate_by_label"]


@dataclass(frozen=True)
class CampaignReport:
    """Accounting for one :meth:`Campaign.run` call."""

    total_jobs: int
    executed_jobs: int
    reused_jobs: int
    deduplicated_jobs: int
    truncated_runs: int

    @property
    def all_reused(self) -> bool:
        """True when the store satisfied the whole campaign (full resume)."""
        return self.total_jobs > 0 and self.executed_jobs == 0


@dataclass(frozen=True)
class AggregatedRuns:
    """Per-label aggregation of (possibly block-split) job results.

    ``samples`` is a read-only ``float64`` array — the columnar form the
    vectorised MBPTA analysis layer consumes directly, without tuple/list
    round trips.
    """

    label: str
    samples: np.ndarray
    metrics: tuple[dict[str, float], ...]
    payloads: tuple[object, ...]
    truncated_runs: int = 0

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    def metric_mean(self, name: str) -> float:
        """Average one per-run side-metric over every run of the label."""
        values = [m[name] for m in self.metrics if name in m]
        if not values:
            raise KeyError(f"metric {name!r} was not recorded for {self.label!r}")
        return sum(values) / len(values)


class Campaign:
    """Expand, dispatch, persist and aggregate campaign jobs."""

    def __init__(
        self,
        executor: Executor | None = None,
        store: ArtifactStore | None = None,
        resume: bool = False,
        progress: NullProgress | None = None,
    ) -> None:
        if resume and store is None:
            raise ConfigurationError("resuming requires an artifact store")
        self.executor = executor if executor is not None else SerialExecutor()
        self.store = store
        self.resume = resume
        self.progress = progress if progress is not None else NullProgress()
        self.last_report: CampaignReport | None = None

    def run(self, jobs: Sequence[CampaignJob]) -> dict[str, JobResult]:
        """Execute ``jobs`` and return results keyed by job ID.

        Jobs with equal content hashes are executed once; when resuming,
        jobs whose ID is already in the store are served from it without
        re-execution.  Fresh results are appended to the store (when one is
        configured) as they complete, so an interrupted campaign can resume
        from exactly where it stopped.
        """
        unique: dict[str, CampaignJob] = {}
        for job in jobs:
            unique.setdefault(job.job_id, job)

        results: dict[str, JobResult] = {}
        pending: list[CampaignJob] = []
        for job_id, job in unique.items():
            cached = self.store.get(job_id) if (self.store and self.resume) else None
            if cached is not None:
                results[job_id] = cached
            else:
                pending.append(job)

        self.progress.start(total=len(unique), skipped=len(results))
        for result in self.executor.execute(pending):
            if self.store is not None:
                self.store.put(result)
            results[result.job_id] = result
            self.progress.advance(label=result.label)
        self.progress.finish()

        self.last_report = CampaignReport(
            total_jobs=len(unique),
            executed_jobs=len(pending),
            reused_jobs=len(unique) - len(pending),
            deduplicated_jobs=len(jobs) - len(unique),
            truncated_runs=sum(r.truncated_runs for r in results.values()),
        )
        return results


def aggregate_by_label(
    jobs: Sequence[CampaignJob],
    results: Mapping[str, JobResult],
    allow_truncated: bool = False,
) -> dict[str, AggregatedRuns]:
    """Merge per-block results back into one record per job label.

    Blocks are concatenated in ``run_start`` order, so the aggregated sample
    vector is identical to what a single sequential loop over the run indices
    would have produced — regardless of executor, worker count or completion
    order.

    A run that hit its cycle budget before completing produced no execution
    time (its sample is 0), so by default any truncated run is an error —
    the same contract the scenario runners enforce outside campaigns.  Pass
    ``allow_truncated=True`` to aggregate anyway and inspect
    :attr:`AggregatedRuns.truncated_runs` yourself.
    """
    by_label: dict[str, list[CampaignJob]] = {}
    for job in jobs:
        by_label.setdefault(job.label, []).append(job)

    aggregated: dict[str, AggregatedRuns] = {}
    for label, label_jobs in by_label.items():
        sample_blocks: list[np.ndarray] = []
        metrics: list[dict[str, float]] = []
        payloads: list[object] = []
        truncated = 0
        seen: set[str] = set()
        for job in sorted(label_jobs, key=lambda j: j.run_start):
            if job.job_id in seen:  # identical duplicate within one label
                continue
            seen.add(job.job_id)
            try:
                result = results[job.job_id]
            except KeyError:
                raise ConfigurationError(
                    f"no result for job {job.job_id} ({label!r}); "
                    "was the campaign interrupted?"
                ) from None
            sample_blocks.append(result.samples_array)
            metrics.extend(result.metrics)
            payloads.extend(result.payloads)
            truncated += result.truncated_runs
        samples = (
            np.concatenate(sample_blocks)
            if sample_blocks
            else np.empty(0, dtype=np.float64)
        )
        samples.setflags(write=False)
        if truncated and not allow_truncated:
            raise ConfigurationError(
                f"{truncated} of {samples.size} runs for {label!r} hit their "
                "cycle budget before completing, so their execution times are "
                "meaningless; increase max_cycles or shrink the workload "
                "(or pass allow_truncated=True to aggregate anyway)"
            )
        aggregated[label] = AggregatedRuns(
            label=label,
            samples=samples,
            metrics=tuple(metrics),
            payloads=tuple(payloads),
            truncated_runs=truncated,
        )
    return aggregated
