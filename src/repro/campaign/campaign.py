"""The campaign orchestrator.

:class:`Campaign` turns a flat list of :class:`~repro.campaign.jobs.CampaignJob`
into results: it deduplicates jobs that share a content hash (cross-experiment
reuse), skips jobs already present in the artifact store when resuming,
dispatches the remainder through the configured executor, persists each
result as it lands, and reports progress.

Experiments express their runs as jobs, call :meth:`Campaign.run`, and fold
the returned ``job_id -> JobResult`` mapping back into their own result
shapes with :func:`aggregate_by_label`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..obs.exporters import write_metrics
from ..obs.profiler import CampaignProfiler
from ..obs.registry import MetricsRegistry
from ..sim.errors import ConfigurationError
from .executor import Executor, SerialExecutor
from .jobs import CampaignJob, JobResult
from .progress import NullProgress
from .resilience import JobFailure, ResilienceSummary, RetryPolicy
from .store import ArtifactStore

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .faults import FaultPlan

__all__ = ["AggregatedRuns", "Campaign", "CampaignReport", "aggregate_by_label"]


@dataclass(frozen=True)
class CampaignReport:
    """Accounting for one :meth:`Campaign.run` call.

    The resilience fields summarise what the executor survived: retried
    attempts, worker crashes absorbed by pool rebuilds, hung-job timeouts,
    whether dispatch degraded to serial execution, the poison jobs that were
    quarantined after exhausting their attempts, and store lines the loader
    moved to the quarantine sidecar.
    """

    total_jobs: int
    executed_jobs: int
    reused_jobs: int
    deduplicated_jobs: int
    truncated_runs: int
    retries: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    timeouts: int = 0
    degraded: bool = False
    failures: tuple[JobFailure, ...] = field(default=())
    quarantined_store_lines: int = 0

    @property
    def all_reused(self) -> bool:
        """True when the store satisfied the whole campaign (full resume)."""
        return self.total_jobs > 0 and self.executed_jobs == 0

    @property
    def clean(self) -> bool:
        """True when no fault-tolerance machinery had to engage."""
        return not (
            self.retries
            or self.worker_crashes
            or self.pool_rebuilds
            or self.timeouts
            or self.degraded
            or self.failures
            or self.quarantined_store_lines
        )


@dataclass(frozen=True)
class AggregatedRuns:
    """Per-label aggregation of (possibly block-split) job results.

    ``samples`` is a read-only ``float64`` array — the columnar form the
    vectorised MBPTA analysis layer consumes directly, without tuple/list
    round trips.
    """

    label: str
    samples: np.ndarray
    metrics: tuple[dict[str, float], ...]
    payloads: tuple[object, ...]
    truncated_runs: int = 0

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    def metric_mean(self, name: str) -> float:
        """Average one per-run side-metric over every run of the label."""
        values = [m[name] for m in self.metrics if name in m]
        if not values:
            raise KeyError(f"metric {name!r} was not recorded for {self.label!r}")
        return sum(values) / len(values)


class Campaign:
    """Expand, dispatch, persist and aggregate campaign jobs."""

    def __init__(
        self,
        executor: Executor | None = None,
        store: ArtifactStore | None = None,
        resume: bool = False,
        progress: NullProgress | None = None,
        profiler: CampaignProfiler | None = None,
        metrics_path: str | Path | None = None,
        retry_policy: RetryPolicy | None = None,
        job_timeout: float | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        if resume and store is None:
            raise ConfigurationError("resuming requires an artifact store")
        self.executor = executor if executor is not None else SerialExecutor()
        self.store = store
        self.resume = resume
        self.progress = progress if progress is not None else NullProgress()
        #: Optional per-phase wall-clock profiler; handed to the executor so
        #: both ends of the dispatch loop charge the same instance.
        self.profiler = profiler
        if profiler is not None:
            self.executor.profiler = profiler
        # Resilience knobs are attached to the executor (which owns dispatch);
        # passing them here merely saves callers from configuring both.
        if retry_policy is not None:
            self.executor.retry_policy = retry_policy
        if job_timeout is not None:
            self.executor.job_timeout = job_timeout
        if fault_plan is not None:
            self.executor.fault_plan = fault_plan
        self.executor.reporter = self.progress
        #: When set, a labelled metrics registry built from every job result
        #: is exported here after each :meth:`run` (.prom/.txt for Prometheus
        #: text, anything else JSONL).
        self.metrics_path = Path(metrics_path) if metrics_path is not None else None
        self.last_report: CampaignReport | None = None

    def run(self, jobs: Sequence[CampaignJob]) -> dict[str, JobResult]:
        """Execute ``jobs`` and return results keyed by job ID.

        Jobs with equal content hashes are executed once; when resuming,
        jobs whose ID is already in the store are served from it without
        re-execution.  Fresh results are appended to the store (when one is
        configured) as they complete, so an interrupted campaign can resume
        from exactly where it stopped.
        """
        unique: dict[str, CampaignJob] = {}
        for job in jobs:
            unique.setdefault(job.job_id, job)

        results: dict[str, JobResult] = {}
        pending: list[CampaignJob] = []
        for job_id, job in unique.items():
            cached = self.store.get(job_id) if (self.store and self.resume) else None
            if cached is not None:
                results[job_id] = cached
            else:
                pending.append(job)

        profiler = self.profiler
        self.progress.start(total=len(unique), skipped=len(results))
        if profiler is not None:
            profiler.start(jobs=len(pending), workers=self.executor.workers)
        # Hold the advisory store lock for the whole campaign so a second
        # campaign pointed at the same store fails fast instead of
        # interleaving appends with this one.
        store_lock = self.store.locked() if self.store is not None else nullcontext()
        with store_lock:
            for result in self.executor.execute(pending):
                if self.store is not None:
                    if profiler is not None:
                        with profiler.phase("store"):
                            self.store.put(result)
                    else:
                        self.store.put(result)
                results[result.job_id] = result
                self.progress.advance(label=result.label)
        if profiler is not None:
            profiler.finish()
            self.progress.report_profile(profiler)
        self.progress.finish()

        resilience = self.executor.last_resilience or ResilienceSummary()
        self.last_report = CampaignReport(
            total_jobs=len(unique),
            executed_jobs=len(pending),
            reused_jobs=len(unique) - len(pending),
            deduplicated_jobs=len(jobs) - len(unique),
            truncated_runs=sum(r.truncated_runs for r in results.values()),
            retries=resilience.retries,
            worker_crashes=resilience.worker_crashes,
            pool_rebuilds=resilience.pool_rebuilds,
            timeouts=resilience.timeouts,
            degraded=resilience.degraded,
            failures=tuple(resilience.failures),
            quarantined_store_lines=(
                self.store.quarantined_lines if self.store is not None else 0
            ),
        )
        if self.metrics_path is not None:
            write_metrics(
                self._metrics_registry(
                    results,
                    self.last_report,
                    batch_stats=getattr(self.executor, "last_batch_stats", None),
                ),
                self.metrics_path,
            )
        return results

    @staticmethod
    def _metrics_registry(
        results: Mapping[str, JobResult],
        report: "CampaignReport | None" = None,
        batch_stats: Mapping[str, object] | None = None,
    ) -> MetricsRegistry:
        """Fold every job result into a labelled campaign-level registry.

        Job counters, run samples and every per-run side-metric (including
        the cores' batch-interpreter counters) become one series per
        ``(label, scenario)`` pair, mergeable across campaigns.  The parallel
        executor's batched-dispatch accounting (batch count, worker cache
        hits) rides along as ``campaign.dispatch.*`` counters.
        """
        registry = MetricsRegistry()
        for result in results.values():
            labels = {"label": result.label, "scenario": result.scenario}
            registry.counter("campaign.jobs", **labels).increment()
            registry.counter("campaign.runs", **labels).increment(result.num_runs)
            registry.counter("campaign.truncated_runs", **labels).increment(
                result.truncated_runs
            )
            registry.sample("campaign.job_seconds", **labels).add(
                result.elapsed_seconds
            )
            samples = registry.sample("campaign.samples", **labels)
            for value in result.samples:
                samples.add(value)
            for run_metrics in result.metrics:
                for name, value in run_metrics.items():
                    registry.sample(f"campaign.{name}", **labels).add(value)
        if report is not None:
            registry.counter("campaign.retries").increment(report.retries)
            registry.counter("campaign.worker_crashes").increment(
                report.worker_crashes
            )
            registry.counter("campaign.pool_rebuilds").increment(report.pool_rebuilds)
            registry.counter("campaign.job_timeouts").increment(report.timeouts)
            registry.counter("campaign.degradations").increment(int(report.degraded))
            registry.counter("campaign.quarantined_jobs").increment(
                len(report.failures)
            )
            registry.counter("campaign.quarantined_store_lines").increment(
                report.quarantined_store_lines
            )
        if batch_stats:
            for name, value in batch_stats.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    continue  # derived ratios stay in the profiler artifact
                registry.counter(f"campaign.dispatch.{name}").increment(value)
        return registry


def aggregate_by_label(
    jobs: Sequence[CampaignJob],
    results: Mapping[str, JobResult],
    allow_truncated: bool = False,
) -> dict[str, AggregatedRuns]:
    """Merge per-block results back into one record per job label.

    Blocks are concatenated in ``run_start`` order, so the aggregated sample
    vector is identical to what a single sequential loop over the run indices
    would have produced — regardless of executor, worker count or completion
    order.

    A run that hit its cycle budget before completing produced no execution
    time (its sample is 0), so by default any truncated run is an error —
    the same contract the scenario runners enforce outside campaigns.  Pass
    ``allow_truncated=True`` to aggregate anyway and inspect
    :attr:`AggregatedRuns.truncated_runs` yourself.
    """
    by_label: dict[str, list[CampaignJob]] = {}
    for job in jobs:
        by_label.setdefault(job.label, []).append(job)

    aggregated: dict[str, AggregatedRuns] = {}
    for label, label_jobs in by_label.items():
        sample_blocks: list[np.ndarray] = []
        metrics: list[dict[str, float]] = []
        payloads: list[object] = []
        truncated = 0
        seen: set[str] = set()
        for job in sorted(label_jobs, key=lambda j: j.run_start):
            if job.job_id in seen:  # identical duplicate within one label
                continue
            seen.add(job.job_id)
            try:
                result = results[job.job_id]
            except KeyError:
                raise ConfigurationError(
                    f"no result for job {job.job_id} ({label!r}); "
                    "was the campaign interrupted?"
                ) from None
            sample_blocks.append(result.samples_array)
            metrics.extend(result.metrics)
            payloads.extend(result.payloads)
            truncated += result.truncated_runs
        samples = (
            np.concatenate(sample_blocks)
            if sample_blocks
            else np.empty(0, dtype=np.float64)
        )
        samples.setflags(write=False)
        if truncated and not allow_truncated:
            raise ConfigurationError(
                f"{truncated} of {samples.size} runs for {label!r} hit their "
                "cycle budget before completing, so their execution times are "
                "meaningless; increase max_cycles or shrink the workload "
                "(or pass allow_truncated=True to aggregate anyway)"
            )
        aggregated[label] = AggregatedRuns(
            label=label,
            samples=samples,
            metrics=tuple(metrics),
            payloads=tuple(payloads),
            truncated_runs=truncated,
        )
    return aggregated
