"""Chunked job batches: the amortised unit of parallel dispatch.

One-future-per-job dispatch pays worker spawn, pickling and result transfer
per *job*, which swamps the now-fast per-run simulation (the
``speedup_pool_vs_serial < 1`` mystery the PR 6 profiler pinned down).  This
module provides the batched alternative:

* :class:`JobContext` — everything the jobs of one campaign/platform point
  share (scenario, seed, workload, config, options...).  The parent pickles
  it **once** per unique context (pickle protocol 5) and re-sends the same
  ``bytes`` blob with every batch, so repeated grid labels never re-serialise
  their workload/config object graphs.
* :class:`JobBatch` — one context blob plus a compact per-job parameter
  table (ids, labels, run starts, run counts, attempt numbers).  One pickle
  round-trip dispatches the whole chunk.
* :func:`run_batch` — the worker entry point.  Warm workers keep a
  process-global cache of deserialised contexts keyed by content hash, so a
  context blob is unpickled once per worker, not once per batch; the
  workload layer's deterministic-trace column cache
  (:func:`repro.workloads.base.enable_trace_column_cache`) is switched on at
  worker start so repeated materialisations of draw-free traces are served
  from cached columns.
* :class:`BatchResult` — the columnar return trip: all samples of the batch
  as one ``float64`` array (optionally via ``multiprocessing.shared_memory``
  when the column is large enough to win), per-run metrics as named columns,
  and per-job boundaries recovered from the run counts.  :meth:`~
  BatchResult.split` folds it back into the per-job
  :class:`~repro.campaign.jobs.JobResult` records the store and the resume
  protocol require — bit-identical to what per-job dispatch produced.

Fault semantics at batch granularity: jobs execute in table order inside the
worker; an injected (or genuine) per-job exception stops the batch and the
result carries the completed prefix, the failing index and the *pickled
original exception*, so the executor can charge the culprit and requeue the
untouched suffix.  Injected worker crashes ``os._exit`` mid-batch exactly
like a segfault would, and hangs stall the batch until the executor's batch
deadline kills the pool.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..workloads.base import enable_trace_column_cache, trace_column_cache_stats
from .jobs import CampaignJob, JobResult, run_job

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .faults import FaultPlan

__all__ = [
    "BatchResult",
    "JobBatch",
    "JobContext",
    "batch_jobs",
    "run_batch",
]

#: Out-of-band-buffer-capable protocol used for context blobs and results.
PICKLE_PROTOCOL = 5

#: Contexts kept per worker before the oldest is evicted (a campaign grid
#: rarely has more than a handful of distinct platform points).
CONTEXT_CACHE_SIZE = 64

#: Below this many sample bytes a shared-memory segment costs more than the
#: pickle round-trip it saves; executors pass their own threshold through.
DEFAULT_SHM_MIN_BYTES = 1 << 20


@dataclass(frozen=True)
class JobContext:
    """The fields a chunk of jobs shares — sent once, cached per worker."""

    scenario: str
    seed: int
    workload: object
    config: object
    options: tuple
    tua_core: int
    max_cycles: int

    @classmethod
    def from_job(cls, job: CampaignJob) -> "JobContext":
        return cls(
            scenario=job.scenario,
            seed=job.seed,
            workload=job.workload,
            config=job.config,
            options=job.options,
            tua_core=job.tua_core,
            max_cycles=job.max_cycles,
        )

    def rebuild(self, label: str, run_start: int, num_runs: int) -> CampaignJob:
        """Reconstruct the full job for one row of a batch's parameter table."""
        return CampaignJob(
            label=label,
            scenario=self.scenario,
            seed=self.seed,
            run_start=run_start,
            num_runs=num_runs,
            workload=self.workload,  # type: ignore[arg-type]
            config=self.config,  # type: ignore[arg-type]
            options=self.options,
            tua_core=self.tua_core,
            max_cycles=self.max_cycles,
        )


def pickle_context(context: JobContext) -> tuple[str, bytes]:
    """Serialise ``context`` once; returns ``(content_key, blob)``.

    The key is a hash of the blob itself: the parent computes it, workers
    only ever use the transmitted key, so it merely has to be collision-free
    within one campaign — no cross-process pickle determinism is assumed.
    """
    blob = pickle.dumps(context, protocol=PICKLE_PROTOCOL)
    key = hashlib.blake2b(blob, digest_size=16).hexdigest()
    return key, blob


@dataclass(frozen=True)
class JobBatch:
    """One dispatch unit: a shared context plus a per-job parameter table."""

    context_key: str
    #: The pre-pickled :class:`JobContext`.  Re-submitting the same ``bytes``
    #: object is a memcpy for the pool's pickler — the object graph behind it
    #: is serialised once per campaign, not once per batch.
    context_blob: bytes
    job_ids: tuple[str, ...]
    labels: tuple[str, ...]
    run_starts: tuple[int, ...]
    num_runs: tuple[int, ...]
    attempts: tuple[int, ...]
    #: Minimum sample-column size (bytes) for the shared-memory return path.
    shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES

    def __len__(self) -> int:
        return len(self.job_ids)


def batch_jobs(
    jobs: Sequence[tuple[CampaignJob, int]],
    context_key: str,
    context_blob: bytes,
    shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
) -> JobBatch:
    """Pack ``(job, attempt)`` pairs sharing one context into a batch."""
    return JobBatch(
        context_key=context_key,
        context_blob=context_blob,
        job_ids=tuple(job.job_id for job, _ in jobs),
        labels=tuple(job.label for job, _ in jobs),
        run_starts=tuple(job.run_start for job, _ in jobs),
        num_runs=tuple(job.num_runs for job, _ in jobs),
        attempts=tuple(attempt for _, attempt in jobs),
        shm_min_bytes=shm_min_bytes,
    )


@dataclass
class BatchResult:
    """The columnar return trip of one executed (or partly executed) batch.

    ``completed`` jobs form a prefix of the batch's table; their samples are
    concatenated into one ``float64`` column (``num_runs`` recovers the
    per-job boundaries).  Per-run metrics travel as named columns when every
    run produced the same scalar keys (the platform scenarios always do) and
    fall back to plain per-run dicts otherwise.  A per-job exception leaves
    ``failed_index`` pointing at the culprit and ``failure_blob`` carrying
    the pickled original exception; rows after the culprit were never
    started.
    """

    context_key: str
    job_ids: tuple[str, ...]
    labels: tuple[str, ...]
    scenario: str
    run_starts: tuple[int, ...]
    num_runs: tuple[int, ...]
    completed: int
    samples: np.ndarray | None
    metric_names: tuple[str, ...] | None
    metric_columns: tuple[np.ndarray, ...] | None
    metrics_rows: tuple[dict, ...] | None
    payloads: tuple
    truncated: tuple[int, ...]
    elapsed: tuple[float, ...]
    #: Worker-side cache accounting, folded into the profiler's counters.
    context_cache_hit: bool = False
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0
    #: Shared-memory transport of the sample column (large batches only).
    shm_name: str | None = None
    shm_length: int = 0
    failed_index: int | None = None
    failure_blob: bytes | None = None
    failure_message: str = ""

    # ------------------------------------------------------------------
    def adopt_samples(self) -> np.ndarray:
        """The batch's sample column, fetched from shared memory if needed.

        Called once by the parent; attaching copies the column out and
        unlinks the segment, so nothing leaks past the fold.
        """
        if self.samples is not None:
            return self.samples
        if self.shm_name is None:
            self.samples = np.empty(0, dtype=np.float64)
            return self.samples
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=self.shm_name)
        try:
            view = np.ndarray((self.shm_length,), dtype=np.float64, buffer=segment.buf)
            self.samples = view.copy()
        finally:
            segment.close()
            segment.unlink()
            self.shm_name = None
        return self.samples

    def failure_exception(self) -> BaseException:
        """The original exception the culprit job raised, re-materialised."""
        if self.failure_blob is not None:
            try:
                exc = pickle.loads(self.failure_blob)
            except Exception:  # unpicklable custom exception: degrade to message
                exc = None
            if isinstance(exc, BaseException):
                return exc
        return RuntimeError(self.failure_message or "batched job failed")

    def split(self) -> list[JobResult]:
        """Fold the columnar batch back into per-job results (completed only)."""
        samples = self.adopt_samples()
        results: list[JobResult] = []
        offset = 0
        for index in range(self.completed):
            runs = self.num_runs[index]
            block = samples[offset : offset + runs]
            if self.metric_columns is not None and self.metric_names is not None:
                metrics = tuple(
                    {
                        name: float(column[offset + run])
                        for name, column in zip(self.metric_names, self.metric_columns, strict=True)
                    }
                    for run in range(runs)
                )
            elif self.metrics_rows is not None:
                metrics = tuple(self.metrics_rows[offset : offset + runs])
            else:
                metrics = ()
            results.append(
                JobResult(
                    job_id=self.job_ids[index],
                    label=self.labels[index],
                    scenario=self.scenario,
                    run_start=self.run_starts[index],
                    num_runs=runs,
                    samples=tuple(block.tolist()),
                    metrics=metrics,
                    truncated_runs=self.truncated[index],
                    payloads=tuple(self.payloads[offset : offset + runs]),
                    elapsed_seconds=self.elapsed[index],
                )
            )
            offset += runs
        return results


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker cache of deserialised contexts, keyed by content hash.
_CONTEXT_CACHE: dict[str, JobContext] = {}


def init_batch_worker() -> None:
    """Pool initializer: arm the per-worker caches.

    The deterministic-trace column cache only ever changes *worker* memory —
    cached columns replay draw-free streams, and the workload stream is
    private per core — so enabling it here keeps the parent process (and the
    serial executor) byte-for-byte untouched.
    """
    enable_trace_column_cache(True)


def _context_for(batch: JobBatch) -> tuple[JobContext, bool]:
    """Fetch (or unpickle and cache) the batch's context; True on cache hit."""
    context = _CONTEXT_CACHE.get(batch.context_key)
    if context is not None:
        return context, True
    context = pickle.loads(batch.context_blob)
    while len(_CONTEXT_CACHE) >= CONTEXT_CACHE_SIZE:
        _CONTEXT_CACHE.pop(next(iter(_CONTEXT_CACHE)))
    _CONTEXT_CACHE[batch.context_key] = context
    return context, False


def _pack_metrics(
    rows: list[dict],
) -> tuple[tuple[str, ...] | None, tuple[np.ndarray, ...] | None, tuple[dict, ...] | None]:
    """Columnarise per-run metrics when every run shares the same scalar keys."""
    if not rows:
        return None, None, None
    names = tuple(rows[0])
    uniform = all(
        tuple(row) == names
        and all(isinstance(value, (int, float)) for value in row.values())
        for row in rows
    )
    if not uniform:
        return None, None, tuple(rows)
    columns = tuple(
        np.array([row[name] for row in rows], dtype=np.float64) for name in names
    )
    return names, columns, None


def _export_samples(
    samples: np.ndarray, shm_min_bytes: int
) -> tuple[np.ndarray | None, str | None, int]:
    """Move a large sample column into shared memory; small ones ride the pipe."""
    if shm_min_bytes < 0 or samples.nbytes < max(shm_min_bytes, 1):
        return samples, None, 0
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=samples.nbytes)
    except (ImportError, OSError):  # no /dev/shm: fall back to the pipe
        return samples, None, 0
    try:
        view = np.ndarray(samples.shape, dtype=np.float64, buffer=segment.buf)
        view[:] = samples
    except BaseException:
        # Copy failed: reclaim the segment here — the parent never learns its
        # name, so nobody else can, and a leak would outlive the process.
        segment.close()
        segment.unlink()
        raise
    name = segment.name
    segment.close()  # the parent unlinks after adopting
    return None, name, int(samples.size)


def run_batch(batch: JobBatch, plan: "FaultPlan | None" = None) -> BatchResult:
    """Execute a batch's jobs in table order inside a (warm) worker.

    Each row goes through exactly the code path per-job dispatch used —
    :func:`~repro.campaign.jobs.run_job`, wrapped by the fault injector when
    a plan is configured — so the per-job results are bit-identical to
    unbatched execution; only the transport is columnar.
    """
    context, cache_hit = _context_for(batch)
    trace_hits_before, trace_misses_before = trace_column_cache_stats()
    job_results: list[JobResult] = []
    failure_blob: bytes | None = None
    failure_message = ""
    failed_index: int | None = None
    for index in range(len(batch)):
        job = context.rebuild(
            batch.labels[index], batch.run_starts[index], batch.num_runs[index]
        )
        # Seed the content hash from the table: the parent keys everything by
        # these ids, and recomputing the canonical-JSON digest per job would
        # re-pay what batching just amortised.
        job.__dict__["job_id"] = batch.job_ids[index]
        try:
            if plan is None:
                result = run_job(job)
            else:
                from .faults import run_job_with_faults

                result = run_job_with_faults(job, batch.attempts[index], plan)
        except Exception as exc:
            failed_index = index
            failure_message = f"{type(exc).__name__}: {exc}"
            try:
                failure_blob = pickle.dumps(exc, protocol=PICKLE_PROTOCOL)
            except Exception:
                failure_blob = None
            break
        job_results.append(result)

    trace_hits_after, trace_misses_after = trace_column_cache_stats()
    completed = len(job_results)
    if job_results:
        samples = np.concatenate([result.samples_array for result in job_results])
    else:
        samples = np.empty(0, dtype=np.float64)
    metric_rows = [dict(metrics) for result in job_results for metrics in result.metrics]
    metric_names, metric_columns, metrics_rows = _pack_metrics(metric_rows)
    payloads = tuple(
        payload for result in job_results for payload in result.payloads
    )
    samples_inline, shm_name, shm_length = _export_samples(samples, batch.shm_min_bytes)
    elapsed = tuple(result.elapsed_seconds for result in job_results)
    return BatchResult(
        context_key=batch.context_key,
        job_ids=batch.job_ids,
        labels=batch.labels,
        scenario=context.scenario,
        run_starts=batch.run_starts,
        num_runs=tuple(batch.num_runs),
        completed=completed,
        samples=samples_inline,
        metric_names=metric_names,
        metric_columns=metric_columns,
        metrics_rows=metrics_rows,
        payloads=payloads,
        truncated=tuple(result.truncated_runs for result in job_results),
        elapsed=elapsed,
        context_cache_hit=cache_hit,
        trace_cache_hits=trace_hits_after - trace_hits_before,
        trace_cache_misses=trace_misses_after - trace_misses_before,
        shm_name=shm_name,
        shm_length=shm_length,
        failed_index=failed_index,
        failure_blob=failure_blob,
        failure_message=failure_message,
    )
