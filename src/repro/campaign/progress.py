"""Throttled progress and ETA reporting for campaigns.

The reporter is deliberately tiny: it never touches the terminal beyond
writing complete lines to the given stream (so output composes with pipes,
CI logs and pytest capture), and it rate-limits itself so million-job
campaigns do not drown their own output.
"""

from __future__ import annotations

# repro-lint: allow-file[DET001] — throughput and ETA lines are wall-clock
# telemetry for the operator; nothing here feeds results or seeds.

import sys
import time
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..obs.profiler import CampaignProfiler

__all__ = ["NullProgress", "ProgressReporter"]


class NullProgress:
    """The no-op reporter used when nobody is watching."""

    def start(self, total: int, skipped: int = 0) -> None:
        """Begin a campaign of ``total`` jobs (``skipped`` already done)."""

    def advance(self, label: str = "") -> None:
        """Record one completed job."""

    def retry(
        self, label: str, attempt: int, max_attempts: int, kind: str, delay: float
    ) -> None:
        """A job failed (``kind``) and will run attempt ``attempt`` after ``delay``."""

    def quarantine(self, label: str, attempt: int, kind: str) -> None:
        """A poison job exhausted its attempts and was quarantined."""

    def degrade(self, pool_failures: int) -> None:
        """The parallel executor fell back to serial in-process execution."""

    def report_profile(self, profiler: "CampaignProfiler") -> None:
        """Summarise a campaign phase profile (no-op)."""

    def finish(self) -> None:
        """The campaign is over."""


class ProgressReporter(NullProgress):
    """Print ``completed/total`` lines with a simple rate-based ETA.

    A line is emitted at most every ``min_interval`` seconds (plus one final
    summary), so the report cost stays constant no matter how many jobs the
    campaign has.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        min_interval: float = 1.0,
        prefix: str = "campaign",
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.prefix = prefix
        self._total = 0
        self._skipped = 0
        self._completed = 0
        self._started_at = 0.0
        self._last_report = 0.0

    # ------------------------------------------------------------------
    def start(self, total: int, skipped: int = 0) -> None:
        self._total = total
        self._skipped = skipped
        self._completed = 0
        self._started_at = time.monotonic()
        # Throttle from the campaign start, not from the epoch of the
        # monotonic clock: with a 0.0 sentinel the first advance() emitted
        # unconditionally once the host's uptime exceeded min_interval.
        self._last_report = self._started_at
        if skipped:
            self._emit(
                f"[{self.prefix}] resuming: {skipped}/{total} jobs already in the store"
            )

    def advance(self, label: str = "") -> None:
        self._completed += 1
        now = time.monotonic()
        if now - self._last_report < self.min_interval:
            return
        self._last_report = now
        self._emit(self._format_line(now, label))

    def retry(
        self, label: str, attempt: int, max_attempts: int, kind: str, delay: float
    ) -> None:
        # Failures are rare and load-bearing: report them unthrottled.
        backoff = f", backoff {delay:.2f}s" if delay else ""
        self._emit(
            f"[{self.prefix}] retry {label}: {kind}, "
            f"attempt {attempt}/{max_attempts}{backoff}"
        )

    def quarantine(self, label: str, attempt: int, kind: str) -> None:
        self._emit(
            f"[{self.prefix}] quarantined {label} after "
            f"{attempt} attempt{'s' if attempt != 1 else ''} ({kind})"
        )

    def degrade(self, pool_failures: int) -> None:
        self._emit(
            f"[{self.prefix}] degraded to serial execution after "
            f"{pool_failures} consecutive worker-pool failures"
        )

    def report_profile(self, profiler: "CampaignProfiler") -> None:
        phases = ", ".join(
            f"{phase} {profiler.seconds[phase]:.2f}s" for phase in profiler.PHASES
        )
        self._emit(
            f"[{self.prefix}] profile: wall {profiler.wall_seconds:.2f}s, "
            f"{profiler.coverage:.0%} attributed ({phases})"
        )
        if profiler.counters:
            counters = ", ".join(
                f"{name} {value}" for name, value in sorted(profiler.counters.items())
            )
            self._emit(f"[{self.prefix}] dispatch: {counters}")

    def finish(self) -> None:
        if not self._total:
            return
        elapsed = time.monotonic() - self._started_at
        executed = self._completed
        self._emit(
            f"[{self.prefix}] done: {executed} jobs executed, "
            f"{self._skipped} reused from store, {elapsed:.1f}s elapsed"
        )

    # ------------------------------------------------------------------
    def _format_line(self, now: float, label: str) -> str:
        done = self._skipped + self._completed
        elapsed = now - self._started_at
        remaining = self._total - done
        if self._completed and remaining > 0:
            eta = elapsed / self._completed * remaining
            eta_text = f", eta {eta:.1f}s"
        else:
            eta_text = ""
        percent = 100.0 * done / self._total if self._total else 100.0
        suffix = f" ({label})" if label else ""
        return (
            f"[{self.prefix}] {done}/{self._total} jobs ({percent:.0f}%), "
            f"{elapsed:.1f}s elapsed{eta_text}{suffix}"
        )

    def _emit(self, line: str) -> None:
        try:
            self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):  # closed stream; reporting is best-effort
            pass
