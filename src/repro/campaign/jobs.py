"""Declarative campaign jobs.

A :class:`CampaignJob` is the unit of work the campaign engine schedules: a
block of randomised runs of one *scenario* on one (workload, platform
configuration) point, starting at a given run index.  Jobs are frozen
dataclasses so they can be

* **hashed** — :attr:`CampaignJob.job_id` is a stable content hash over every
  field that determines the results, which keys the artifact store and makes
  campaigns resumable and results reusable across experiments;
* **pickled** — the parallel executor ships jobs to worker processes;
* **replayed** — :func:`run_job` re-derives every random stream from
  ``(seed, run_index)`` exactly like the hand-rolled experiment loops did,
  so a job produces bit-identical samples no matter where or in what order
  it executes.

Scenarios are referenced *by name* and resolved lazily through
:data:`SCENARIO_RUNNERS` (entries are ``"module:callable"`` strings), which
keeps this module import-light and lets experiment modules contribute their
own runners without circular imports.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field, replace
from functools import cached_property
from importlib import import_module
from typing import Callable, Mapping

import numpy as np

from ..sim.config import PlatformConfig
from ..sim.errors import ConfigurationError
from ..workloads.base import WorkloadSpec

__all__ = [
    "CampaignJob",
    "JobResult",
    "RunOutcome",
    "SCENARIO_RUNNERS",
    "register_scenario",
    "resolve_scenario",
    "run_job",
    "seed_block_jobs",
]


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------
#: Scenario name -> ``"module:callable"`` (resolved lazily) or a callable.
#: A runner has signature ``runner(job, run_index) -> RunOutcome``.
SCENARIO_RUNNERS: dict[str, str | Callable] = {
    "isolation": "repro.campaign.jobs:_run_isolation",
    "max_contention": "repro.campaign.jobs:_run_max_contention",
    "wcet_estimation": "repro.campaign.jobs:_run_wcet_estimation",
    "mixed_criticality": "repro.campaign.jobs:_run_mixed_criticality",
    "illustrative": "repro.experiments.illustrative:campaign_runner",
    "table1": "repro.experiments.table1:campaign_runner",
    "overheads": "repro.experiments.overheads:campaign_runner",
}


def register_scenario(name: str, runner: str | Callable) -> None:
    """Register (or override) a scenario runner under ``name``.

    ``runner`` is either a callable ``(job, run_index) -> RunOutcome`` or a
    ``"module:callable"`` string resolved on first use (the string form is
    what worker processes need, since they import rather than inherit state).
    """
    SCENARIO_RUNNERS[name] = runner


def resolve_scenario(name: str) -> Callable:
    """Return the runner callable for scenario ``name``."""
    try:
        runner = SCENARIO_RUNNERS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_RUNNERS))
        raise ConfigurationError(
            f"unknown campaign scenario {name!r}; known scenarios: {known}"
        ) from None
    if callable(runner):
        return runner
    module_name, _, attr = runner.partition(":")
    resolved = getattr(import_module(module_name), attr)
    SCENARIO_RUNNERS[name] = resolved
    return resolved


# ----------------------------------------------------------------------
# Job and result records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunOutcome:
    """What one run of a scenario produced."""

    #: The primary observation (execution cycles of the task under analysis).
    value: float
    #: Scalar side-metrics of the run (bandwidth share, contender throughput).
    metrics: dict[str, float] = field(default_factory=dict)
    #: True when the run hit its cycle budget before completing.
    truncated: bool = False
    #: Optional JSON-serialisable rich result (used by the analysis-style
    #: experiments to reconstruct their full result objects on resume).
    payload: object | None = None


@dataclass(frozen=True)
class CampaignJob:
    """A block of randomised runs of one scenario on one configuration point.

    ``label`` and nothing else is presentation: it names the job in progress
    output and lets experiments group results.  Every other field feeds the
    content hash, so two jobs with equal physics share one :attr:`job_id`
    (and therefore one artifact-store entry) even across experiments.
    """

    label: str
    scenario: str
    seed: int = 0
    #: First run index of the block; per-run random streams are derived from
    #: ``(seed, run_index)``, never from worker identity or execution order.
    run_start: int = 0
    num_runs: int = 1
    workload: WorkloadSpec | None = None
    config: PlatformConfig | None = None
    #: Scenario-specific knobs as a sorted tuple of (name, value) pairs.
    options: tuple[tuple[str, object], ...] = ()
    tua_core: int = 0
    max_cycles: int = 5_000_000

    def __post_init__(self) -> None:
        if self.num_runs <= 0:
            raise ConfigurationError("a campaign job needs at least one run")
        if self.run_start < 0:
            raise ConfigurationError("run_start cannot be negative")
        object.__setattr__(self, "options", tuple(sorted(self.options)))

    @property
    def options_dict(self) -> dict[str, object]:
        return dict(self.options)

    @property
    def run_indices(self) -> range:
        return range(self.run_start, self.run_start + self.num_runs)

    @cached_property
    def job_id(self) -> str:
        """Stable content hash over everything that determines the results.

        Cached per instance (the frozen dataclass keeps a plain ``__dict__``,
        so :func:`~functools.cached_property` works and the cached digest
        travels with the pickle): dispatch, dedup, store keys and fault-plan
        decisions all hash the same job many times, and the canonical-JSON
        digest is not free.  ``with_updates`` builds a new instance, so a
        modified job never inherits a stale hash.
        """
        spec = {
            "scenario": self.scenario,
            "seed": self.seed,
            "run_start": self.run_start,
            "num_runs": self.num_runs,
            "workload": asdict(self.workload) if self.workload else None,
            "config": asdict(self.config) if self.config else None,
            "options": [[k, v] for k, v in self.options],
            "tua_core": self.tua_core,
            "max_cycles": self.max_cycles,
        }
        digest = hashlib.blake2b(
            json.dumps(spec, sort_keys=True, default=_json_fallback).encode("utf-8"),
            digest_size=16,
        )
        return digest.hexdigest()

    def with_updates(self, **kwargs: object) -> "CampaignJob":
        """Return a copy of the job with fields replaced."""
        return replace(self, **kwargs)


def _json_fallback(value: object) -> object:
    """Canonicalise non-JSON values (enums, fractions) for hashing."""
    if hasattr(value, "value"):  # Enum members
        return value.value
    return str(value)


@dataclass(frozen=True)
class JobResult:
    """The persisted outcome of one executed job."""

    job_id: str
    label: str
    scenario: str
    run_start: int
    num_runs: int
    samples: tuple[float, ...]
    metrics: tuple[dict[str, float], ...] = ()
    truncated_runs: int = 0
    payloads: tuple[object, ...] = ()
    elapsed_seconds: float = 0.0

    @cached_property
    def samples_array(self) -> np.ndarray:
        """The samples as a read-only ``float64`` vector (cached).

        The canonical persisted form stays a tuple (JSON- and
        pickle-friendly); the array view is what the aggregation layer
        concatenates into campaign-level sample vectors.
        """
        array = np.asarray(self.samples, dtype=np.float64)
        array.setflags(write=False)
        return array

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable record for the artifact store."""
        return {
            "job_id": self.job_id,
            "label": self.label,
            "scenario": self.scenario,
            "run_start": self.run_start,
            "num_runs": self.num_runs,
            "samples": list(self.samples),
            "metrics": [dict(m) for m in self.metrics],
            "truncated_runs": self.truncated_runs,
            "payloads": list(self.payloads),
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "JobResult":
        return cls(
            job_id=str(record["job_id"]),
            label=str(record.get("label", "")),
            scenario=str(record.get("scenario", "")),
            run_start=int(record.get("run_start", 0)),
            num_runs=int(record.get("num_runs", len(record["samples"]))),
            samples=tuple(float(x) for x in record["samples"]),
            metrics=tuple(dict(m) for m in record.get("metrics", ())),
            truncated_runs=int(record.get("truncated_runs", 0)),
            payloads=tuple(record.get("payloads", ())),
            elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
        )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_job(job: CampaignJob) -> JobResult:
    """Execute every run of ``job`` and collect a :class:`JobResult`.

    This is the single function both executors call (the parallel one in a
    worker process); all randomness flows from ``(job.seed, run_index)``, so
    the result is independent of where and when the job runs.
    """
    runner = resolve_scenario(job.scenario)
    # Telemetry only: elapsed_seconds is excluded from the stored record CRC
    # path that feeds hashes, and never influences a sample.
    # repro-lint: allow[DET001]
    started = time.perf_counter()
    samples: list[float] = []
    metrics: list[dict[str, float]] = []
    payloads: list[object] = []
    truncated = 0
    for run_index in job.run_indices:
        outcome = runner(job, run_index)
        samples.append(float(outcome.value))
        metrics.append(dict(outcome.metrics))
        payloads.append(outcome.payload)
        truncated += int(outcome.truncated)
    return JobResult(
        job_id=job.job_id,
        label=job.label,
        scenario=job.scenario,
        run_start=job.run_start,
        num_runs=job.num_runs,
        samples=tuple(samples),
        metrics=tuple(metrics),
        truncated_runs=truncated,
        payloads=tuple(payloads),
        elapsed_seconds=time.perf_counter() - started,  # repro-lint: allow[DET001]
    )


def seed_block_jobs(
    label: str,
    scenario: str,
    *,
    seed: int,
    num_runs: int,
    block_size: int = 1,
    **fields: object,
) -> list[CampaignJob]:
    """Split ``num_runs`` runs into contiguous seed-block jobs.

    ``block_size = 1`` (the default) maximises parallelism and makes job IDs
    independent of the worker count, so a store written by ``--jobs 1`` is
    reused verbatim by ``--jobs 8`` and vice versa.
    """
    if num_runs <= 0:
        raise ConfigurationError("num_runs must be positive")
    if block_size <= 0:
        raise ConfigurationError("block_size must be positive")
    jobs = []
    for start in range(0, num_runs, block_size):
        jobs.append(
            CampaignJob(
                label=label,
                scenario=scenario,
                seed=seed,
                run_start=start,
                num_runs=min(block_size, num_runs - start),
                **fields,  # type: ignore[arg-type]
            )
        )
    return jobs


# ----------------------------------------------------------------------
# Built-in platform scenario runners
# ----------------------------------------------------------------------
def _platform_outcome(job: CampaignJob, run_index: int, scenario_fn) -> RunOutcome:
    if job.workload is None or job.config is None:
        raise ConfigurationError(
            f"scenario {job.scenario!r} needs both a workload and a platform config"
        )
    result = scenario_fn(
        job.workload,
        job.config,
        seed=job.seed,
        run_index=run_index,
        tua_core=job.tua_core,
        max_cycles=job.max_cycles,
        allow_truncation=True,
        **job.options_dict,
    )
    contenders = result.system.extra.get("contender_requests", {})
    observability = result.system.observability
    metrics = {
        "total_cycles": float(result.system.total_cycles),
        "tua_bandwidth_share": float(result.system.bandwidth_shares[job.tua_core]),
        "contender_requests": float(sum(int(v) for v in contenders.values())),
        "batched_items": float(observability.get("batched_items", 0)),
        "batch_stretches": float(observability.get("batch_stretches", 0)),
    }
    return RunOutcome(
        value=float(result.tua_cycles), metrics=metrics, truncated=result.truncated
    )


def _run_isolation(job: CampaignJob, run_index: int) -> RunOutcome:
    from ..platform.scenarios import run_isolation

    return _platform_outcome(job, run_index, run_isolation)


def _run_max_contention(job: CampaignJob, run_index: int) -> RunOutcome:
    from ..platform.scenarios import run_max_contention

    return _platform_outcome(job, run_index, run_max_contention)


def _run_wcet_estimation(job: CampaignJob, run_index: int) -> RunOutcome:
    from ..platform.scenarios import run_wcet_estimation

    return _platform_outcome(job, run_index, run_wcet_estimation)


def _run_mixed_criticality(job: CampaignJob, run_index: int) -> RunOutcome:
    from ..platform.scenarios import run_mixed_criticality

    return _platform_outcome(job, run_index, run_mixed_criticality)
