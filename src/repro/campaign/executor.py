"""Pluggable campaign execution backends.

Every backend implements one method — :meth:`Executor.execute` — that maps a
sequence of :class:`~repro.campaign.jobs.CampaignJob` to an iterator of
:class:`~repro.campaign.jobs.JobResult`, yielding results as they complete so
the orchestrator can persist and report progress incrementally.

Determinism contract: a job's result depends only on the job (every random
stream is derived from ``(seed, run_index)`` inside :func:`run_job`), so the
backends are interchangeable — :class:`ParallelExecutor` produces samples
bit-identical to :class:`SerialExecutor`, merely out of order.  Orchestration
code must therefore key results by :attr:`job_id`, never by arrival order.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from time import perf_counter
from typing import Iterator, Sequence

from ..obs.profiler import CampaignProfiler
from ..sim.errors import ConfigurationError
from .jobs import CampaignJob, JobResult, run_job

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "create_executor"]


def _warm_worker() -> None:
    """No-op shipped to every pool worker to force its process to spawn.

    Submitted (and waited for) before the profiled phases start, so worker
    startup cost lands in ``spawn`` instead of inflating the first job's
    ``simulate`` time.
    """


class Executor(ABC):
    """Execution backend interface."""

    #: Worker-process count (1 for in-process backends); used for sizing hints.
    workers: int = 1
    #: Optional per-phase wall-clock profiler, attached by the orchestrator
    #: (:class:`~repro.campaign.campaign.Campaign`).  ``None`` keeps the
    #: execute loops exactly as shipped.
    profiler: CampaignProfiler | None = None

    @abstractmethod
    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        """Run ``jobs`` and yield each :class:`JobResult` as it completes."""


class SerialExecutor(Executor):
    """Run every job in-process, in order — the debuggable baseline."""

    workers = 1

    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        profiler = self.profiler
        if profiler is None:
            for job in jobs:
                yield run_job(job)
            return
        for job in jobs:
            started = perf_counter()
            result = run_job(job)
            profiler.add("simulate", perf_counter() - started)
            yield result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Fan jobs out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Simulation runs are pure CPU-bound Python, so processes (not threads) are
    the right unit.  ``max_in_flight`` bounds the number of submitted-but-
    unfinished futures so million-job campaigns do not materialise their whole
    frontier in memory at once.
    """

    def __init__(self, max_workers: int, max_in_flight: int | None = None) -> None:
        if max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        self.workers = max_workers
        self.max_in_flight = max_in_flight or max(4 * max_workers, 16)

    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        if not jobs:
            return
        if self.profiler is not None:
            yield from self._execute_profiled(jobs, self.profiler)
            return
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            queue = iter(jobs)
            in_flight = set()
            for job in queue:
                in_flight.add(pool.submit(run_job, job))
                if len(in_flight) >= self.max_in_flight:
                    break
            while in_flight:
                done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
                for job in queue:
                    in_flight.add(pool.submit(run_job, job))
                    if len(in_flight) >= self.max_in_flight:
                        break

    def _execute_profiled(
        self, jobs: Sequence[CampaignJob], profiler: CampaignProfiler
    ) -> Iterator[JobResult]:
        """The same dispatch loop with each pool phase timed.

        Identical scheduling to :meth:`execute` (same submissions, same
        FIRST_COMPLETED draining, same bound on in-flight futures) — the
        profiled loop only adds warmup submits (no-ops) and timestamps, so
        results stay bit-identical to the unprofiled path.
        """
        started = perf_counter()
        pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            wait({pool.submit(_warm_worker) for _ in range(self.workers)})
            profiler.add("spawn", perf_counter() - started, count=self.workers)
            queue = iter(jobs)
            in_flight: set = set()

            def refill() -> None:
                submitted = 0
                submit_started = perf_counter()
                for job in queue:
                    in_flight.add(pool.submit(run_job, job))
                    submitted += 1
                    if len(in_flight) >= self.max_in_flight:
                        break
                if submitted:
                    profiler.add(
                        "pickle", perf_counter() - submit_started, count=submitted
                    )

            refill()
            while in_flight:
                wait_started = perf_counter()
                done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
                profiler.add("simulate", perf_counter() - wait_started)
                for future in done:
                    result_started = perf_counter()
                    result = future.result()
                    profiler.add("aggregate", perf_counter() - result_started)
                    yield result
                refill()
        finally:
            shutdown_started = perf_counter()
            pool.shutdown(wait=True)
            profiler.add("spawn", perf_counter() - shutdown_started, count=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(max_workers={self.workers})"


def create_executor(jobs: int | None = None) -> Executor:
    """Build the executor for a ``--jobs N`` request.

    ``jobs=1`` (or ``None``) is serial; ``jobs=0`` means "one worker per
    CPU"; anything above 1 is a process pool of that size.
    """
    if jobs is None or jobs == 1:
        return SerialExecutor()
    if jobs == 0:
        return ParallelExecutor(max_workers=os.cpu_count() or 1)
    if jobs < 0:
        raise ConfigurationError("--jobs cannot be negative")
    return ParallelExecutor(max_workers=jobs)
