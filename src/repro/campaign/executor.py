"""Pluggable campaign execution backends.

Every backend implements one method — :meth:`Executor.execute` — that maps a
sequence of :class:`~repro.campaign.jobs.CampaignJob` to an iterator of
:class:`~repro.campaign.jobs.JobResult`, yielding results as they complete so
the orchestrator can persist and report progress incrementally.

Determinism contract: a job's result depends only on the job (every random
stream is derived from ``(seed, run_index)`` inside :func:`run_job`), so the
backends are interchangeable — :class:`ParallelExecutor` produces samples
bit-identical to :class:`SerialExecutor`, merely out of order.  Orchestration
code must therefore key results by :attr:`job_id`, never by arrival order.

Resilience contract: job purity also makes *re*-execution free of side
effects, which is what lets :class:`ParallelExecutor` survive worker death.
A :class:`~concurrent.futures.process.BrokenProcessPool` is absorbed by
rebuilding the pool and resubmitting the lost in-flight jobs; repeated pool
failures degrade execution to the in-process serial path; a configured
:class:`~repro.campaign.resilience.RetryPolicy` retries transient job
exceptions with seeded backoff and quarantines poison jobs after their
attempt budget; a per-job wall-clock budget (``job_timeout``) kills hung
workers.  With none of those configured the dispatch loop is exactly the
pre-resilience one: plain ``run_job`` submissions, a blocking
``FIRST_COMPLETED`` wait, failures propagated on first sight (after
cancelling the other in-flight futures so an aborting campaign never blocks
on unrelated running jobs).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from time import monotonic, perf_counter, sleep
from typing import TYPE_CHECKING, Iterator, Sequence

from ..obs.profiler import CampaignProfiler
from ..sim.errors import ConfigurationError
from .jobs import CampaignJob, JobResult, run_job
from .resilience import (
    DEFAULT_MAX_POOL_REBUILDS,
    JobFailure,
    JobTimeoutError,
    ResilienceSummary,
    RetryPolicy,
    execute_with_retries,
)

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .faults import FaultPlan
    from .progress import NullProgress

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "create_executor"]


def _warm_worker() -> None:
    """No-op shipped to every pool worker to force its process to spawn.

    Submitted (and waited for) before the profiled phases start, so worker
    startup cost lands in ``spawn`` instead of inflating the first job's
    ``simulate`` time.
    """


class Executor(ABC):
    """Execution backend interface."""

    #: Worker-process count (1 for in-process backends); used for sizing hints.
    workers: int = 1
    #: Optional per-phase wall-clock profiler, attached by the orchestrator
    #: (:class:`~repro.campaign.campaign.Campaign`).  ``None`` keeps the
    #: execute loops exactly as shipped.
    profiler: CampaignProfiler | None = None
    #: Optional retry policy; ``None`` keeps the fail-fast seed behaviour.
    retry_policy: RetryPolicy | None = None
    #: Optional per-job wall-clock budget in seconds (parallel backend only).
    job_timeout: float | None = None
    #: Optional fault-injection plan — chaos testing only, never production.
    fault_plan: "FaultPlan | None" = None
    #: Optional progress reporter for retry/degrade lines (attached by the
    #: orchestrator; duck-typed to :class:`~repro.campaign.progress.NullProgress`).
    reporter: "NullProgress | None" = None
    #: Resilience accounting of the most recent :meth:`execute` call.
    last_resilience: ResilienceSummary | None = None

    @abstractmethod
    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        """Run ``jobs`` and yield each :class:`JobResult` as it completes."""


class SerialExecutor(Executor):
    """Run every job in-process, in order — the debuggable baseline."""

    workers = 1

    def __init__(
        self,
        retry_policy: RetryPolicy | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan

    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        profiler = self.profiler
        summary = ResilienceSummary()
        self.last_resilience = summary
        if profiler is None and self.retry_policy is None and self.fault_plan is None:
            # The seed hot path, byte-for-byte: nothing but run_job calls.
            for job in jobs:
                yield run_job(job)
            return
        for job in jobs:
            started = perf_counter()
            result = execute_with_retries(
                job, self.retry_policy, self.fault_plan, summary, self.reporter
            )
            if profiler is not None:
                profiler.add("simulate", perf_counter() - started)
            if result is not None:
                yield result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class _InFlight:
    """Bookkeeping for one submitted future."""

    __slots__ = ("job", "attempt", "deadline")

    def __init__(self, job: CampaignJob, attempt: int, deadline: float | None) -> None:
        self.job = job
        self.attempt = attempt
        self.deadline = deadline


class ParallelExecutor(Executor):
    """Fan jobs out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Simulation runs are pure CPU-bound Python, so processes (not threads) are
    the right unit.  ``max_in_flight`` bounds the number of submitted-but-
    unfinished futures so million-job campaigns do not materialise their whole
    frontier in memory at once.

    The dispatch loop survives worker death (pool rebuild + resubmission of
    the lost jobs), hung jobs (``job_timeout`` kills the pool's workers and
    requeues), and transient job failures (``retry_policy``); after
    ``max_pool_rebuilds`` consecutive pool failures it degrades to running
    the remaining jobs serially in-process.  Because jobs are pure, none of
    this changes a single sample — only whether they arrive.
    """

    def __init__(
        self,
        max_workers: int,
        max_in_flight: int | None = None,
        retry_policy: RetryPolicy | None = None,
        job_timeout: float | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        if max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        if job_timeout is not None and job_timeout <= 0:
            raise ConfigurationError("job_timeout must be positive")
        self.workers = max_workers
        self.max_in_flight = max_in_flight or max(4 * max_workers, 16)
        self.retry_policy = retry_policy
        self.job_timeout = job_timeout
        self.fault_plan = fault_plan
        #: Futures cancelled while unwinding the most recent execute() call.
        self.last_cancelled = 0

    # ------------------------------------------------------------------
    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        self.last_resilience = ResilienceSummary()
        if not jobs:
            return
        yield from self._execute_core(list(jobs), self.last_resilience)

    # ------------------------------------------------------------------
    # Submission helpers
    # ------------------------------------------------------------------
    def _submit(self, pool: ProcessPoolExecutor, job: CampaignJob, attempt: int):
        """Submit one job attempt — plain ``run_job`` unless chaos is on."""
        if self.fault_plan is None:
            return pool.submit(run_job, job)
        from .faults import run_job_with_faults

        return pool.submit(run_job_with_faults, job, attempt, self.fault_plan)

    def _deadline(self) -> float | None:
        return None if self.job_timeout is None else monotonic() + self.job_timeout

    def _crash_next_attempt(self, job: CampaignJob, attempt: int) -> int:
        """The attempt a job lost to a pool break should resubmit as.

        A broken pool does not say *which* job killed the worker, so without
        further information every lost job is conservatively charged an
        attempt (purity makes the resubmission bit-identical either way).
        Under an injected fault plan the culprit is known exactly, so
        innocent bystanders keep their attempt number — which keeps the
        plan's per-attempt fault schedule (and the chaos accounting built on
        it) deterministic regardless of dispatch timing.
        """
        if self.fault_plan is None:
            return attempt + 1
        from .faults import CRASH

        if self.fault_plan.decide(job.job_id, attempt) == CRASH:
            return attempt + 1
        return attempt

    def _max_pool_rebuilds(self) -> int:
        if self.retry_policy is not None:
            return self.retry_policy.max_pool_rebuilds
        return DEFAULT_MAX_POOL_REBUILDS

    @staticmethod
    def _abandon_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a (broken or hung) pool down without waiting on its workers."""
        processes = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes.values():  # kill hung workers outright
            try:
                process.terminate()
            except (OSError, ValueError):  # pragma: no cover - already dead
                pass

    # ------------------------------------------------------------------
    # The resilient dispatch loop
    # ------------------------------------------------------------------
    def _execute_core(
        self, jobs: list[CampaignJob], summary: ResilienceSummary
    ) -> Iterator[JobResult]:
        profiler = self.profiler
        policy = self.retry_policy
        reporter = self.reporter
        self.last_cancelled = 0

        #: (job, attempt) waiting to be submitted.
        pending: deque[tuple[CampaignJob, int]] = deque((job, 1) for job in jobs)
        #: (ready_at, job, attempt) parked for a backoff delay.
        delayed: list[tuple[float, CampaignJob, int]] = []
        in_flight: dict[Future, _InFlight] = {}
        consecutive_pool_failures = 0

        spawn_started = perf_counter()
        pool = ProcessPoolExecutor(max_workers=self.workers)
        if profiler is not None:
            wait({pool.submit(_warm_worker) for _ in range(self.workers)})
            profiler.add("spawn", perf_counter() - spawn_started, count=self.workers)

        def refill() -> bool:
            """Top the pool up to ``max_in_flight``; True if the pool broke."""
            now = monotonic() if delayed else 0.0
            if delayed:
                matured = [entry for entry in delayed if entry[0] <= now]
                for entry in matured:
                    delayed.remove(entry)
                    pending.append((entry[1], entry[2]))
            submitted = 0
            submit_started = perf_counter() if profiler is not None else 0.0
            try:
                while pending and len(in_flight) < self.max_in_flight:
                    job, attempt = pending.popleft()
                    future = self._submit(pool, job, attempt)
                    in_flight[future] = _InFlight(job, attempt, self._deadline())
                    submitted += 1
            except BrokenProcessPool:
                pending.appendleft((job, attempt))  # the submit that failed
                return True
            finally:
                if profiler is not None and submitted:
                    profiler.add(
                        "pickle", perf_counter() - submit_started, count=submitted
                    )
            return False

        def requeue_lost(next_attempt: bool) -> None:
            """Move every in-flight job back to pending (pool is gone)."""
            for entry in in_flight.values():
                attempt = (
                    self._crash_next_attempt(entry.job, entry.attempt)
                    if next_attempt
                    else entry.attempt
                )
                if (
                    attempt > entry.attempt
                    and policy is not None
                    and not policy.should_retry(entry.attempt)
                ):
                    failure = JobFailure(
                        job_id=entry.job.job_id,
                        label=entry.job.label,
                        scenario=entry.job.scenario,
                        attempt=entry.attempt,
                        kind="worker_crash",
                        message="worker process died repeatedly",
                        fatal=True,
                    )
                    summary.record_quarantine(failure)
                    if reporter is not None:
                        reporter.quarantine(entry.job.label, entry.attempt, failure.kind)
                    continue
                pending.append((entry.job, attempt))
            in_flight.clear()

        def rebuild_pool() -> ProcessPoolExecutor:
            summary.pool_rebuilds += 1
            if profiler is None:
                return ProcessPoolExecutor(max_workers=self.workers)
            started = perf_counter()
            fresh = ProcessPoolExecutor(max_workers=self.workers)
            wait({fresh.submit(_warm_worker) for _ in range(self.workers)})
            profiler.add("spawn", perf_counter() - started, count=self.workers)
            return fresh

        def poll_timeout() -> float | None:
            """How long the wait may block: next deadline or backoff expiry."""
            bounds = []
            if self.job_timeout is not None and in_flight:
                bounds.append(min(e.deadline for e in in_flight.values() if e.deadline))
            if delayed:
                bounds.append(min(entry[0] for entry in delayed))
            if not bounds:
                return None
            return max(0.0, min(bounds) - monotonic())

        try:
            while pending or delayed or in_flight:
                if summary.degraded:
                    # Serial endgame: the pool cannot be trusted any more.
                    while pending or delayed:
                        if not pending:
                            ready_at = min(entry[0] for entry in delayed)
                            sleep(max(0.0, ready_at - monotonic()))
                            refill_now = monotonic()
                            for entry in list(delayed):
                                if entry[0] <= refill_now:
                                    delayed.remove(entry)
                                    pending.append((entry[1], entry[2]))
                            continue
                        job, attempt = pending.popleft()
                        started = perf_counter() if profiler is not None else 0.0
                        result = execute_with_retries(
                            job,
                            policy,
                            self.fault_plan,
                            summary,
                            reporter,
                            first_attempt=attempt,
                        )
                        if profiler is not None:
                            profiler.add("simulate", perf_counter() - started)
                        if result is not None:
                            yield result
                    return

                if refill():  # submission hit a broken pool
                    summary.worker_crashes += 1
                    consecutive_pool_failures += 1
                    self._abandon_pool(pool)
                    requeue_lost(next_attempt=True)
                    if consecutive_pool_failures > self._max_pool_rebuilds():
                        summary.degraded = True
                        if reporter is not None:
                            reporter.degrade(consecutive_pool_failures)
                        continue
                    pool = rebuild_pool()
                    continue

                if not in_flight:
                    if delayed and not pending:
                        # Everything is parked on a backoff delay: sleep it off
                        # instead of spinning on refill().
                        ready_at = min(entry[0] for entry in delayed)
                        sleep(max(0.0, ready_at - monotonic()))
                        continue
                    if pending:
                        continue
                    break

                wait_started = perf_counter() if profiler is not None else 0.0
                done, _ = wait(
                    tuple(in_flight), timeout=poll_timeout(), return_when=FIRST_COMPLETED
                )
                if profiler is not None:
                    profiler.add("simulate", perf_counter() - wait_started)

                if not done:
                    # The wait timed out: sweep expired per-job deadlines.
                    now = monotonic()
                    expired = [
                        future
                        for future, entry in in_flight.items()
                        if entry.deadline is not None and entry.deadline <= now
                    ]
                    if not expired:
                        continue  # woke up for a backoff expiry, not a hang
                    self._abandon_pool(pool)
                    for future in expired:
                        entry = in_flight.pop(future)
                        summary.timeouts += 1
                        failure = JobFailure(
                            job_id=entry.job.job_id,
                            label=entry.job.label,
                            scenario=entry.job.scenario,
                            attempt=entry.attempt,
                            kind="timeout",
                            message=(
                                f"job exceeded its {self.job_timeout:.3g}s budget"
                            ),
                            fatal=policy is None or not policy.should_retry(entry.attempt),
                        )
                        if failure.fatal:
                            summary.record_quarantine(failure)
                            if reporter is not None:
                                reporter.quarantine(
                                    entry.job.label, entry.attempt, "timeout"
                                )
                            if policy is None:
                                raise JobTimeoutError(failure.message)
                        else:
                            summary.record_retry(failure)
                            if reporter is not None:
                                reporter.retry(
                                    entry.job.label,
                                    entry.attempt + 1,
                                    policy.max_attempts,
                                    "timeout",
                                    0.0,
                                )
                            pending.append((entry.job, entry.attempt + 1))
                    requeue_lost(next_attempt=False)  # innocent bystanders
                    pool = rebuild_pool()
                    continue

                pool_broken = False
                for future in done:
                    entry = in_flight.pop(future)
                    result_started = perf_counter() if profiler is not None else 0.0
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        self._note_crash(entry, pending, summary)
                    except Exception as exc:
                        consecutive_pool_failures = 0
                        self._note_exception(entry, exc, pending, delayed, summary)
                    else:
                        consecutive_pool_failures = 0
                        if profiler is not None:
                            profiler.add("aggregate", perf_counter() - result_started)
                        yield result

                if pool_broken:
                    summary.worker_crashes += 1
                    consecutive_pool_failures += 1
                    self._abandon_pool(pool)
                    requeue_lost(next_attempt=True)
                    if consecutive_pool_failures > self._max_pool_rebuilds():
                        summary.degraded = True
                        if reporter is not None:
                            reporter.degrade(consecutive_pool_failures)
                        continue
                    pool = rebuild_pool()
        finally:
            self.last_cancelled = sum(1 for future in in_flight if future.cancel())
            shutdown_started = perf_counter() if profiler is not None else 0.0
            pool.shutdown(wait=True, cancel_futures=True)
            if profiler is not None:
                profiler.add("spawn", perf_counter() - shutdown_started, count=0)

    # ------------------------------------------------------------------
    def _note_crash(
        self,
        entry: _InFlight,
        pending: deque,
        summary: ResilienceSummary,
    ) -> None:
        """One future died with the pool; requeue (or quarantine) its job."""
        policy = self.retry_policy
        attempt = self._crash_next_attempt(entry.job, entry.attempt)
        if (
            attempt > entry.attempt
            and policy is not None
            and not policy.should_retry(entry.attempt)
        ):
            failure = JobFailure(
                job_id=entry.job.job_id,
                label=entry.job.label,
                scenario=entry.job.scenario,
                attempt=entry.attempt,
                kind="worker_crash",
                message="worker process died repeatedly",
                fatal=True,
            )
            summary.record_quarantine(failure)
            if self.reporter is not None:
                self.reporter.quarantine(entry.job.label, entry.attempt, "worker_crash")
            return
        pending.append((entry.job, attempt))

    def _note_exception(
        self,
        entry: _InFlight,
        exc: Exception,
        pending: deque,
        delayed: list,
        summary: ResilienceSummary,
    ) -> None:
        """A job raised in its worker: retry with backoff, quarantine or abort."""
        policy = self.retry_policy
        fatal = policy is None or not policy.should_retry(entry.attempt)
        failure = JobFailure(
            job_id=entry.job.job_id,
            label=entry.job.label,
            scenario=entry.job.scenario,
            attempt=entry.attempt,
            kind="exception",
            message=f"{type(exc).__name__}: {exc}",
            fatal=fatal,
        )
        if fatal:
            summary.record_quarantine(failure)
            if self.reporter is not None:
                self.reporter.quarantine(entry.job.label, entry.attempt, "exception")
            if policy is None:
                # Pre-resilience contract: the first failure aborts the
                # campaign (the finally block cancels the other futures).
                raise exc
            return
        summary.record_retry(failure)
        delay = policy.delay(entry.job.job_id, entry.attempt)
        if self.reporter is not None:
            self.reporter.retry(
                entry.job.label, entry.attempt + 1, policy.max_attempts, "exception", delay
            )
        if delay:
            delayed.append((monotonic() + delay, entry.job, entry.attempt + 1))
        else:
            pending.append((entry.job, entry.attempt + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(max_workers={self.workers})"


def create_executor(
    jobs: int | None = None,
    retry_policy: RetryPolicy | None = None,
    job_timeout: float | None = None,
) -> Executor:
    """Build the executor for a ``--jobs N`` request.

    ``jobs=1`` (or ``None``) is serial; ``jobs=0`` means "one worker per
    CPU"; anything above 1 is a process pool of that size.  ``retry_policy``
    and ``job_timeout`` carry the ``--retries`` / ``--job-timeout`` flags.
    """
    if jobs is None or jobs == 1:
        return SerialExecutor(retry_policy=retry_policy)
    if jobs == 0:
        return ParallelExecutor(
            max_workers=os.cpu_count() or 1,
            retry_policy=retry_policy,
            job_timeout=job_timeout,
        )
    if jobs < 0:
        raise ConfigurationError("--jobs cannot be negative")
    return ParallelExecutor(
        max_workers=jobs, retry_policy=retry_policy, job_timeout=job_timeout
    )
