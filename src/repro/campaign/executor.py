"""Pluggable campaign execution backends.

Every backend implements one method — :meth:`Executor.execute` — that maps a
sequence of :class:`~repro.campaign.jobs.CampaignJob` to an iterator of
:class:`~repro.campaign.jobs.JobResult`, yielding results as they complete so
the orchestrator can persist and report progress incrementally.

Determinism contract: a job's result depends only on the job (every random
stream is derived from ``(seed, run_index)`` inside :func:`run_job`), so the
backends are interchangeable — :class:`ParallelExecutor` produces samples
bit-identical to :class:`SerialExecutor`, merely out of order.  Orchestration
code must therefore key results by :attr:`job_id`, never by arrival order.

Dispatch contract: the parallel backend amortises its per-job overheads by
shipping *chunked batches* (:mod:`repro.campaign.batches`) to a pool of
persistent warm workers.  Jobs are grouped by shared context (workload +
platform config + scenario knobs), the context is pickled once per campaign,
and a worker receives one :class:`~repro.campaign.batches.JobBatch` — context
blob plus a compact per-job table — and returns one columnar
:class:`~repro.campaign.batches.BatchResult`.  Chunk sizes adapt per context
from measured seconds-per-job toward a target seconds-per-chunk, starting at
one job (the probe) so short campaigns keep full parallelism.  The executor
still *yields per-job results*: each batch is split back into
:class:`JobResult` records as it streams in, so the store, resume protocol
and progress reporting see exactly the per-job stream they always did.

Resilience contract: job purity also makes *re*-execution free of side
effects, which is what lets :class:`ParallelExecutor` survive worker death —
now at batch granularity.  A :class:`~concurrent.futures.process.
BrokenProcessPool` is absorbed by rebuilding the pool and resubmitting the
lost batches' jobs (under a fault plan only the known culprits are charged an
attempt); repeated pool failures degrade execution to the in-process serial
path; a configured :class:`~repro.campaign.resilience.RetryPolicy` retries
transient job exceptions with seeded backoff and quarantines poison jobs
after their attempt budget (a failed job stops only its own batch: the
completed prefix is folded, the untouched suffix is requeued); a per-job
wall-clock budget (``job_timeout``) scales to a per-batch deadline that kills
hung workers.  Retried jobs are dispatched as singleton batches, so fault
accounting stays per-job exact.  With no policy/plan/profiler configured the
serial path is exactly the pre-resilience one, and a parallel failure still
propagates the original exception on first sight (after cancelling the other
in-flight futures so an aborting campaign never blocks on unrelated batches).
"""

from __future__ import annotations

# repro-lint: allow-file[DET001] — timeouts, retry backoff, rate limiting and
# profiling are wall-clock by nature here; job *results* derive only from
# (seed, run_index) inside run_job, so host time never reaches the samples.

import os
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from time import monotonic, perf_counter, sleep
from typing import TYPE_CHECKING, ClassVar, Iterator, Sequence

from ..obs.profiler import CampaignProfiler
from ..sim.errors import ConfigurationError
from .batches import (
    DEFAULT_SHM_MIN_BYTES,
    JobContext,
    batch_jobs,
    init_batch_worker,
    pickle_context,
    run_batch,
)
from .jobs import CampaignJob, JobResult, run_job
from .resilience import (
    DEFAULT_MAX_POOL_REBUILDS,
    JobTimeoutError,
    ResilienceSummary,
    RetryPolicy,
    execute_with_retries,
    job_failure,
)

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .faults import FaultPlan
    from .progress import NullProgress

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "create_executor"]


class Executor(ABC):
    """Execution backend interface."""

    #: Worker-process count (1 for in-process backends); used for sizing hints.
    workers: int = 1
    #: Optional per-phase wall-clock profiler, attached by the orchestrator
    #: (:class:`~repro.campaign.campaign.Campaign`).  ``None`` keeps the
    #: execute loops exactly as shipped.
    profiler: CampaignProfiler | None = None
    #: Optional retry policy; ``None`` keeps the fail-fast seed behaviour.
    retry_policy: RetryPolicy | None = None
    #: Optional per-job wall-clock budget in seconds (parallel backend only).
    job_timeout: float | None = None
    #: Optional fault-injection plan — chaos testing only, never production.
    fault_plan: "FaultPlan | None" = None
    #: Optional progress reporter for retry/degrade lines (attached by the
    #: orchestrator; duck-typed to :class:`~repro.campaign.progress.NullProgress`).
    reporter: "NullProgress | None" = None
    #: Resilience accounting of the most recent :meth:`execute` call.
    last_resilience: ResilienceSummary | None = None
    #: Batched-dispatch accounting of the most recent :meth:`execute` call
    #: (chunk sizes, worker cache hits); empty for in-process backends.
    last_batch_stats: ClassVar[dict[str, object]] = {}

    @abstractmethod
    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        """Run ``jobs`` and yield each :class:`JobResult` as it completes."""


class SerialExecutor(Executor):
    """Run every job in-process, in order — the debuggable baseline."""

    workers = 1

    def __init__(
        self,
        retry_policy: RetryPolicy | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan

    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        profiler = self.profiler
        summary = ResilienceSummary()
        self.last_resilience = summary
        if profiler is None and self.retry_policy is None and self.fault_plan is None:
            # The seed hot path, byte-for-byte: nothing but run_job calls.
            for job in jobs:
                yield run_job(job)
            return
        for job in jobs:
            started = perf_counter()
            result = execute_with_retries(
                job, self.retry_policy, self.fault_plan, summary, self.reporter
            )
            if profiler is not None:
                profiler.add("simulate", perf_counter() - started)
            if result is not None:
                yield result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class _ContextGroup:
    """One shared-context dispatch queue: pickled blob + pending jobs + EMA."""

    __slots__ = ("blob", "ema_job_seconds", "key", "queue")

    def __init__(self, key: str, blob: bytes) -> None:
        self.key = key
        self.blob = blob
        #: ``(job, attempt)`` pairs awaiting first-attempt batch dispatch.
        self.queue: deque[tuple[CampaignJob, int]] = deque()
        #: Exponential moving average of measured seconds per job.
        self.ema_job_seconds: float | None = None

    def observe(self, seconds_per_job: float) -> None:
        if self.ema_job_seconds is None:
            self.ema_job_seconds = seconds_per_job
        else:
            self.ema_job_seconds = 0.5 * self.ema_job_seconds + 0.5 * seconds_per_job


class _InFlightBatch:
    """Bookkeeping for one submitted batch future."""

    __slots__ = ("context", "deadline", "entries")

    def __init__(
        self,
        entries: list[tuple[CampaignJob, int]],
        context: _ContextGroup,
        deadline: float | None,
    ) -> None:
        self.entries = entries
        self.context = context
        self.deadline = deadline


class ParallelExecutor(Executor):
    """Fan chunked job batches out over a persistent process pool.

    Simulation runs are pure CPU-bound Python, so processes (not threads) are
    the right unit.  ``max_in_flight`` bounds the number of submitted-but-
    unfinished batch futures so million-job campaigns do not materialise
    their whole frontier in memory at once.

    Chunking: jobs are grouped by shared context; each context's chunk size
    adapts from the measured per-job seconds toward ``chunk_target_seconds``
    per batch (clamped to ``max_chunk_jobs`` and spread across workers near
    the tail), or is pinned with ``chunk_jobs``.  ``shm_min_bytes`` gates the
    shared-memory return path for large sample columns.

    The dispatch loop survives worker death (pool rebuild + resubmission of
    the lost batches), hung batches (``job_timeout`` scales to a per-batch
    deadline that kills the pool's workers and requeues), and transient job
    failures (``retry_policy``); after ``max_pool_rebuilds`` consecutive pool
    failures it degrades to running the remaining jobs serially in-process.
    Because jobs are pure, none of this changes a single sample — only
    whether they arrive.
    """

    def __init__(
        self,
        max_workers: int,
        max_in_flight: int | None = None,
        retry_policy: RetryPolicy | None = None,
        job_timeout: float | None = None,
        fault_plan: "FaultPlan | None" = None,
        chunk_target_seconds: float = 0.25,
        chunk_jobs: int | None = None,
        max_chunk_jobs: int = 64,
        shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
    ) -> None:
        if max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        if job_timeout is not None and job_timeout <= 0:
            raise ConfigurationError("job_timeout must be positive")
        if chunk_target_seconds <= 0:
            raise ConfigurationError("chunk_target_seconds must be positive")
        if chunk_jobs is not None and chunk_jobs <= 0:
            raise ConfigurationError("chunk_jobs must be positive")
        if max_chunk_jobs <= 0:
            raise ConfigurationError("max_chunk_jobs must be positive")
        self.workers = max_workers
        self.max_in_flight = max_in_flight or max(4 * max_workers, 16)
        self.retry_policy = retry_policy
        self.job_timeout = job_timeout
        self.fault_plan = fault_plan
        self.chunk_target_seconds = chunk_target_seconds
        self.chunk_jobs = chunk_jobs
        self.max_chunk_jobs = max_chunk_jobs
        self.shm_min_bytes = shm_min_bytes
        #: Futures cancelled while unwinding the most recent execute() call.
        self.last_cancelled = 0
        self.last_batch_stats: dict[str, object] = {}

    # ------------------------------------------------------------------
    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        self.last_resilience = ResilienceSummary()
        self.last_batch_stats = {}
        if not jobs:
            return
        yield from self._execute_core(list(jobs), self.last_resilience)

    # ------------------------------------------------------------------
    # Submission helpers
    # ------------------------------------------------------------------
    def _build_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers, initializer=init_batch_worker
        )

    def _crash_next_attempt(self, job: CampaignJob, attempt: int) -> int:
        """The attempt a job lost to a pool break should resubmit as.

        A broken pool does not say *which* job killed the worker, so without
        further information every lost job is conservatively charged an
        attempt (purity makes the resubmission bit-identical either way).
        Under an injected fault plan the culprit is known exactly, so
        innocent bystanders keep their attempt number — which keeps the
        plan's per-attempt fault schedule (and the chaos accounting built on
        it) deterministic regardless of dispatch timing or batch shape.
        """
        if self.fault_plan is None:
            return attempt + 1
        from .faults import CRASH

        if self.fault_plan.decide(job.job_id, attempt) == CRASH:
            return attempt + 1
        return attempt

    def _max_pool_rebuilds(self) -> int:
        if self.retry_policy is not None:
            return self.retry_policy.max_pool_rebuilds
        return DEFAULT_MAX_POOL_REBUILDS

    @staticmethod
    def _abandon_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a (broken or hung) pool down without waiting on its workers."""
        processes = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes.values():  # kill hung workers outright
            try:
                process.terminate()
            except (OSError, ValueError):  # pragma: no cover - already dead
                pass

    # ------------------------------------------------------------------
    # The resilient batched dispatch loop
    # ------------------------------------------------------------------
    def _execute_core(
        self, jobs: list[CampaignJob], summary: ResilienceSummary
    ) -> Iterator[JobResult]:
        profiler = self.profiler
        policy = self.retry_policy
        reporter = self.reporter
        plan = self.fault_plan
        self.last_cancelled = 0
        stats: dict[str, object] = {
            "batches": 0,
            "jobs_dispatched": 0,
            "max_chunk_jobs": 0,
            "contexts": 0,
            "context_cache_hits": 0,
            "context_cache_misses": 0,
            "trace_cache_hits": 0,
            "trace_cache_misses": 0,
            "shm_batches": 0,
        }
        self.last_batch_stats = stats

        # Group first-attempt jobs by shared context; the context is pickled
        # once here and the same bytes blob rides along with every batch.
        contexts: list[_ContextGroup] = []
        group_index: dict[object, _ContextGroup] = {}
        context_of: dict[str, _ContextGroup] = {}
        for job in jobs:
            context = JobContext.from_job(job)
            try:
                group = group_index.get(context)
            except TypeError:  # unhashable option value: its own group
                group = None
                context = None
            if group is None:
                key, blob = pickle_context(
                    context if context is not None else JobContext.from_job(job)
                )
                group = _ContextGroup(key, blob)
                contexts.append(group)
                if context is not None:
                    group_index[context] = group
            group.queue.append((job, 1))
            context_of[job.job_id] = group
        stats["contexts"] = len(contexts)

        #: Retries and crash suspects: dispatched as singleton batches so
        #: fault charging stays per-job exact and poison cannot starve a chunk.
        solo: deque[tuple[CampaignJob, int]] = deque()
        #: (ready_at, job, attempt) parked for a backoff delay.
        delayed: list[tuple[float, CampaignJob, int]] = []
        in_flight: dict[Future, _InFlightBatch] = {}
        consecutive_pool_failures = 0
        rotation = 0  # round-robin cursor over context groups

        spawn_started = perf_counter()
        pool = self._build_pool()
        if profiler is not None:
            wait({pool.submit(init_batch_worker) for _ in range(self.workers)})
            profiler.add("spawn", perf_counter() - spawn_started, count=self.workers)

        def have_pending() -> bool:
            return bool(solo) or any(group.queue for group in contexts)

        def requeue(job: CampaignJob, attempt: int, front: bool = False) -> None:
            """Put one job back where its next dispatch belongs."""
            if attempt > 1:
                target: deque = solo
            else:
                target = context_of[job.job_id].queue
            if front:
                target.appendleft((job, attempt))
            else:
                target.append((job, attempt))

        def chunk_size(group: _ContextGroup) -> int:
            if self.chunk_jobs is not None:
                return min(self.chunk_jobs, len(group.queue))
            if group.ema_job_seconds is None:
                return 1  # probe: measure before amortising
            size = int(self.chunk_target_seconds / max(group.ema_job_seconds, 1e-9))
            size = max(1, min(size, self.max_chunk_jobs))
            # Near the tail, spread what is left across the workers instead
            # of parking it all in one batch.
            size = min(size, max(1, -(-len(group.queue) // self.workers)))
            return min(size, len(group.queue))

        def next_batch() -> tuple[list[tuple[CampaignJob, int]], _ContextGroup] | None:
            nonlocal rotation
            if solo:
                job, attempt = solo.popleft()
                return [(job, attempt)], context_of[job.job_id]
            for _ in range(len(contexts)):
                group = contexts[rotation % len(contexts)]
                rotation += 1
                if group.queue:
                    size = chunk_size(group)
                    return [group.queue.popleft() for _ in range(size)], group
            return None

        def submit_batch(
            entries: list[tuple[CampaignJob, int]], group: _ContextGroup
        ) -> Future:
            batch = batch_jobs(entries, group.key, group.blob, self.shm_min_bytes)
            future = pool.submit(run_batch, batch, plan)
            deadline = (
                None
                if self.job_timeout is None
                else monotonic() + self.job_timeout * len(entries)
            )
            in_flight[future] = _InFlightBatch(entries, group, deadline)
            stats["batches"] += 1  # type: ignore[operator]
            stats["jobs_dispatched"] += len(entries)  # type: ignore[operator]
            stats["max_chunk_jobs"] = max(stats["max_chunk_jobs"], len(entries))  # type: ignore[call-overload]
            return future

        def refill() -> bool:
            """Top the pool up to ``max_in_flight`` batches; True if it broke."""
            if delayed:
                now = monotonic()
                matured = [entry for entry in delayed if entry[0] <= now]
                for entry in matured:
                    delayed.remove(entry)
                    solo.append((entry[1], entry[2]))
            submitted = 0
            submit_started = perf_counter() if profiler is not None else 0.0
            try:
                while len(in_flight) < self.max_in_flight:
                    picked = next_batch()
                    if picked is None:
                        break
                    entries, group = picked
                    try:
                        submit_batch(entries, group)
                    except BrokenProcessPool:
                        for job, attempt in reversed(entries):
                            requeue(job, attempt, front=True)
                        return True
                    submitted += 1
            finally:
                if profiler is not None and submitted:
                    profiler.add(
                        "dispatch", perf_counter() - submit_started, count=submitted
                    )
                    profiler.count("batches", submitted)
            return False

        def charge_crash(job: CampaignJob, attempt: int) -> None:
            """One job lost to a pool break: requeue it or quarantine it."""
            next_attempt = self._crash_next_attempt(job, attempt)
            if (
                next_attempt > attempt
                and policy is not None
                and not policy.should_retry(attempt)
            ):
                failure = job_failure(
                    job,
                    attempt,
                    kind="worker_crash",
                    message="worker process died repeatedly",
                    fatal=True,
                )
                summary.record_quarantine(failure)
                if reporter is not None:
                    reporter.quarantine(job.label, attempt, "worker_crash")
                return
            requeue(job, next_attempt)

        def requeue_lost(next_attempt: bool) -> None:
            """Move every in-flight batch's jobs back to pending (pool gone)."""
            for entry in in_flight.values():
                for job, attempt in entry.entries:
                    if next_attempt:
                        charge_crash(job, attempt)
                    else:
                        requeue(job, attempt)
            in_flight.clear()

        def rebuild_pool() -> ProcessPoolExecutor:
            summary.pool_rebuilds += 1
            if profiler is None:
                return self._build_pool()
            started = perf_counter()
            fresh = self._build_pool()
            wait({fresh.submit(init_batch_worker) for _ in range(self.workers)})
            profiler.add("spawn", perf_counter() - started, count=self.workers)
            return fresh

        def poll_timeout() -> float | None:
            """How long the wait may block: next deadline or backoff expiry."""
            bounds = []
            if self.job_timeout is not None and in_flight:
                bounds.append(
                    min(e.deadline for e in in_flight.values() if e.deadline)
                )
            if delayed:
                bounds.append(min(entry[0] for entry in delayed))
            if not bounds:
                return None
            return max(0.0, min(bounds) - monotonic())

        try:
            while have_pending() or delayed or in_flight:
                if summary.degraded:
                    # Serial endgame: the pool cannot be trusted any more.
                    pending: deque[tuple[CampaignJob, int]] = deque(solo)
                    solo.clear()
                    for group in contexts:
                        pending.extend(group.queue)
                        group.queue.clear()
                    while pending or delayed:
                        if not pending:
                            ready_at = min(entry[0] for entry in delayed)
                            sleep(max(0.0, ready_at - monotonic()))
                            refill_now = monotonic()
                            for entry in list(delayed):
                                if entry[0] <= refill_now:
                                    delayed.remove(entry)
                                    pending.append((entry[1], entry[2]))
                            continue
                        job, attempt = pending.popleft()
                        started = perf_counter() if profiler is not None else 0.0
                        result = execute_with_retries(
                            job,
                            policy,
                            plan,
                            summary,
                            reporter,
                            first_attempt=attempt,
                        )
                        if profiler is not None:
                            profiler.add("simulate", perf_counter() - started)
                        if result is not None:
                            yield result
                    return

                if refill():  # submission hit a broken pool
                    summary.worker_crashes += 1
                    consecutive_pool_failures += 1
                    self._abandon_pool(pool)
                    requeue_lost(next_attempt=True)
                    if consecutive_pool_failures > self._max_pool_rebuilds():
                        summary.degraded = True
                        if reporter is not None:
                            reporter.degrade(consecutive_pool_failures)
                        continue
                    pool = rebuild_pool()
                    continue

                if not in_flight:
                    if delayed and not have_pending():
                        # Everything is parked on a backoff delay: sleep it off
                        # instead of spinning on refill().
                        ready_at = min(entry[0] for entry in delayed)
                        sleep(max(0.0, ready_at - monotonic()))
                        continue
                    if have_pending():
                        continue
                    break

                wait_started = perf_counter() if profiler is not None else 0.0
                done, _ = wait(
                    tuple(in_flight), timeout=poll_timeout(), return_when=FIRST_COMPLETED
                )
                if profiler is not None:
                    profiler.add("simulate", perf_counter() - wait_started)

                if not done:
                    # The wait timed out: sweep expired batch deadlines.
                    now = monotonic()
                    expired = [
                        future
                        for future, entry in in_flight.items()
                        if entry.deadline is not None and entry.deadline <= now
                    ]
                    if not expired:
                        continue  # woke up for a backoff expiry, not a hang
                    self._abandon_pool(pool)
                    for future in expired:
                        entry = in_flight.pop(future)
                        self._charge_timeouts(entry, solo, summary)
                    requeue_lost(next_attempt=False)  # innocent bystanders
                    pool = rebuild_pool()
                    continue

                pool_broken = False
                for future in done:
                    entry = in_flight.pop(future)
                    result_started = perf_counter() if profiler is not None else 0.0
                    try:
                        batch_result = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        for job, attempt in entry.entries:
                            charge_crash(job, attempt)
                        continue
                    except Exception as exc:
                        # A batch-level failure outside any job (transport,
                        # unpickling): charge the first undone job, keep the
                        # rest queued at their attempt.
                        consecutive_pool_failures = 0
                        first_job, first_attempt = entry.entries[0]
                        for job, attempt in entry.entries[1:]:
                            requeue(job, attempt)
                        self._note_exception(
                            first_job, first_attempt, exc, solo, delayed, summary
                        )
                        continue

                    consecutive_pool_failures = 0
                    folded = batch_result.split()
                    if profiler is not None:
                        profiler.add(
                            "result",
                            perf_counter() - result_started,
                            count=len(folded),
                        )
                        profiler.count(
                            "cache_hit" if batch_result.context_cache_hit
                            else "cache_miss"
                        )
                        if batch_result.trace_cache_hits:
                            profiler.count(
                                "trace_cache_hit", batch_result.trace_cache_hits
                            )
                    stats["context_cache_hits"] += int(batch_result.context_cache_hit)  # type: ignore[operator]
                    stats["context_cache_misses"] += int(  # type: ignore[operator]
                        not batch_result.context_cache_hit
                    )
                    stats["trace_cache_hits"] += batch_result.trace_cache_hits  # type: ignore[operator]
                    stats["trace_cache_misses"] += batch_result.trace_cache_misses  # type: ignore[operator]
                    if batch_result.shm_length:
                        stats["shm_batches"] += 1  # type: ignore[operator]
                    if folded:
                        elapsed = sum(batch_result.elapsed) or 1e-9
                        entry.context.observe(elapsed / len(folded))
                    for job_result in folded:
                        yield job_result
                    if batch_result.failed_index is not None:
                        # The culprit stopped the batch; rows after it were
                        # never started and go straight back to the queue.
                        for job, attempt in entry.entries[
                            batch_result.failed_index + 1 :
                        ]:
                            requeue(job, attempt)
                        job, attempt = entry.entries[batch_result.failed_index]
                        self._note_exception(
                            job,
                            attempt,
                            batch_result.failure_exception(),
                            solo,
                            delayed,
                            summary,
                        )

                if pool_broken:
                    summary.worker_crashes += 1
                    consecutive_pool_failures += 1
                    self._abandon_pool(pool)
                    requeue_lost(next_attempt=True)
                    if consecutive_pool_failures > self._max_pool_rebuilds():
                        summary.degraded = True
                        if reporter is not None:
                            reporter.degrade(consecutive_pool_failures)
                        continue
                    pool = rebuild_pool()
        finally:
            batches = stats["batches"]
            stats["mean_chunk_jobs"] = (
                round(stats["jobs_dispatched"] / batches, 3) if batches else 0.0  # type: ignore[operator]
            )
            self.last_cancelled = sum(1 for future in in_flight if future.cancel())
            shutdown_started = perf_counter() if profiler is not None else 0.0
            pool.shutdown(wait=True, cancel_futures=True)
            if profiler is not None:
                profiler.add("spawn", perf_counter() - shutdown_started, count=0)

    # ------------------------------------------------------------------
    def _charge_timeouts(
        self,
        entry: _InFlightBatch,
        solo: deque,
        summary: ResilienceSummary,
    ) -> None:
        """One batch blew its deadline: charge the culprits, spare the rest.

        Under a fault plan the hang's culprit is known exactly (the plan is a
        pure function of ``(job_id, attempt)``), so only the planned hangs
        are charged a timeout and innocent rows keep their attempt number.
        Without a plan nothing distinguishes the rows, so every job in the
        expired batch is conservatively charged — the same ambiguity a
        broken pool has.
        """
        policy = self.retry_policy
        plan = self.fault_plan
        culprits: list[tuple[CampaignJob, int]] = []
        if plan is not None:
            from .faults import HANG

            culprits = [
                (job, attempt)
                for job, attempt in entry.entries
                if plan.decide(job.job_id, attempt) == HANG
            ]
        if not culprits:
            culprits = list(entry.entries)
        culprit_ids = {job.job_id for job, _ in culprits}
        for job, attempt in entry.entries:
            if job.job_id not in culprit_ids:
                if attempt > 1:
                    solo.append((job, attempt))
                else:
                    # Innocent first-attempt rows rejoin their context queue
                    # through the shared requeue path in the dispatch loop.
                    solo.append((job, attempt))
                continue
            summary.timeouts += 1
            fatal = policy is None or not policy.should_retry(attempt)
            failure = job_failure(
                job,
                attempt,
                kind="timeout",
                message=f"job exceeded its {self.job_timeout:.3g}s budget",
                fatal=fatal,
            )
            if fatal:
                summary.record_quarantine(failure)
                if self.reporter is not None:
                    self.reporter.quarantine(job.label, attempt, "timeout")
                if policy is None:
                    raise JobTimeoutError(failure.message)
            else:
                summary.record_retry(failure)
                if self.reporter is not None:
                    self.reporter.retry(
                        job.label, attempt + 1, policy.max_attempts, "timeout", 0.0
                    )
                solo.append((job, attempt + 1))

    def _note_exception(
        self,
        job: CampaignJob,
        attempt: int,
        exc: BaseException,
        solo: deque,
        delayed: list,
        summary: ResilienceSummary,
    ) -> None:
        """A job raised in its worker: retry with backoff, quarantine or abort."""
        policy = self.retry_policy
        fatal = policy is None or not policy.should_retry(attempt)
        failure = job_failure(
            job,
            attempt,
            kind="exception",
            message=f"{type(exc).__name__}: {exc}",
            fatal=fatal,
        )
        if fatal:
            summary.record_quarantine(failure)
            if self.reporter is not None:
                self.reporter.quarantine(job.label, attempt, "exception")
            if policy is None:
                # Pre-resilience contract: the first failure aborts the
                # campaign with the *original* exception (the finally block
                # cancels the other in-flight futures).
                raise exc
            return
        summary.record_retry(failure)
        delay = policy.delay(job.job_id, attempt)
        if self.reporter is not None:
            self.reporter.retry(
                job.label, attempt + 1, policy.max_attempts, "exception", delay
            )
        if delay:
            delayed.append((monotonic() + delay, job, attempt + 1))
        else:
            solo.append((job, attempt + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(max_workers={self.workers})"


def create_executor(
    jobs: int | None = None,
    retry_policy: RetryPolicy | None = None,
    job_timeout: float | None = None,
    chunk_target_seconds: float | None = None,
    chunk_jobs: int | None = None,
) -> Executor:
    """Build the executor for a ``--jobs N`` request.

    ``jobs=1`` (or ``None``) is serial; ``jobs=0`` means "one worker per
    CPU"; anything above 1 is a process pool of that size.  ``retry_policy``
    and ``job_timeout`` carry the ``--retries`` / ``--job-timeout`` flags;
    ``chunk_target_seconds`` / ``chunk_jobs`` carry the batched-dispatch
    tuning flags (``--chunk-seconds`` / ``--chunk-jobs``).
    """
    if jobs is None or jobs == 1:
        return SerialExecutor(retry_policy=retry_policy)
    if jobs < 0:
        raise ConfigurationError("--jobs cannot be negative")
    workers = (os.cpu_count() or 1) if jobs == 0 else jobs
    kwargs: dict[str, object] = {}
    if chunk_target_seconds is not None:
        kwargs["chunk_target_seconds"] = chunk_target_seconds
    if chunk_jobs is not None:
        kwargs["chunk_jobs"] = chunk_jobs
    return ParallelExecutor(
        max_workers=workers,
        retry_policy=retry_policy,
        job_timeout=job_timeout,
        **kwargs,  # type: ignore[arg-type]
    )
