"""Pluggable campaign execution backends.

Every backend implements one method — :meth:`Executor.execute` — that maps a
sequence of :class:`~repro.campaign.jobs.CampaignJob` to an iterator of
:class:`~repro.campaign.jobs.JobResult`, yielding results as they complete so
the orchestrator can persist and report progress incrementally.

Determinism contract: a job's result depends only on the job (every random
stream is derived from ``(seed, run_index)`` inside :func:`run_job`), so the
backends are interchangeable — :class:`ParallelExecutor` produces samples
bit-identical to :class:`SerialExecutor`, merely out of order.  Orchestration
code must therefore key results by :attr:`job_id`, never by arrival order.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Iterator, Sequence

from ..sim.errors import ConfigurationError
from .jobs import CampaignJob, JobResult, run_job

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "create_executor"]


class Executor(ABC):
    """Execution backend interface."""

    #: Worker-process count (1 for in-process backends); used for sizing hints.
    workers: int = 1

    @abstractmethod
    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        """Run ``jobs`` and yield each :class:`JobResult` as it completes."""


class SerialExecutor(Executor):
    """Run every job in-process, in order — the debuggable baseline."""

    workers = 1

    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        for job in jobs:
            yield run_job(job)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Fan jobs out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Simulation runs are pure CPU-bound Python, so processes (not threads) are
    the right unit.  ``max_in_flight`` bounds the number of submitted-but-
    unfinished futures so million-job campaigns do not materialise their whole
    frontier in memory at once.
    """

    def __init__(self, max_workers: int, max_in_flight: int | None = None) -> None:
        if max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        self.workers = max_workers
        self.max_in_flight = max_in_flight or max(4 * max_workers, 16)

    def execute(self, jobs: Sequence[CampaignJob]) -> Iterator[JobResult]:
        if not jobs:
            return
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            queue = iter(jobs)
            in_flight = set()
            for job in queue:
                in_flight.add(pool.submit(run_job, job))
                if len(in_flight) >= self.max_in_flight:
                    break
            while in_flight:
                done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
                for job in queue:
                    in_flight.add(pool.submit(run_job, job))
                    if len(in_flight) >= self.max_in_flight:
                        break

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(max_workers={self.workers})"


def create_executor(jobs: int | None = None) -> Executor:
    """Build the executor for a ``--jobs N`` request.

    ``jobs=1`` (or ``None``) is serial; ``jobs=0`` means "one worker per
    CPU"; anything above 1 is a process pool of that size.
    """
    if jobs is None or jobs == 1:
        return SerialExecutor()
    if jobs == 0:
        return ParallelExecutor(max_workers=os.cpu_count() or 1)
    if jobs < 0:
        raise ConfigurationError("--jobs cannot be negative")
    return ParallelExecutor(max_workers=jobs)
