"""Deterministic, seed-derived fault injection for campaign chaos testing.

A :class:`FaultPlan` decides — as a pure function of ``(seed, job_id,
attempt)`` — whether a given job attempt should crash its worker process,
fail with an injected exception, or hang.  It can also corrupt artifact-store
lines at planned append positions.  The plan is a small frozen dataclass, so
it pickles into worker processes alongside the job it targets.

Production code paths never branch on faults: executors submit the plain
:func:`~repro.campaign.jobs.run_job` unless a plan is explicitly configured,
in which case they submit :func:`run_job_with_faults` (a wrapper *around*
``run_job``); store corruption is injected by :class:`ChaosStore`, a subclass
used only by the chaos harness.  Disabling chaos therefore restores the exact
pre-resilience dispatch.

:func:`run_chaos` is the end-to-end harness behind ``repro campaign chaos``:
it runs a scenario grid twice — once clean and serial, once parallel under an
injected fault plan — and checks that the faulty campaign completes,
quarantines the corrupted store lines, and produces bit-identical samples.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..sim.errors import ConfigurationError, SimulationError
from .jobs import CampaignJob, JobResult, run_job
from .resilience import RetryPolicy, derived_unit
from .store import ArtifactStore

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .campaign import CampaignReport

__all__ = [
    "ChaosReport",
    "ChaosStore",
    "FaultInjectedCrash",
    "FaultInjectedError",
    "FaultPlan",
    "run_chaos",
    "run_chaos_sweep",
    "run_job_with_faults",
]


class FaultInjectedError(SimulationError):
    """A transient failure injected by a :class:`FaultPlan`."""


class FaultInjectedCrash(FaultInjectedError):
    """An injected worker crash, surfaced as an exception in-process.

    In a worker process the crash action calls ``os._exit`` (the pool sees a
    dead worker, exactly like a segfault or OOM kill); executors running jobs
    in the campaign's own process raise this instead, since exiting would
    take the whole campaign down.
    """


#: Fault actions a plan can decide for one job attempt.
CRASH, FAIL, HANG = "crash", "fail", "hang"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic description of which faults to inject where.

    Faults come from two composable sources:

    * **targeted sets** (``crash_jobs`` / ``fail_jobs`` / ``hang_jobs``) —
      explicit job IDs, normally chosen by :meth:`for_jobs`, which guarantee
      coverage (the acceptance criterion's "at least one of each kind");
    * **rates** — seeded Bernoulli draws per ``(job_id, attempt)``, useful
      for property-based fuzzing over fault seeds.

    Either way a fault only fires while ``attempt <= max_faulty_attempts``,
    so a retrying campaign always terminates: once a job is past its faulty
    attempts it runs clean.
    """

    seed: int = 0
    crash_jobs: frozenset = frozenset()
    fail_jobs: frozenset = frozenset()
    hang_jobs: frozenset = frozenset()
    crash_rate: float = 0.0
    fail_rate: float = 0.0
    hang_rate: float = 0.0
    #: Attempts (1-based) on which faults may fire; later attempts run clean.
    max_faulty_attempts: int = 1
    #: How long an injected hang sleeps. Pair with a job timeout well below
    #: this so the executor kills the worker instead of waiting it out.
    hang_seconds: float = 30.0
    #: 1-based store append positions after which a corrupt line is injected
    #: (by :class:`ChaosStore`); position ``k`` corrupts after the k-th put.
    corrupt_puts: frozenset = frozenset()

    def __post_init__(self) -> None:
        total = self.crash_rate + self.fail_rate + self.hang_rate
        if min(self.crash_rate, self.fail_rate, self.hang_rate) < 0 or total > 1:
            raise ConfigurationError(
                "fault rates must be non-negative and sum to at most 1"
            )
        if self.max_faulty_attempts < 0:
            raise ConfigurationError("max_faulty_attempts cannot be negative")

    @classmethod
    def for_jobs(
        cls,
        jobs: Sequence[CampaignJob],
        *,
        seed: int,
        crashes: int = 1,
        failures: int = 1,
        hangs: int = 0,
        corrupt_lines: int = 1,
        **overrides: object,
    ) -> "FaultPlan":
        """Build a plan with guaranteed fault coverage over ``jobs``.

        Job IDs are ranked by a seeded hash and the requested counts are
        taken as disjoint slices of that ranking, so which jobs are hit is
        deterministic in ``seed`` but varies across seeds.  Corrupt lines
        are planned at the earliest append positions, which keeps them
        *non-trailing* whenever the campaign appends at least one more
        record afterwards.
        """
        unique_ids = sorted(
            {job.job_id for job in jobs},
            key=lambda job_id: hashlib.blake2b(
                f"{seed}:{job_id}".encode(), digest_size=8
            ).hexdigest(),
        )
        wanted = crashes + failures + hangs
        if wanted > len(unique_ids):
            raise ConfigurationError(
                f"cannot target {wanted} faults across {len(unique_ids)} unique jobs"
            )
        crash_ids = frozenset(unique_ids[:crashes])
        fail_ids = frozenset(unique_ids[crashes : crashes + failures])
        hang_ids = frozenset(unique_ids[crashes + failures : wanted])
        return cls(
            seed=seed,
            crash_jobs=crash_ids,
            fail_jobs=fail_ids,
            hang_jobs=hang_ids,
            corrupt_puts=frozenset(range(1, corrupt_lines + 1)),
            **overrides,  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    def decide(self, job_id: str, attempt: int) -> str | None:
        """The fault (``"crash"``/``"fail"``/``"hang"``/None) for one attempt."""
        if attempt > self.max_faulty_attempts:
            return None
        if job_id in self.crash_jobs:
            return CRASH
        if job_id in self.fail_jobs:
            return FAIL
        if job_id in self.hang_jobs:
            return HANG
        if self.crash_rate or self.fail_rate or self.hang_rate:
            draw = derived_unit(self.seed, "fault", job_id, attempt)
            if draw < self.crash_rate:
                return CRASH
            if draw < self.crash_rate + self.fail_rate:
                return FAIL
            if draw < self.crash_rate + self.fail_rate + self.hang_rate:
                return HANG
        return None

    def planned_faults(self, jobs: Iterable[CampaignJob]) -> dict[str, int]:
        """First-attempt fault counts over ``jobs`` (for reports and checks)."""
        counts = {CRASH: 0, FAIL: 0, HANG: 0}
        for job_id in sorted({job.job_id for job in jobs}):
            action = self.decide(job_id, 1)
            if action is not None:
                counts[action] += 1
        return counts

    def corrupt_line(self, put_index: int) -> str:
        """The (deterministically garbled) line injected after put ``put_index``."""
        noise = derived_unit(self.seed, "corrupt", put_index)
        return f'{{"job_id": "injected-corruption-{put_index}", "samples": [{noise:.6f}'


def run_job_with_faults(
    job: CampaignJob, attempt: int, plan: FaultPlan, in_process: bool = False
) -> JobResult:
    """Run ``job`` through the fault plan, then through the real runner.

    This wrapper — not :func:`~repro.campaign.jobs.run_job` — is what
    executors submit when a plan is configured, so production dispatch never
    carries a fault branch.  ``in_process=True`` turns worker-crash actions
    into :class:`FaultInjectedCrash` exceptions (serial executors have no
    expendable worker process to kill).
    """
    action = plan.decide(job.job_id, attempt)
    if action == CRASH:
        if in_process:
            raise FaultInjectedCrash(
                f"injected worker crash for job {job.job_id} (attempt {attempt})"
            )
        os._exit(17)  # die the way a segfaulting worker dies: no cleanup
    if action == FAIL:
        raise FaultInjectedError(
            f"injected transient failure for job {job.job_id} (attempt {attempt})"
        )
    if action == HANG:
        time.sleep(plan.hang_seconds)
    return run_job(job)


class ChaosStore(ArtifactStore):
    """An :class:`ArtifactStore` that corrupts planned lines as it appends.

    Only the chaos harness instantiates this; the production store never
    consults a fault plan.  Corruption is written *behind* the in-memory
    index — the running campaign is oblivious, and the damage is only
    discovered (and quarantined) by the next reader of the file.
    """

    def __init__(self, path, plan: FaultPlan, strict: bool = False) -> None:
        super().__init__(path, strict=strict)
        self.plan = plan
        self.injected_corrupt_lines = 0
        self._puts = 0

    def put(self, result: JobResult) -> None:
        super().put(result)
        self._puts += 1
        if self._puts in self.plan.corrupt_puts:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(self.plan.corrupt_line(self._puts) + "\n")
                handle.flush()
            self.injected_corrupt_lines += 1


# ----------------------------------------------------------------------
# The chaos harness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosReport:
    """What ``repro campaign chaos`` observed."""

    jobs: int
    injected: dict[str, int]
    injected_corrupt_lines: int
    quarantined_lines: int
    recovered_results: int
    samples_identical: bool
    campaign: "CampaignReport"
    labels: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        """The acceptance criterion: survive every fault, change no sample."""
        return (
            self.samples_identical
            and not self.campaign.failures
            and self.quarantined_lines >= self.injected_corrupt_lines
            and self.recovered_results == self.jobs
        )

    def summary(self) -> dict[str, object]:
        return {
            "jobs": self.jobs,
            "injected worker crashes": self.injected.get(CRASH, 0),
            "injected transient failures": self.injected.get(FAIL, 0),
            "injected hangs": self.injected.get(HANG, 0),
            "injected corrupt store lines": self.injected_corrupt_lines,
            "quarantined store lines": self.quarantined_lines,
            "worker crashes survived": self.campaign.worker_crashes,
            "pool rebuilds": self.campaign.pool_rebuilds,
            "retries": self.campaign.retries,
            "job timeouts": self.campaign.timeouts,
            "degraded to serial": self.campaign.degraded,
            "poison jobs quarantined": len(self.campaign.failures),
            "recovered results": self.recovered_results,
            "samples bit-identical to clean serial": self.samples_identical,
            "verdict": "PASS" if self.passed else "FAIL",
        }


def _chaos_grid(seed: int, runs_per_label: int, max_cycles: int) -> list[CampaignJob]:
    """The tracked chaos scenario grid: RP vs CBA max-contention, tiny runs."""
    from ..platform.presets import cba_config, rp_config
    from ..workloads.base import AddressPattern, WorkloadSpec
    from .jobs import seed_block_jobs

    workload = WorkloadSpec(
        name="chaos-tiny",
        num_accesses=120,
        working_set_bytes=4 * 1024,
        mean_compute_gap=6.0,
        gap_variability=0.3,
        pattern=AddressPattern.SEQUENTIAL,
        write_fraction=0.2,
        hot_fraction=0.5,
        hot_region_bytes=1024,
    )
    jobs: list[CampaignJob] = []
    for label, config in (("chaos/RP", rp_config()), ("chaos/CBA", cba_config())):
        jobs += seed_block_jobs(
            label,
            "max_contention",
            seed=seed,
            num_runs=runs_per_label,
            workload=workload,
            config=config,
            max_cycles=max_cycles,
        )
    return jobs


def run_chaos(
    *,
    seed: int = 2017,
    fault_seed: int = 2017,
    runs_per_label: int = 4,
    workers: int = 2,
    crashes: int = 1,
    failures: int = 1,
    hangs: int = 0,
    corrupt_lines: int = 1,
    retries: int = 2,
    job_timeout: float | None = None,
    store_path: str | os.PathLike[str] | None = None,
    max_cycles: int = 300_000,
    quiet: bool = True,
) -> ChaosReport:
    """Run the fault-injection harness against the tracked scenario grid.

    Three stages: a clean in-process serial campaign establishes reference
    samples; a parallel campaign runs the same jobs under an injected
    :class:`FaultPlan` (worker crashes, transient failures, optional hangs,
    corrupt store lines); a fresh :class:`ArtifactStore` then re-reads the
    battered store, quarantining the corruption, and the recovered samples
    are compared bit-for-bit against the reference.
    """
    import tempfile

    from .campaign import Campaign, aggregate_by_label
    from .executor import ParallelExecutor, SerialExecutor
    from .progress import NullProgress, ProgressReporter

    if hangs and job_timeout is None:
        raise ConfigurationError("injected hangs need --job-timeout to be survivable")

    jobs = _chaos_grid(seed, runs_per_label, max_cycles)
    plan = FaultPlan.for_jobs(
        jobs,
        seed=fault_seed,
        crashes=crashes,
        failures=failures,
        hangs=hangs,
        corrupt_lines=corrupt_lines,
        hang_seconds=(job_timeout or 0.0) * 10 + 30.0,
    )

    clean = Campaign(executor=SerialExecutor()).run(jobs)
    reference = aggregate_by_label(jobs, clean, allow_truncated=True)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        path = Path(store_path) if store_path is not None else Path(tmp) / "chaos.jsonl"
        store = ChaosStore(path, plan)
        # Pin two jobs per batch: singleton batches would reduce chaos to the
        # per-job dispatch it already covered, whereas a fault inside a
        # multi-job chunk exercises the partial-batch paths (completed prefix
        # folded, untouched suffix requeued, culprit charged).
        executor = ParallelExecutor(max_workers=workers, chunk_jobs=2)
        campaign = Campaign(
            executor=executor,
            store=store,
            retry_policy=RetryPolicy(max_attempts=retries + 1, base_delay=0.01),
            job_timeout=job_timeout,
            fault_plan=plan,
            progress=NullProgress() if quiet else ProgressReporter(prefix="chaos"),
        )
        campaign.run(jobs)
        report = campaign.last_report
        assert report is not None  # run() always sets it

        # Recovery check: a *fresh* reader of the battered store must
        # quarantine the injected corruption and still yield every result.
        recovered_store = ArtifactStore(path)
        recovered = {r.job_id: r for r in recovered_store.results()}
        missing = [job.job_id for job in jobs if job.job_id not in recovered]
        if missing:
            samples_identical = False
        else:
            recovered_agg = aggregate_by_label(jobs, recovered, allow_truncated=True)
            samples_identical = all(
                np.array_equal(recovered_agg[label].samples, reference[label].samples)
                for label in reference
            )

        return ChaosReport(
            jobs=len({job.job_id for job in jobs}),
            injected=plan.planned_faults(jobs),
            injected_corrupt_lines=store.injected_corrupt_lines,
            quarantined_lines=recovered_store.quarantined_lines,
            recovered_results=len(recovered),
            samples_identical=samples_identical,
            campaign=report,
            labels=tuple(sorted(reference)),
        )


def run_chaos_sweep(
    count: int, *, fault_seed: int = 2017, **kwargs: object
) -> list[tuple[int, ChaosReport]]:
    """Run the chaos harness over ``count`` consecutive fault seeds.

    Each sweep iteration reuses every other knob and derives its fault seed
    as ``fault_seed + i``, so which jobs crash/fail/hang (and where the
    corruption lands relative to batch boundaries) varies across iterations
    while each one stays individually reproducible.  Returns the
    ``(fault_seed, report)`` pairs in sweep order.
    """
    if count < 1:
        raise ConfigurationError("a seed sweep needs at least one seed")
    reports: list[tuple[int, ChaosReport]] = []
    for offset in range(count):
        swept = fault_seed + offset
        reports.append((swept, run_chaos(fault_seed=swept, **kwargs)))  # type: ignore[arg-type]
    return reports
