"""Resilience primitives for campaign execution.

Campaigns fan thousands of pure jobs across worker processes; at that scale
worker death, transient exceptions and hung jobs are events to absorb, not
reasons to abort.  This module holds the pieces the executors share:

* :class:`RetryPolicy` — how many attempts a job gets, with *seeded*
  exponential backoff + jitter (every delay is a pure function of
  ``(seed, job_id, attempt)``, so reruns of a campaign schedule identically);
* :class:`JobFailure` — a structured record of one failed attempt (or of a
  poison job's final quarantine), serialisable for reports and metrics;
* :class:`ResilienceSummary` — the per-:meth:`Executor.execute` accumulator
  the orchestrator folds into :class:`~repro.campaign.campaign.CampaignReport`;
* :func:`execute_with_retries` — the in-process retry driver used by
  :class:`~repro.campaign.executor.SerialExecutor` and by the parallel
  executor once it has degraded to serial execution.

Job purity (every random stream derives from ``(seed, run_index)``) is what
makes all of this safe: a retried or resubmitted job produces bit-identical
samples, so resilience never perturbs results — it only decides whether they
arrive.
"""

from __future__ import annotations

import hashlib
import struct
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..sim.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .faults import FaultPlan
    from .jobs import CampaignJob, JobResult

__all__ = [
    "JobFailure",
    "JobTimeoutError",
    "ResilienceSummary",
    "RetryPolicy",
    "derived_unit",
    "execute_with_retries",
    "job_failure",
]

#: Pool rebuilds tolerated before degrading to serial when no policy is set.
DEFAULT_MAX_POOL_REBUILDS = 3


class JobTimeoutError(SimulationError):
    """Raised when a job exceeds its wall-clock budget and cannot be retried."""


def derived_unit(seed: int, *parts: object) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from ``seed`` and ``parts``.

    Used for backoff jitter and fault-plan decisions so that resilience
    behaviour is a pure function of configuration — never of wall-clock,
    worker identity or arrival order.
    """
    digest = hashlib.blake2b(
        ":".join([str(seed), *map(str, parts)]).encode("utf-8"), digest_size=8
    ).digest()
    (word,) = struct.unpack("<Q", digest)
    return word / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How failing jobs are retried, backed off, and finally quarantined.

    ``max_attempts`` counts *total* attempts (1 = the pre-resilience
    fail-fast behaviour).  After the last attempt the job is quarantined as
    poison: a :class:`JobFailure` is recorded and the campaign carries on
    without its samples instead of aborting everyone else's.
    """

    max_attempts: int = 3
    #: First retry waits ``base_delay`` seconds; each further retry doubles it.
    base_delay: float = 0.05
    max_delay: float = 2.0
    #: Fraction of the delay randomised away (0 = fully deterministic delay).
    jitter: float = 0.5
    #: Seeds the jitter draws; independent of the jobs' simulation seeds.
    seed: int = 0
    #: Consecutive process-pool failures tolerated before the parallel
    #: executor degrades to in-process serial execution.
    max_pool_rebuilds: int = DEFAULT_MAX_POOL_REBUILDS

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("backoff delays cannot be negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be within [0, 1]")
        if self.max_pool_rebuilds < 0:
            raise ConfigurationError("max_pool_rebuilds cannot be negative")

    def should_retry(self, attempt: int) -> bool:
        """True when attempt number ``attempt`` (1-based) may be followed."""
        return attempt < self.max_attempts

    def delay(self, job_id: str, attempt: int) -> float:
        """Backoff before the retry that follows attempt ``attempt``.

        Exponential in the attempt number, capped at :attr:`max_delay`, with
        a seeded jitter *reduction* (the jittered delay never exceeds the
        deterministic cap, so worst-case campaign latency stays bounded).
        """
        capped = min(self.base_delay * 2 ** (attempt - 1), self.max_delay)
        if not capped or not self.jitter:
            return capped
        return capped * (1.0 - self.jitter * derived_unit(self.seed, job_id, attempt))


@dataclass(frozen=True)
class JobFailure:
    """One failed attempt (or final quarantine) of a campaign job."""

    job_id: str
    label: str
    scenario: str
    attempt: int
    #: ``"exception"`` | ``"timeout"`` | ``"worker_crash"``.
    kind: str
    message: str = ""
    #: True when the failure exhausted the retry budget (poison quarantine).
    fatal: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "job_id": self.job_id,
            "label": self.label,
            "scenario": self.scenario,
            "attempt": self.attempt,
            "kind": self.kind,
            "message": self.message,
            "fatal": self.fatal,
        }


@dataclass
class ResilienceSummary:
    """What one ``execute()`` call survived (mutable accumulator)."""

    retries: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    timeouts: int = 0
    degraded: bool = False
    #: Every non-fatal failure that was retried, in observation order.
    events: list[JobFailure] = field(default_factory=list)
    #: Poison jobs quarantined after exhausting their attempts.
    failures: list[JobFailure] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing failed, crashed, timed out or degraded."""
        return not (
            self.retries
            or self.worker_crashes
            or self.pool_rebuilds
            or self.timeouts
            or self.degraded
            or self.events
            or self.failures
        )

    def record_retry(self, failure: JobFailure) -> None:
        self.retries += 1
        self.events.append(failure)

    def record_quarantine(self, failure: JobFailure) -> None:
        self.failures.append(failure)

    def as_dict(self) -> dict[str, object]:
        return {
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "pool_rebuilds": self.pool_rebuilds,
            "timeouts": self.timeouts,
            "degraded": self.degraded,
            "events": [event.to_dict() for event in self.events],
            "failures": [failure.to_dict() for failure in self.failures],
        }


def job_failure(
    job: "CampaignJob",
    attempt: int,
    *,
    kind: str,
    message: str,
    fatal: bool,
) -> JobFailure:
    """Build a :class:`JobFailure` for ``job`` — the one shared constructor.

    The executors record failures from four distinct paths (exception,
    timeout, pool break, quarantine); routing them all through here keeps the
    job-identity fields in one place.
    """
    return JobFailure(
        job_id=job.job_id,
        label=job.label,
        scenario=job.scenario,
        attempt=attempt,
        kind=kind,
        message=message,
        fatal=fatal,
    )


def _failure_from(
    job: "CampaignJob", attempt: int, exc: BaseException, fatal: bool
) -> JobFailure:
    from .faults import FaultInjectedCrash  # local: avoid import cycle at load

    kind = "worker_crash" if isinstance(exc, FaultInjectedCrash) else "exception"
    return job_failure(
        job, attempt, kind=kind, message=f"{type(exc).__name__}: {exc}", fatal=fatal
    )


def execute_with_retries(
    job: "CampaignJob",
    policy: RetryPolicy | None,
    plan: "FaultPlan | None",
    summary: ResilienceSummary,
    reporter=None,
    first_attempt: int = 1,
    sleep: Callable[[float], None] = time.sleep,
) -> "JobResult | None":
    """Run ``job`` in-process with the retry/quarantine protocol.

    Returns the result, or ``None`` when the job was quarantined as poison.
    Without a policy the first failure propagates — exactly the
    pre-resilience contract.  ``plan`` routes execution through the
    fault-injection wrapper (with in-process crash semantics: an injected
    worker crash becomes an exception here, since there is no worker to kill).
    """
    from .faults import run_job_with_faults
    from .jobs import run_job

    attempt = first_attempt
    while True:
        try:
            if plan is None:
                return run_job(job)
            return run_job_with_faults(job, attempt, plan, in_process=True)
        except Exception as exc:
            if policy is None:
                summary.record_quarantine(_failure_from(job, attempt, exc, fatal=True))
                raise
            if not policy.should_retry(attempt):
                failure = _failure_from(job, attempt, exc, fatal=True)
                summary.record_quarantine(failure)
                if reporter is not None:
                    reporter.quarantine(job.label, attempt, failure.kind)
                return None
            failure = _failure_from(job, attempt, exc, fatal=False)
            summary.record_retry(failure)
            delay = policy.delay(job.job_id, attempt)
            if reporter is not None:
                reporter.retry(
                    job.label, attempt + 1, policy.max_attempts, failure.kind, delay
                )
            if delay:
                sleep(delay)
            attempt += 1
