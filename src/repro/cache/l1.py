"""Private L1 cache model.

Each core has a private L1 instruction cache and a private L1 data cache.
Following the paper's platform, the data cache is *write-through* (stores are
always propagated to the L2 over the bus) and both L1s use random placement
and random replacement when the platform is configured for MBPTA.

The L1 is consulted by the core model: a hit is satisfied locally with a
fixed latency, a miss (or any store, because of the write-through policy)
requires a bus transaction to the L2 subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.config import CacheGeometry
from .cache import SetAssociativeCache
from .placement import ModuloPlacement, RandomPlacement
from .replacement import LRUReplacement, RandomReplacement

__all__ = ["L1AccessOutcome", "L1Cache", "build_l1_cache"]


@dataclass(frozen=True)
class L1AccessOutcome:
    """What the core must do after an L1 access.

    Attributes
    ----------
    hit:
        Whether the access hit in the L1.
    needs_bus:
        Whether a bus transaction is required (L1 miss, or any store for the
        write-through data cache).
    latency:
        Cycles spent in the L1 itself before any bus transaction.
    """

    hit: bool
    needs_bus: bool
    latency: int


class L1Cache:
    """Private, write-through L1 cache (data or instruction)."""

    def __init__(
        self,
        cache: SetAssociativeCache,
        hit_latency: int = 1,
        write_through: bool = True,
    ) -> None:
        if hit_latency <= 0:
            raise ValueError("L1 hit latency must be positive")
        self.cache = cache
        self.hit_latency = hit_latency
        self.write_through = write_through

    def access(self, address: int, is_write: bool, cycle: int) -> L1AccessOutcome:
        """Access the L1 and report whether the bus is needed."""
        result = self.cache.access(address, is_write, cycle)
        if is_write and self.write_through:
            # Write-through: the store always goes to the L2 regardless of
            # hit/miss; a hit only avoids refetching the line later.
            return L1AccessOutcome(hit=result.hit, needs_bus=True, latency=self.hit_latency)
        if result.hit:
            return L1AccessOutcome(hit=True, needs_bus=False, latency=self.hit_latency)
        return L1AccessOutcome(hit=False, needs_bus=True, latency=self.hit_latency)

    @property
    def placement(self):
        """The underlying placement policy (deterministic within a run).

        Exposed so the batch interpreter can pre-compute set/tag columns for
        a whole trace in one vectorised call — random placement is a seeded
        hash, fixed for the run, so the mapping is known up front.
        """
        return self.cache.placement

    def batch_read_hooks(self):
        """``(probe, commit)`` pair for the core's batch interpreter.

        ``probe(set_index, tag)`` returns the resident way or ``None`` with no
        side effects; ``commit(set_index, way, cycle)`` applies exactly the
        read-hit side effects of :meth:`access`.  Only *reads that hit* are
        eligible for batching: a read hit never needs the bus regardless of
        the write policy, while stores (write-through) and misses do.
        """
        return self.cache.read_hit_way, self.cache.commit_read_hit

    def residency_mirror(self):
        """Numpy mirror of the tag store (invalid ways hold the sentinel) —
        the vectorised form of the probe above; see
        :meth:`repro.cache.cache.SetAssociativeCache.residency_mirror`."""
        return self.cache.residency_mirror()

    def commit_read_hits(self, set_indices, ways, cycles) -> None:
        """Bulk read-hit commit with exact cycle stamps; see
        :meth:`repro.cache.cache.SetAssociativeCache.commit_read_hits`."""
        self.cache.commit_read_hits(set_indices, ways, cycles)

    @property
    def hit_stamps_droppable(self) -> bool:
        """True when read-hit replacement touches are unobservable (the
        policy never reads access history) and batch commits may count hits
        without stamping them."""
        return not self.cache.replacement.uses_access_history

    def miss_rate(self) -> float:
        return self.cache.miss_rate()

    def reset(self) -> None:
        self.cache.reset()


def build_l1_cache(
    name: str,
    geometry: CacheGeometry,
    random_caches: bool,
    rng: np.random.Generator,
    hit_latency: int = 1,
    write_through: bool = True,
) -> L1Cache:
    """Construct an L1 cache with the placement/replacement the platform asks for.

    With ``random_caches`` (the MBPTA configuration of the paper) placement is
    a seeded random hash and replacement is random; otherwise conventional
    modulo placement and LRU are used.
    """
    if random_caches:
        placement = RandomPlacement(
            geometry.num_sets, geometry.line_bytes, seed=int(rng.integers(0, 2**63))
        )
        replacement = RandomReplacement(rng)
    else:
        placement = ModuloPlacement(geometry.num_sets, geometry.line_bytes)
        replacement = LRUReplacement()
    cache = SetAssociativeCache(
        name=name,
        geometry=geometry,
        placement=placement,
        replacement=replacement,
        write_back=False,
        write_allocate=False,
    )
    return L1Cache(cache, hit_latency=hit_latency, write_through=write_through)
