"""Generic set-associative cache model.

The cache is a *functional* model: it tracks which blocks are resident, their
dirty state and the hit/miss/writeback outcome of each access.  Timing is the
responsibility of the caller (the core model for L1 latencies, the L2 slave
for bus hold times), which keeps the timing model in one place and the cache
reusable for both levels.
"""

from __future__ import annotations

import numpy as np

from ..sim.config import CacheGeometry
from ..sim.errors import ConfigurationError
from ..sim.stats import StatGroup
from .block import AccessResult, CacheLine
from .placement import PlacementPolicy
from .replacement import ReplacementPolicy

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache:
    """A set-associative cache with pluggable placement and replacement."""

    def __init__(
        self,
        name: str,
        geometry: CacheGeometry,
        placement: PlacementPolicy,
        replacement: ReplacementPolicy,
        write_back: bool,
        write_allocate: bool | None = None,
    ) -> None:
        """Create the cache.

        Parameters
        ----------
        write_back:
            True for a write-back cache (dirty bits, writebacks on eviction —
            the paper's L2), False for write-through (the paper's L1 data
            cache, where every store is propagated and lines are never dirty).
        write_allocate:
            Whether a write miss allocates the line.  Defaults to the common
            pairing: write-allocate for write-back caches, no-write-allocate
            for write-through caches.
        """
        if placement.num_sets != geometry.num_sets:
            raise ConfigurationError(
                f"placement policy built for {placement.num_sets} sets, "
                f"geometry has {geometry.num_sets}"
            )
        self.name = name
        self.geometry = geometry
        self.placement = placement
        self.replacement = replacement
        self.write_back = write_back
        self.write_allocate = write_back if write_allocate is None else write_allocate
        self._sets: list[list[CacheLine]] = [
            [CacheLine() for _ in range(geometry.associativity)]
            for _ in range(geometry.num_sets)
        ]
        #: Vectorised residency mirror of the tag store, created lazily by
        #: :meth:`residency_mirror` and kept in sync from then on.  ``None``
        #: keeps caches that never batch-probe (the L2) free of the per-fill
        #: mirror update.
        self._mirror_tags: np.ndarray | None = None
        self.stats = StatGroup(name=f"{name}.stats")
        # Every access increments one of these; bind them once instead of
        # doing a string-keyed lookup per access.
        self._c_read_hits = self.stats.counter("read_hits")
        self._c_write_hits = self.stats.counter("write_hits")
        self._c_read_misses = self.stats.counter("read_misses")
        self._c_write_misses = self.stats.counter("write_misses")
        self._c_writebacks = self.stats.counter("writebacks")
        self._c_evictions = self.stats.counter("evictions")

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def _find_way(self, set_index: int, tag: int) -> int | None:
        for way, line in enumerate(self._sets[set_index]):
            if line.valid and line.tag == tag:
                return way
        return None

    def contains(self, address: int) -> bool:
        """True when the block holding ``address`` is resident."""
        set_index = self.placement.set_index(address)
        return self._find_way(set_index, self.placement.tag(address)) is not None

    def is_dirty(self, address: int) -> bool:
        """True when the block holding ``address`` is resident and dirty."""
        set_index = self.placement.set_index(address)
        way = self._find_way(set_index, self.placement.tag(address))
        return way is not None and self._sets[set_index][way].dirty

    # ------------------------------------------------------------------
    # Batch read-hit fast path
    # ------------------------------------------------------------------
    # The batch interpreter pre-computes (set index, tag) for a whole trace
    # via the placement's vectorised form and then needs the two halves of the
    # read-hit path separately: a pure residency probe to decide whether the
    # stretch continues, and a commit applying exactly the side effects
    # access() performs on a read hit.  A read hit never changes residency,
    # so consecutive probes against the same cache state stay valid for the
    # whole stretch.

    def read_hit_way(self, set_index: int, tag: int) -> int | None:
        """Residency probe: the way holding ``(set_index, tag)``, or ``None``.

        No statistics or replacement state are touched — a probe that comes
        back ``None`` leaves the miss to be performed (and counted) by the
        ordinary :meth:`access` path at its cycle-accurate time.
        """
        return self._find_way(set_index, tag)

    def commit_read_hit(self, set_index: int, way: int, cycle: int) -> None:
        """Apply the side effects of a read hit found via :meth:`read_hit_way`.

        Mirrors the read-hit branch of :meth:`access` exactly: the replacement
        policy sees the touch (at the cycle the hit would have completed in
        cycle-accurate stepping, so LRU state stays bit-identical) and the hit
        counter advances.
        """
        self.replacement.on_access(self._sets[set_index], way, cycle)
        self._c_read_hits.value += 1

    #: Mirror entry of an invalid way: all-ones never collides with a real
    #: tag (tags are block addresses of at-most-63-bit addresses), so probes
    #: can compare against the tag plane alone, without a validity mask.
    MIRROR_EMPTY = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

    def residency_mirror(self) -> np.ndarray:
        """``(num_sets, ways)`` mirror of the tag store as one uint64 array.

        Invalid ways hold :attr:`MIRROR_EMPTY`, so ``mirror[sets] == tags``
        decides a whole candidate stretch's read hits in one numpy comparison
        instead of one :meth:`read_hit_way` call per item.  Created (and
        back-filled from the current line state) on first call; from then on
        every fill, flush and reset updates it in place — the *same* array
        object stays valid for the cache's lifetime, so callers bind it once
        per run.  Read hits never change residency, which is what makes a
        single probe of the mirror valid for every item of a bus-free
        stretch.
        """
        if self._mirror_tags is None:
            geometry = self.geometry
            self._mirror_tags = np.full(
                (geometry.num_sets, geometry.associativity),
                self.MIRROR_EMPTY,
                dtype=np.uint64,
            )
            for set_index, ways in enumerate(self._sets):
                for way, line in enumerate(ways):
                    if line.valid:
                        self._mirror_tags[set_index, way] = line.tag
        return self._mirror_tags

    def commit_read_hits(
        self, set_indices: list[int], ways: list[int], cycles: list[int]
    ) -> None:
        """Bulk :meth:`commit_read_hit` for pre-probed ``(set, way)`` pairs.

        Applies each hit's replacement touch with its exact cycle stamp (LRU
        state stays bit-identical to stepping) and advances the hit counter
        once for the whole batch.  When the policy never reads access history
        (random replacement), the stamping loop is skipped outright —
        ``count_read_hits`` is the even cheaper entry point for callers that
        know this up front and skip building the stamp columns too.
        """
        if self.replacement.uses_access_history:
            all_sets = self._sets
            on_access = self.replacement.on_access
            for set_index, way, cycle in zip(set_indices, ways, cycles, strict=True):
                on_access(all_sets[set_index], way, cycle)
        self._c_read_hits.value += len(set_indices)

    def count_read_hits(self, count: int) -> None:
        """Advance the read-hit statistic for ``count`` pre-probed hits whose
        replacement touches are droppable (``uses_access_history`` is False —
        the caller's responsibility to check)."""
        self._c_read_hits.value += count

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool, cycle: int) -> AccessResult:
        """Perform one access and update the cache state.

        Returns an :class:`AccessResult` describing hit/miss and whether a
        dirty victim had to be written back.
        """
        set_index = self.placement.set_index(address)
        tag = self.placement.tag(address)
        ways = self._sets[set_index]
        way = self._find_way(set_index, tag)

        if way is not None:
            self.replacement.on_access(ways, way, cycle)
            if is_write:
                if self.write_back:
                    ways[way].dirty = True
                self._c_write_hits.value += 1
            else:
                self._c_read_hits.value += 1
            return AccessResult(hit=True, set_index=set_index)

        # Miss path.
        if is_write:
            self._c_write_misses.value += 1
        else:
            self._c_read_misses.value += 1

        allocate = self.write_allocate or not is_write
        if not allocate:
            # Write miss in a no-write-allocate cache: the write is forwarded
            # to the next level without installing the line.
            return AccessResult(hit=False, set_index=set_index)

        victim_way = self._choose_victim(set_index, cycle)
        victim = ways[victim_way]
        writeback = victim.valid and victim.dirty and self.write_back
        evicted_tag = victim.tag if victim.valid else None
        if writeback:
            self._c_writebacks.value += 1
        if victim.valid:
            self._c_evictions.value += 1
        victim.fill(tag, cycle, dirty=is_write and self.write_back)
        if self._mirror_tags is not None:
            self._mirror_tags[set_index, victim_way] = tag
        self.replacement.on_access(ways, victim_way, cycle)
        return AccessResult(
            hit=False,
            writeback=writeback,
            evicted_tag=evicted_tag,
            set_index=set_index,
        )

    def _choose_victim(self, set_index: int, cycle: int) -> int:
        ways = self._sets[set_index]
        for way, line in enumerate(ways):
            if not line.valid:
                return way
        return self.replacement.select_victim(ways, cycle)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Invalidate every line; returns how many dirty lines were dropped."""
        dirty = 0
        for ways in self._sets:
            for line in ways:
                if line.valid and line.dirty:
                    dirty += 1
                line.invalidate()
        if self._mirror_tags is not None:
            self._mirror_tags.fill(self.MIRROR_EMPTY)
        return dirty

    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        valid = sum(line.valid for ways in self._sets for line in ways)
        return valid / self.geometry.num_lines

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self._c_read_hits.value + self._c_write_hits.value

    @property
    def misses(self) -> int:
        return self._c_read_misses.value + self._c_write_misses.value

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        for ways in self._sets:
            for line in ways:
                line.invalidate()
                line.last_used = 0
        if self._mirror_tags is not None:
            self._mirror_tags.fill(self.MIRROR_EMPTY)
        self.stats.reset()
