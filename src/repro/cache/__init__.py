"""Cache hierarchy: generic set-associative cache, private L1s and the
partitioned shared L2, with the random placement/replacement policies the
paper's MBPTA-compliant platform uses."""

from .block import AccessResult, CacheLine
from .cache import SetAssociativeCache
from .l1 import L1AccessOutcome, L1Cache, build_l1_cache
from .l2 import L2BusSlave, PartitionedL2, build_l2
from .placement import ModuloPlacement, PlacementPolicy, RandomPlacement
from .replacement import LRUReplacement, RandomReplacement, ReplacementPolicy

__all__ = [
    "AccessResult",
    "CacheLine",
    "SetAssociativeCache",
    "L1Cache",
    "L1AccessOutcome",
    "build_l1_cache",
    "PartitionedL2",
    "L2BusSlave",
    "build_l2",
    "PlacementPolicy",
    "ModuloPlacement",
    "RandomPlacement",
    "ReplacementPolicy",
    "LRUReplacement",
    "RandomReplacement",
]
