"""Cache replacement policies.

The paper's caches use *random replacement* (again for MBPTA compliance);
LRU is provided as the conventional alternative for comparison experiments
and tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .block import CacheLine

__all__ = ["ReplacementPolicy", "LRUReplacement", "RandomReplacement"]


class ReplacementPolicy(ABC):
    """Chooses the victim way within a set when a fill needs space."""

    #: Whether the policy ever *reads* the access history it is notified of
    #: (``last_used`` stamps).  LRU does; random replacement accepts the
    #: notifications but never looks at them, so bulk paths (the batch
    #: interpreter's read-hit commit) may skip the per-line stamping loop
    #: entirely without changing any observable behaviour.
    uses_access_history: bool = True

    @abstractmethod
    def select_victim(self, ways: list[CacheLine], cycle: int) -> int:
        """Return the index of the way to evict.

        Called only when every way in the set is valid; invalid ways are
        filled first by the cache itself.
        """

    def on_access(self, ways: list[CacheLine], way: int, cycle: int) -> None:
        """Notification that ``way`` was touched at ``cycle`` (hit or fill)."""
        ways[way].last_used = cycle


class LRUReplacement(ReplacementPolicy):
    """Evict the least recently used way."""

    def select_victim(self, ways: list[CacheLine], cycle: int) -> int:
        return min(range(len(ways)), key=lambda i: ways[i].last_used)


class RandomReplacement(ReplacementPolicy):
    """Evict a uniformly random way (MBPTA-compliant)."""

    uses_access_history = False

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def select_victim(self, ways: list[CacheLine], cycle: int) -> int:
        return int(self._rng.integers(0, len(ways)))
