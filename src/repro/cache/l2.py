"""Shared, partitioned L2 cache and the bus-slave view of the memory hierarchy.

The paper's platform shares one L2 cache among the four cores but *partitions*
it per core, so one core's misses never evict another core's lines (a common
choice in real-time multicores because it removes cache-contention
interference; the bus then remains the only shared resource, which is what
the paper studies).  The L2 is write-back, so a miss that evicts a dirty
victim performs two memory accesses — the 56-cycle worst case that defines
``MaxL``.

:class:`L2BusSlave` is the object the bus talks to: it receives a granted
:class:`~repro.bus.transaction.BusRequest`, walks the L2 partition of the
requesting core and the memory controller behind it, and returns the number
of cycles the (non-split) bus is held.
"""

from __future__ import annotations

import numpy as np

from ..bus.latency import LatencyTable, TransactionClass
from ..bus.transaction import AccessType, BusRequest
from ..memory.controller import MemoryController
from ..sim.config import CacheGeometry
from ..sim.errors import ConfigurationError
from ..sim.stats import StatGroup
from .cache import SetAssociativeCache
from .placement import ModuloPlacement, RandomPlacement
from .replacement import LRUReplacement, RandomReplacement

__all__ = ["PartitionedL2", "L2BusSlave", "build_l2"]


class PartitionedL2:
    """A shared L2 split into per-core partitions."""

    def __init__(self, partitions: list[SetAssociativeCache]) -> None:
        if not partitions:
            raise ConfigurationError("the L2 needs at least one partition")
        self.partitions = partitions

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def partition_for(self, core_id: int) -> SetAssociativeCache:
        """The partition owned by ``core_id``."""
        return self.partitions[core_id % self.num_partitions]

    def access(self, core_id: int, address: int, is_write: bool, cycle: int):
        """Access the partition of ``core_id``; same result type as the cache."""
        return self.partition_for(core_id).access(address, is_write, cycle)

    def miss_rate(self) -> float:
        accesses = sum(p.accesses for p in self.partitions)
        misses = sum(p.misses for p in self.partitions)
        if not accesses:
            return 0.0
        return misses / accesses

    def reset(self) -> None:
        for partition in self.partitions:
            partition.reset()


def build_l2(
    geometry: CacheGeometry,
    num_cores: int,
    partitioned: bool,
    random_caches: bool,
    rng: np.random.Generator,
) -> PartitionedL2:
    """Build the shared L2 (partitioned or unified) with the requested policies.

    When partitioned, each core receives ``1/num_cores`` of the total capacity
    (sets are divided, associativity preserved), matching the paper's setup.
    When unified, a single cache is shared by every core (useful for
    ablations; note this reintroduces inter-core cache interference).
    """
    def make_cache(name: str, geom: CacheGeometry) -> SetAssociativeCache:
        if random_caches:
            placement = RandomPlacement(
                geom.num_sets, geom.line_bytes, seed=int(rng.integers(0, 2**63))
            )
            replacement = RandomReplacement(rng)
        else:
            placement = ModuloPlacement(geom.num_sets, geom.line_bytes)
            replacement = LRUReplacement()
        return SetAssociativeCache(
            name=name,
            geometry=geom,
            placement=placement,
            replacement=replacement,
            write_back=True,
            write_allocate=True,
        )

    if not partitioned:
        return PartitionedL2([make_cache("l2", geometry)])

    partition_size = geometry.size_bytes // num_cores
    min_size = geometry.line_bytes * geometry.associativity
    if partition_size < min_size:
        raise ConfigurationError(
            "L2 too small to partition: each partition needs at least "
            f"{min_size} bytes, got {partition_size}"
        )
    partition_geometry = CacheGeometry(
        size_bytes=partition_size,
        line_bytes=geometry.line_bytes,
        associativity=geometry.associativity,
    )
    partitions = [
        make_cache(f"l2.partition{core}", partition_geometry) for core in range(num_cores)
    ]
    return PartitionedL2(partitions)


class L2BusSlave:
    """Bus-slave adapter: resolves granted requests against L2 + memory.

    With the default fixed memory model every transaction class has a frozen
    duration (the paper's latency table).  With ``dynamic_memory=True`` (the
    banked DRAM model) the memory-touching classes are priced per transaction
    instead: the slave hands the controller the transaction's real access
    list — victim writeback address reconstructed from the evicted tag, then
    the line fetch — and adds the returned DRAM latency to the bus overhead.
    Either way the duration is resolved synchronously at grant time, so all
    kernel modes observe identical bank-state evolution.
    """

    def __init__(
        self,
        l2: PartitionedL2,
        memory: MemoryController,
        latency_table: LatencyTable,
        dynamic_memory: bool = False,
    ) -> None:
        self.l2 = l2
        self.memory = memory
        self.latency_table = latency_table
        self.dynamic_memory = dynamic_memory
        self._line_bytes = l2.partitions[0].placement.line_bytes
        self._bus_overhead = latency_table.timings.bus_overhead
        self.stats = StatGroup(name="l2_slave.stats")
        # resolve() runs once per bus transaction; bind the per-class counter
        # family up front instead of formatting its key on every call.
        self._c_requests = self.stats.counter("requests")
        self._c_by_class = {
            kind: self.stats.counter(f"class_{kind.value}") for kind in TransactionClass
        }
        self._h_duration = self.stats.histogram("duration")
        # The timings are frozen; flatten the per-class duration chain into
        # one dict lookup per transaction.
        self._duration_by_class = {
            kind: latency_table.duration(kind) for kind in TransactionClass
        }

    def classify(self, request: BusRequest, cycle: int) -> TransactionClass:
        """Serve ``request`` functionally and classify its timing behaviour."""
        if request.access is AccessType.ATOMIC:
            # Atomic operations bypass the L2 allocation decision: by
            # definition they perform an indivisible read+write to memory.
            self.memory.access(read=True)
            self.memory.access(read=False)
            return TransactionClass.ATOMIC

        result = self.l2.access(
            request.master_id, request.address, request.access.is_write, cycle
        )
        if result.hit:
            if request.access.is_write:
                return TransactionClass.L2_HIT_WRITE
            return TransactionClass.L2_HIT_READ
        # L2 miss: one memory access for the fetch, plus one more when a
        # dirty victim must be written back first.
        self.memory.access(read=True)
        if result.writeback:
            self.memory.access(read=False)
            return TransactionClass.L2_MISS_DIRTY
        return TransactionClass.L2_MISS_CLEAN

    def _serve_dynamic(self, request: BusRequest, cycle: int) -> tuple[TransactionClass, int]:
        """Serve ``request`` with per-transaction DRAM timing (banked model)."""
        address = request.address
        if request.access is AccessType.ATOMIC:
            latency = self.memory.transaction(((address, True), (address, False)))
            return TransactionClass.ATOMIC, latency + self._bus_overhead

        result = self.l2.access(request.master_id, address, request.access.is_write, cycle)
        if result.hit:
            if request.access.is_write:
                kind = TransactionClass.L2_HIT_WRITE
            else:
                kind = TransactionClass.L2_HIT_READ
            return kind, self._duration_by_class[kind]
        if result.writeback:
            # The tag is the full block address, so the victim's memory
            # address is exactly tag * line_bytes.  Program order writes the
            # dirty victim back before fetching the new line; FR-FCFS may
            # reorder the pair when the fetch row is already open.
            victim = result.evicted_tag * self._line_bytes
            latency = self.memory.transaction(((victim, False), (address, True)))
            return TransactionClass.L2_MISS_DIRTY, latency + self._bus_overhead
        latency = self.memory.transaction(((address, True),))
        return TransactionClass.L2_MISS_CLEAN, latency + self._bus_overhead

    def resolve(self, request: BusRequest, cycle: int) -> int:
        """Bus-slave protocol entry point: return the bus hold time in cycles."""
        if self.dynamic_memory:
            kind, duration = self._serve_dynamic(request, cycle)
        else:
            kind = self.classify(request, cycle)
            duration = self._duration_by_class[kind]
        request.annotate(transaction_class=kind.value)
        self._c_by_class[kind].value += 1
        self._c_requests.value += 1
        self._h_duration.add(duration)
        return duration

    def reset(self) -> None:
        self.l2.reset()
        self.memory.reset()
        self.stats.reset()
