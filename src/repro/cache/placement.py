"""Cache placement (index) functions.

The paper's platform uses *random placement* caches (Hernandez et al., DASIA
2015): the mapping from address to cache set is parameterised by a random
seed that changes between runs, so the sets that conflict with each other
change from run to run.  Together with random replacement this is what gives
execution times the run-to-run variability that MBPTA requires.

Two placement functions are provided:

* :class:`ModuloPlacement` — the conventional design (low-order index bits);
* :class:`RandomPlacement` — a seeded hash of the block address, equivalent in
  behaviour to the hardware parametric hash used on the FPGA platform.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["PlacementPolicy", "ModuloPlacement", "RandomPlacement"]

_U64 = np.uint64


class PlacementPolicy(ABC):
    """Maps a block address to a set index."""

    def __init__(self, num_sets: int, line_bytes: int) -> None:
        if num_sets <= 0 or line_bytes <= 0:
            raise ValueError("num_sets and line_bytes must be positive")
        self.num_sets = num_sets
        self.line_bytes = line_bytes
        # Placement runs on every cache access; precompute shift/mask forms
        # of the divisions/modulos for the (ubiquitous) power-of-two sizes.
        self._offset_shift = (
            line_bytes.bit_length() - 1 if line_bytes & (line_bytes - 1) == 0 else None
        )
        self._set_mask = num_sets - 1 if num_sets & (num_sets - 1) == 0 else None

    def block_address(self, address: int) -> int:
        """Strip the offset bits from ``address``."""
        if self._offset_shift is not None:
            return address >> self._offset_shift
        return address // self.line_bytes

    @abstractmethod
    def set_index(self, address: int) -> int:
        """Set index for ``address`` (must be in ``range(num_sets)``)."""

    def tag(self, address: int) -> int:
        """Tag stored for ``address``.

        The full block address is used as the tag.  This is slightly wasteful
        in hardware but exact in simulation and, importantly, remains correct
        for random placement where the set index is not a simple address
        slice (two different blocks mapping to the same set never alias).
        """
        return self.block_address(address)

    # ------------------------------------------------------------------
    # Vectorised forms (whole address columns at once)
    # ------------------------------------------------------------------
    def block_address_array(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`block_address` over a column of addresses.

        Returns ``uint64`` block addresses, bit-identical per element to the
        scalar path.  This is what the batch interpreter uses to precompute a
        whole trace's placement in one call per run.
        """
        blocks = np.asarray(addresses, dtype=np.uint64)
        if self._offset_shift is not None:
            return blocks >> _U64(self._offset_shift)
        return blocks // _U64(self.line_bytes)

    def tag_array(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`tag` (the block address, see above)."""
        return self.block_address_array(addresses)

    def set_index_array(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`set_index`, bit-identical per element."""
        return self._set_indices_from_blocks(
            self.block_address_array(addresses), addresses
        )

    def _set_indices_from_blocks(
        self, blocks: np.ndarray, addresses: np.ndarray
    ) -> np.ndarray:
        """Set indices for already-computed block addresses.

        The generic fallback evaluates the scalar mapping per element (from
        the raw addresses); subclasses override it with fully vectorised
        arithmetic on ``blocks``.
        """
        return np.array(
            [self.set_index(int(a)) for a in np.asarray(addresses)], dtype=np.int64
        )

    def index_tag_arrays(self, addresses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(set indices, tags)`` for a whole address column, one block pass.

        Equivalent to ``(set_index_array(a), tag_array(a))`` but shares the
        block-address computation, which is what the per-run batch-interpreter
        precompute calls.
        """
        blocks = self.block_address_array(addresses)
        return self._set_indices_from_blocks(blocks, addresses), blocks


class ModuloPlacement(PlacementPolicy):
    """Conventional placement: low-order block-address bits select the set."""

    def set_index(self, address: int) -> int:
        if self._set_mask is not None:
            return self.block_address(address) & self._set_mask
        return self.block_address(address) % self.num_sets

    def _set_indices_from_blocks(
        self, blocks: np.ndarray, addresses: np.ndarray
    ) -> np.ndarray:
        if self._set_mask is not None:
            return (blocks & _U64(self._set_mask)).astype(np.int64)
        return (blocks % _U64(self.num_sets)).astype(np.int64)


class RandomPlacement(PlacementPolicy):
    """Seeded parametric-hash placement (MBPTA-style random placement).

    The mapping is a deterministic function of ``(seed, block address)`` built
    from a splitmix64-style mixer, so it is stable within a run, uniformly
    distributed across sets, and different runs (different seeds) see
    different conflict patterns — the property MBPTA exploits.
    """

    def __init__(self, num_sets: int, line_bytes: int, seed: int) -> None:
        super().__init__(num_sets, line_bytes)
        self.seed = int(seed) & 0xFFFFFFFFFFFFFFFF

    def _mix(self, value: int) -> int:
        """splitmix64 finaliser — cheap, well-distributed 64-bit mixing."""
        value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return value ^ (value >> 31)

    def set_index(self, address: int) -> int:
        block = self.block_address(address)
        if self._set_mask is not None:
            return self._mix(block ^ self.seed) & self._set_mask
        return self._mix(block ^ self.seed) % self.num_sets

    def _set_indices_from_blocks(
        self, blocks: np.ndarray, addresses: np.ndarray
    ) -> np.ndarray:
        """Vectorised splitmix64 placement (wrapping uint64 arithmetic is
        exactly the scalar path's masked Python-int arithmetic)."""
        value = blocks ^ _U64(self.seed)
        with np.errstate(over="ignore"):
            value = value + _U64(0x9E3779B97F4A7C15)
            value = (value ^ (value >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
            value = (value ^ (value >> _U64(27))) * _U64(0x94D049BB133111EB)
            value = value ^ (value >> _U64(31))
        if self._set_mask is not None:
            return (value & _U64(self._set_mask)).astype(np.int64)
        return (value % _U64(self.num_sets)).astype(np.int64)
