"""Cache line (block) bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheLine", "AccessResult"]


@dataclass(slots=True)
class CacheLine:
    """State of one cache line within a set.

    ``slots=True``: simulations allocate tens of thousands of lines and touch
    them on every access, so the dict-free layout measurably trims both
    memory and attribute-access time.
    """

    tag: int = 0
    valid: bool = False
    dirty: bool = False
    #: Insertion / last-touch timestamp used by LRU replacement.
    last_used: int = 0

    def fill(self, tag: int, cycle: int, dirty: bool = False) -> None:
        """Install a new block in this line."""
        self.tag = tag
        self.valid = True
        self.dirty = dirty
        self.last_used = cycle

    def invalidate(self) -> None:
        self.valid = False
        self.dirty = False


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one cache access.

    Attributes
    ----------
    hit:
        Whether the access hit in the cache.
    writeback:
        Whether serving the access required evicting a dirty victim (only
        possible on misses in a write-back cache); this is what turns an L2
        miss into the 2-memory-access worst case of the paper.
    evicted_tag:
        Tag of the victim line when one was evicted, else ``None``.
    set_index:
        The set that was accessed (useful for tests and placement studies).
    """

    hit: bool
    writeback: bool = False
    evicted_tag: int | None = None
    set_index: int = 0
