"""Implementation overheads (Section IV-B).

The paper synthesises the 4-core LEON3 with and without CBA on the TerasIC
DE4 FPGA: occupancy grows from 73% by far less than 0.1%, and the 100 MHz
target frequency is preserved.  Without a synthesis flow we reproduce the
comparison with the structural RTL cost model of :mod:`repro.hw.rtl_cost`:
count the state and logic the CBA addition needs (budget counters, full
comparators, COMP bits, mode control) and relate it to the arbiter it extends
and to the whole multicore.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..campaign.campaign import Campaign, aggregate_by_label
from ..campaign.jobs import CampaignJob, RunOutcome
from ..hw.rtl_cost import arbiter_cost, cba_addon_cost, overhead_report, platform_cost

__all__ = ["OverheadResult", "campaign_runner", "run_overheads"]


@dataclass(frozen=True)
class OverheadResult:
    """The overhead comparison in a structured form."""

    base_policy: str
    base_arbiter_aluts: int
    cba_addon_aluts: int
    platform_aluts: int
    addon_vs_arbiter: float
    addon_vs_platform_percent: float
    paper_claim_percent_upper_bound: float
    claim_holds: bool

    def summary(self) -> dict[str, object]:
        return {
            "base_policy": self.base_policy,
            "base_arbiter_aluts": self.base_arbiter_aluts,
            "cba_addon_aluts": self.cba_addon_aluts,
            "platform_aluts": self.platform_aluts,
            "addon_vs_arbiter": self.addon_vs_arbiter,
            "addon_vs_platform_percent": self.addon_vs_platform_percent,
            "paper_claim_percent_upper_bound": self.paper_claim_percent_upper_bound,
            "claim_holds": self.claim_holds,
        }


def campaign_runner(job: CampaignJob, run_index: int) -> RunOutcome:
    """Campaign scenario runner: the structural overhead comparison.

    Deterministic and cheap; the full summary is the payload so resumed
    campaigns rebuild :class:`OverheadResult` straight from the store.
    """
    result = _run_overheads_direct(**job.options_dict)  # type: ignore[arg-type]
    return RunOutcome(value=float(result.cba_addon_aluts), payload=result.summary())


def _result_from_payload(payload: dict) -> OverheadResult:
    return OverheadResult(
        base_policy=str(payload["base_policy"]),
        base_arbiter_aluts=int(payload["base_arbiter_aluts"]),
        cba_addon_aluts=int(payload["cba_addon_aluts"]),
        platform_aluts=int(payload["platform_aluts"]),
        addon_vs_arbiter=float(payload["addon_vs_arbiter"]),
        addon_vs_platform_percent=float(payload["addon_vs_platform_percent"]),
        paper_claim_percent_upper_bound=float(
            payload["paper_claim_percent_upper_bound"]
        ),
        claim_holds=bool(payload["claim_holds"]),
    )


def run_overheads(
    base_policy: str = "random_permutations",
    num_masters: int = 4,
    max_latency: int = 56,
    campaign: Campaign | None = None,
) -> OverheadResult:
    """Produce the Section IV-B overhead comparison."""
    campaign = campaign if campaign is not None else Campaign()
    job = CampaignJob(
        label="overheads",
        scenario="overheads",
        options=(
            ("base_policy", base_policy),
            ("num_masters", num_masters),
            ("max_latency", max_latency),
        ),
    )
    aggregated = aggregate_by_label([job], campaign.run([job]))
    return _result_from_payload(aggregated["overheads"].payloads[0])


def _run_overheads_direct(
    base_policy: str = "random_permutations",
    num_masters: int = 4,
    max_latency: int = 56,
) -> OverheadResult:
    """The in-process computation (called by the campaign runner)."""
    report = overhead_report(base_policy, num_masters, max_latency)
    base = arbiter_cost(base_policy, num_masters, max_latency)
    addon = cba_addon_cost(num_masters, max_latency)
    platform = platform_cost()
    return OverheadResult(
        base_policy=base_policy,
        base_arbiter_aluts=base.alut_equivalent,
        cba_addon_aluts=addon.alut_equivalent,
        platform_aluts=platform.alut_equivalent,
        addon_vs_arbiter=float(report["addon_vs_arbiter"]),
        addon_vs_platform_percent=float(report["addon_vs_platform_percent"]),
        paper_claim_percent_upper_bound=float(report["paper_claim_percent_upper_bound"]),
        claim_holds=bool(report["claim_holds"]),
    )
