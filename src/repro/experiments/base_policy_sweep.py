"""Ablation: CBA as a filter over different base arbitration policies.

Section III-A states that CBA is not tied to one arbitration policy — it only
filters which requestors are eligible, and "any arbitration policy can be
applied" underneath (the paper lists round-robin, lottery, random
permutations and TDMA as MBPTA-compatible choices, and integrates random
permutations on the FPGA).  This sweep verifies the claim on the simulated
platform: for each base policy it measures the task under analysis in
isolation and under maximum contention, with and without the CBA filter, and
reports the contention slowdowns.

Expected shape: whatever the base policy, adding CBA reduces the contention
slowdown of the short-request task and brings it near or below the core
count; the base policies differ only in second-order effects (TDMA wastes
bandwidth on short requests, deterministic round-robin can phase-lock with
budget recovery, randomised policies smooth that out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..platform.presets import paper_bus_timings
from ..platform.scenarios import run_isolation, run_max_contention
from ..sim.config import CBAParameters, PlatformConfig
from ..workloads.base import WorkloadSpec
from ..workloads.eembc import eembc_workload
from .runner import scale_workload

__all__ = ["BasePolicyPoint", "BasePolicySweepResult", "run_base_policy_sweep"]

#: Base policies the sweep covers by default (the MBPTA-amenable ones).
DEFAULT_POLICIES: tuple[str, ...] = (
    "round_robin",
    "lottery",
    "random_permutations",
    "tdma",
)


@dataclass(frozen=True)
class BasePolicyPoint:
    """Results for one (base policy, CBA on/off) combination."""

    policy: str
    use_cba: bool
    isolation_cycles: float
    contention_cycles: float

    @property
    def label(self) -> str:
        return f"{self.policy}{'+CBA' if self.use_cba else ''}"

    def slowdown(self, baseline_isolation: float) -> float:
        return self.contention_cycles / baseline_isolation


@dataclass
class BasePolicySweepResult:
    """All sweep points plus the common normalisation baseline."""

    workload_name: str
    baseline_isolation_cycles: float
    points: list[BasePolicyPoint] = field(default_factory=list)

    def point(self, policy: str, use_cba: bool) -> BasePolicyPoint:
        for candidate in self.points:
            if candidate.policy == policy and candidate.use_cba == use_cba:
                return candidate
        raise KeyError(f"no sweep point for policy={policy!r}, use_cba={use_cba}")

    def contention_slowdown(self, policy: str, use_cba: bool) -> float:
        return self.point(policy, use_cba).slowdown(self.baseline_isolation_cycles)

    def improvement(self, policy: str) -> float:
        """Contention-slowdown ratio no-CBA / CBA for one base policy (>1 = CBA wins)."""
        without = self.contention_slowdown(policy, use_cba=False)
        with_cba = self.contention_slowdown(policy, use_cba=True)
        return without / with_cba

    def policies(self) -> list[str]:
        return sorted({point.policy for point in self.points})


def _config(policy: str, use_cba: bool, num_cores: int) -> PlatformConfig:
    timings = paper_bus_timings()
    return PlatformConfig(
        num_cores=num_cores,
        arbitration=policy,
        use_cba=use_cba,
        cba=CBAParameters(max_latency=timings.max_latency, num_cores=num_cores),
        bus_timings=timings,
    )


def run_base_policy_sweep(
    policies: Sequence[str] = DEFAULT_POLICIES,
    workload: WorkloadSpec | None = None,
    benchmark: str = "matrix",
    num_runs: int = 2,
    seed: int = 23,
    access_scale: float = 0.5,
    num_cores: int = 4,
    tua_core: int = 0,
    max_cycles: int = 5_000_000,
) -> BasePolicySweepResult:
    """Measure every base policy with and without the CBA filter."""
    if workload is None:
        workload = eembc_workload(benchmark)
    workload = scale_workload(workload, access_scale)

    def average(scenario, config) -> float:
        samples = [
            scenario(
                workload, config, seed=seed, run_index=run, tua_core=tua_core,
                max_cycles=max_cycles,
            ).tua_cycles
            for run in range(num_runs)
        ]
        return sum(samples) / len(samples)

    baseline = average(run_isolation, _config("random_permutations", False, num_cores))
    result = BasePolicySweepResult(
        workload_name=workload.name, baseline_isolation_cycles=baseline
    )
    for policy in policies:
        for use_cba in (False, True):
            config = _config(policy, use_cba, num_cores)
            result.points.append(
                BasePolicyPoint(
                    policy=policy,
                    use_cba=use_cba,
                    isolation_cycles=average(run_isolation, config),
                    contention_cycles=average(run_max_contention, config),
                )
            )
    return result
