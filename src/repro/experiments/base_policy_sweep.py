"""Ablation: CBA as a filter over different base arbitration policies.

Section III-A states that CBA is not tied to one arbitration policy — it only
filters which requestors are eligible, and "any arbitration policy can be
applied" underneath (the paper lists round-robin, lottery, random
permutations and TDMA as MBPTA-compatible choices, and integrates random
permutations on the FPGA).  This sweep verifies the claim on the simulated
platform: for each base policy it measures the task under analysis in
isolation and under maximum contention, with and without the CBA filter, and
reports the contention slowdowns.

Expected shape: whatever the base policy, adding CBA reduces the contention
slowdown of the short-request task and brings it near or below the core
count; the base policies differ only in second-order effects (TDMA wastes
bandwidth on short requests, deterministic round-robin can phase-lock with
budget recovery, randomised policies smooth that out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..campaign.campaign import Campaign, aggregate_by_label
from ..campaign.jobs import seed_block_jobs
from ..platform.presets import paper_bus_timings
from ..sim.config import CBAParameters, PlatformConfig
from ..workloads.base import WorkloadSpec
from ..workloads.eembc import eembc_workload
from .runner import scale_workload

__all__ = ["BasePolicyPoint", "BasePolicySweepResult", "run_base_policy_sweep"]

#: Base policies the sweep covers by default (the MBPTA-amenable ones).
DEFAULT_POLICIES: tuple[str, ...] = (
    "round_robin",
    "lottery",
    "random_permutations",
    "tdma",
)


@dataclass(frozen=True)
class BasePolicyPoint:
    """Results for one (base policy, CBA on/off) combination."""

    policy: str
    use_cba: bool
    isolation_cycles: float
    contention_cycles: float

    @property
    def label(self) -> str:
        return f"{self.policy}{'+CBA' if self.use_cba else ''}"

    def slowdown(self, baseline_isolation: float) -> float:
        return self.contention_cycles / baseline_isolation


@dataclass
class BasePolicySweepResult:
    """All sweep points plus the common normalisation baseline."""

    workload_name: str
    baseline_isolation_cycles: float
    points: list[BasePolicyPoint] = field(default_factory=list)

    def point(self, policy: str, use_cba: bool) -> BasePolicyPoint:
        for candidate in self.points:
            if candidate.policy == policy and candidate.use_cba == use_cba:
                return candidate
        raise KeyError(f"no sweep point for policy={policy!r}, use_cba={use_cba}")

    def contention_slowdown(self, policy: str, use_cba: bool) -> float:
        return self.point(policy, use_cba).slowdown(self.baseline_isolation_cycles)

    def improvement(self, policy: str) -> float:
        """Contention-slowdown ratio no-CBA / CBA for one base policy (>1 = CBA wins)."""
        without = self.contention_slowdown(policy, use_cba=False)
        with_cba = self.contention_slowdown(policy, use_cba=True)
        return without / with_cba

    def policies(self) -> list[str]:
        return sorted({point.policy for point in self.points})


def _config(policy: str, use_cba: bool, num_cores: int) -> PlatformConfig:
    timings = paper_bus_timings()
    return PlatformConfig(
        num_cores=num_cores,
        arbitration=policy,
        use_cba=use_cba,
        cba=CBAParameters(max_latency=timings.max_latency, num_cores=num_cores),
        bus_timings=timings,
    )


def run_base_policy_sweep(
    policies: Sequence[str] = DEFAULT_POLICIES,
    workload: WorkloadSpec | None = None,
    benchmark: str = "matrix",
    num_runs: int = 2,
    seed: int = 23,
    access_scale: float = 0.5,
    num_cores: int = 4,
    tua_core: int = 0,
    max_cycles: int = 5_000_000,
    campaign: Campaign | None = None,
) -> BasePolicySweepResult:
    """Measure every base policy with and without the CBA filter.

    The full (policy x CBA x scenario) grid is expanded into campaign jobs
    up front, so a parallel ``campaign`` executes the whole sweep
    concurrently.  Note the baseline shares its jobs with the
    ``random_permutations`` isolation point — the campaign deduplicates them
    by content hash and runs them once.
    """
    campaign = campaign if campaign is not None else Campaign()
    if workload is None:
        workload = eembc_workload(benchmark)
    workload = scale_workload(workload, access_scale)

    def block(label: str, scenario: str, config: PlatformConfig):
        return seed_block_jobs(
            label, scenario, seed=seed, num_runs=num_runs,
            workload=workload, config=config, tua_core=tua_core,
            max_cycles=max_cycles,
        )

    jobs = block(
        "baseline/iso", "isolation", _config("random_permutations", False, num_cores)
    )
    for policy in policies:
        for use_cba in (False, True):
            config = _config(policy, use_cba, num_cores)
            tag = f"{policy}{'+CBA' if use_cba else ''}"
            jobs += block(f"{tag}/iso", "isolation", config)
            jobs += block(f"{tag}/con", "max_contention", config)
    aggregated = aggregate_by_label(jobs, campaign.run(jobs))

    result = BasePolicySweepResult(
        workload_name=workload.name,
        baseline_isolation_cycles=aggregated["baseline/iso"].mean,
    )
    for policy in policies:
        for use_cba in (False, True):
            tag = f"{policy}{'+CBA' if use_cba else ''}"
            result.points.append(
                BasePolicyPoint(
                    policy=policy,
                    use_cba=use_cba,
                    isolation_cycles=aggregated[f"{tag}/iso"].mean,
                    contention_cycles=aggregated[f"{tag}/con"].mean,
                )
            )
    return result
