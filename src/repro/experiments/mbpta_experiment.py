"""MBPTA compatibility experiment (Section III-B).

The paper's WCET argument has two parts: (1) execution-time observations
collected in WCET-estimation mode can be treated as i.i.d. (the platform's
randomisation is what makes MBPTA applicable), and (2) the analysis-time
scenario creates at least as much contention as operation can, so the fitted
pWCET curve upper-bounds deployment behaviour.

This experiment regenerates both checks on the simulated platform for a
chosen benchmark and bus configuration:

* collect ``num_runs`` execution times under the WCET-estimation scenario
  (TuA with zero initial budget, Table I contenders) and run the MBPTA
  pipeline — i.i.d. battery, Gumbel tail fit, pWCET curve;
* collect a smaller set of operation-mode (maximum contention) execution
  times and confirm the pWCET bound at a reference exceedance probability
  dominates every one of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..campaign.campaign import Campaign, aggregate_by_label
from ..campaign.jobs import seed_block_jobs
from ..mbpta.protocol import MBPTAResult, mbpta_from_samples
from ..platform.presets import config_by_label
from ..workloads.eembc import eembc_workload
from .runner import scale_workload

__all__ = ["MBPTAExperimentResult", "run_mbpta_experiment"]


@dataclass(frozen=True)
class MBPTAExperimentResult:
    """pWCET analysis of one benchmark on one bus configuration.

    Both sample vectors are read-only ``float64`` arrays, flowing unchanged
    from the campaign aggregation layer.
    """

    benchmark: str
    configuration: str
    mbpta: MBPTAResult
    operation_samples: np.ndarray
    reference_exceedance: float

    @property
    def pwcet_bound(self) -> float:
        return self.mbpta.wcet_at(self.reference_exceedance)

    @property
    def bound_dominates_operation(self) -> bool:
        """Whether the pWCET bound covers every operation-mode observation."""
        if len(self.operation_samples) == 0:
            return True
        return self.pwcet_bound >= float(np.max(self.operation_samples))

    def summary(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "configuration": self.configuration,
            "runs": len(self.mbpta.samples),
            "iid_ok": self.mbpta.iid_ok,
            "gof_ok": self.mbpta.evt.acceptable,
            "observed_max_analysis": self.mbpta.observed_max,
            "observed_max_operation": float(np.max(self.operation_samples))
            if len(self.operation_samples)
            else 0.0,
            "pwcet_bound": self.pwcet_bound,
            "reference_exceedance": self.reference_exceedance,
            "bound_dominates_operation": self.bound_dominates_operation,
        }


def run_mbpta_experiment(
    benchmark: str = "canrdr",
    configuration: str = "CBA",
    num_runs: int = 40,
    operation_runs: int = 10,
    seed: int = 7,
    access_scale: float = 0.25,
    block_size: int = 5,
    reference_exceedance: float = 1e-12,
    tua_core: int = 0,
    max_cycles: int = 5_000_000,
    campaign: Campaign | None = None,
) -> MBPTAExperimentResult:
    """Run the MBPTA campaign for ``benchmark`` on ``configuration``.

    Both measurement blocks — the analysis-time (WCET-estimation) runs and
    the operation-mode (maximum-contention) cross-check runs — are expressed
    as campaign jobs, so a ``campaign`` with a parallel executor collects
    them concurrently and an artifact store makes large campaigns resumable.
    """
    campaign = campaign if campaign is not None else Campaign()
    config = config_by_label(configuration, tua_core=tua_core)
    workload = scale_workload(eembc_workload(benchmark), access_scale)

    prefix = f"{benchmark}/{configuration}"
    jobs = seed_block_jobs(
        f"{prefix}/analysis",
        "wcet_estimation",
        seed=seed,
        num_runs=num_runs,
        workload=workload,
        config=config,
        tua_core=tua_core,
        max_cycles=max_cycles,
    )
    jobs += seed_block_jobs(
        f"{prefix}/operation",
        "max_contention",
        seed=seed + 1,
        num_runs=operation_runs,
        workload=workload,
        config=config,
        tua_core=tua_core,
        max_cycles=max_cycles,
    )
    aggregated = aggregate_by_label(jobs, campaign.run(jobs))

    mbpta = mbpta_from_samples(
        aggregated[f"{prefix}/analysis"].samples,
        block_size=block_size,
        metadata={"benchmark": benchmark, "configuration": configuration},
    )
    operation_samples = aggregated[f"{prefix}/operation"].samples

    return MBPTAExperimentResult(
        benchmark=benchmark,
        configuration=configuration,
        mbpta=mbpta,
        operation_samples=operation_samples,
        reference_exceedance=reference_exceedance,
    )
