"""MBPTA compatibility experiment (Section III-B).

The paper's WCET argument has two parts: (1) execution-time observations
collected in WCET-estimation mode can be treated as i.i.d. (the platform's
randomisation is what makes MBPTA applicable), and (2) the analysis-time
scenario creates at least as much contention as operation can, so the fitted
pWCET curve upper-bounds deployment behaviour.

This experiment regenerates both checks on the simulated platform for a
chosen benchmark and bus configuration:

* collect ``num_runs`` execution times under the WCET-estimation scenario
  (TuA with zero initial budget, Table I contenders) and run the MBPTA
  pipeline — i.i.d. battery, Gumbel tail fit, pWCET curve;
* collect a smaller set of operation-mode (maximum contention) execution
  times and confirm the pWCET bound at a reference exceedance probability
  dominates every one of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mbpta.protocol import MBPTAResult, mbpta_from_samples
from ..platform.presets import config_by_label
from ..platform.scenarios import run_max_contention, run_wcet_estimation
from ..workloads.eembc import eembc_workload
from .runner import scale_workload

__all__ = ["MBPTAExperimentResult", "run_mbpta_experiment"]


@dataclass(frozen=True)
class MBPTAExperimentResult:
    """pWCET analysis of one benchmark on one bus configuration."""

    benchmark: str
    configuration: str
    mbpta: MBPTAResult
    operation_samples: tuple[float, ...]
    reference_exceedance: float

    @property
    def pwcet_bound(self) -> float:
        return self.mbpta.wcet_at(self.reference_exceedance)

    @property
    def bound_dominates_operation(self) -> bool:
        """Whether the pWCET bound covers every operation-mode observation."""
        if not self.operation_samples:
            return True
        return self.pwcet_bound >= max(self.operation_samples)

    def summary(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "configuration": self.configuration,
            "runs": len(self.mbpta.samples),
            "iid_ok": self.mbpta.iid_ok,
            "gof_ok": self.mbpta.evt.acceptable,
            "observed_max_analysis": self.mbpta.observed_max,
            "observed_max_operation": max(self.operation_samples)
            if self.operation_samples
            else 0.0,
            "pwcet_bound": self.pwcet_bound,
            "reference_exceedance": self.reference_exceedance,
            "bound_dominates_operation": self.bound_dominates_operation,
        }


def run_mbpta_experiment(
    benchmark: str = "canrdr",
    configuration: str = "CBA",
    num_runs: int = 40,
    operation_runs: int = 10,
    seed: int = 7,
    access_scale: float = 0.25,
    block_size: int = 5,
    reference_exceedance: float = 1e-12,
    tua_core: int = 0,
    max_cycles: int = 5_000_000,
) -> MBPTAExperimentResult:
    """Run the MBPTA campaign for ``benchmark`` on ``configuration``."""
    config = config_by_label(configuration, tua_core=tua_core)
    workload = scale_workload(eembc_workload(benchmark), access_scale)

    analysis_samples = []
    for run_index in range(num_runs):
        result = run_wcet_estimation(
            workload,
            config,
            seed=seed,
            run_index=run_index,
            tua_core=tua_core,
            max_cycles=max_cycles,
        )
        analysis_samples.append(float(result.tua_cycles))

    mbpta = mbpta_from_samples(
        analysis_samples,
        block_size=block_size,
        metadata={"benchmark": benchmark, "configuration": configuration},
    )

    operation_samples = []
    for run_index in range(operation_runs):
        result = run_max_contention(
            workload,
            config,
            seed=seed + 1,
            run_index=run_index,
            tua_core=tua_core,
            max_cycles=max_cycles,
        )
        operation_samples.append(float(result.tua_cycles))

    return MBPTAExperimentResult(
        benchmark=benchmark,
        configuration=configuration,
        mbpta=mbpta,
        operation_samples=tuple(operation_samples),
        reference_exceedance=reference_exceedance,
    )
