"""Shared experiment utilities.

Every experiment repeats randomised runs and averages the task-under-analysis
execution time; this module centralises that loop so the figure/table modules
stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..analysis.metrics import MeanWithConfidence, mean_with_confidence
from ..platform.scenarios import ScenarioResult
from ..sim.config import PlatformConfig
from ..workloads.base import WorkloadSpec

__all__ = ["RepeatedRuns", "repeat_scenario", "runs_from_samples", "scale_workload"]

ScenarioRunner = Callable[..., ScenarioResult]


@dataclass(frozen=True)
class RepeatedRuns:
    """Execution-time statistics over repeated randomised runs.

    ``samples`` is a read-only ``float64`` array, matching the campaign
    aggregation layer so sample vectors flow through without conversion.
    """

    label: str
    samples: np.ndarray
    stats: MeanWithConfidence

    @property
    def mean_cycles(self) -> float:
        return self.stats.mean

    @property
    def max_cycles(self) -> float:
        return float(self.samples.max())

    @property
    def min_cycles(self) -> float:
        return float(self.samples.min())


def repeat_scenario(
    scenario: ScenarioRunner,
    workload: WorkloadSpec,
    config: PlatformConfig,
    num_runs: int,
    seed: int = 0,
    label: str = "",
    **scenario_kwargs: object,
) -> RepeatedRuns:
    """Run ``scenario`` ``num_runs`` times with fresh per-run randomisation.

    The run index feeds the random-stream derivation, so every run sees fresh
    cache placements, replacement choices and arbitration randomness — the
    same protocol as the paper's 1,000-run averages on the randomised FPGA
    platform.
    """
    if num_runs <= 0:
        raise ValueError("num_runs must be positive")
    samples = np.empty(num_runs, dtype=np.float64)
    for run_index in range(num_runs):
        result = scenario(
            workload, config, seed=seed, run_index=run_index, **scenario_kwargs
        )
        samples[run_index] = float(result.tua_cycles)
    samples.setflags(write=False)
    return RepeatedRuns(
        label=label or f"{workload.name}/{config.arbitration}",
        samples=samples,
        stats=mean_with_confidence(samples),
    )


def runs_from_samples(label: str, samples: Sequence[float] | np.ndarray) -> RepeatedRuns:
    """Build a :class:`RepeatedRuns` record from already-collected samples.

    Used by the campaign-backed experiments, whose samples come back from the
    executor/store instead of an in-process loop; an existing ``float64``
    array (the aggregation form) is adopted as a read-only view, not copied.
    """
    values = np.asarray(samples, dtype=np.float64).view()
    values.flags.writeable = False
    return RepeatedRuns(label=label, samples=values, stats=mean_with_confidence(values))


def scale_workload(workload: WorkloadSpec, access_scale: float) -> WorkloadSpec:
    """Scale a workload's length for quicker runs (benchmarks and tests).

    ``access_scale = 1.0`` keeps the paper-sized workload; smaller values
    shrink the number of accesses proportionally (minimum 50 so the
    statistics remain meaningful).
    """
    if access_scale <= 0:
        raise ValueError("access_scale must be positive")
    if access_scale >= 1.0:
        return workload
    scaled = max(50, int(workload.num_accesses * access_scale))
    return workload.with_updates(num_accesses=scaled)
