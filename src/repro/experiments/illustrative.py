"""The Section II illustrative example.

A task under analysis (TuA) issues 1,000 short requests (6 bus cycles each)
over a 10,000-cycle execution in isolation, while the three other cores run
streaming applications whose requests hold the bus for 28 cycles.  Under any
request-fair policy each TuA request waits roughly ``3 x 28 = 84`` cycles and
the task slows down by ~9.4x; under a cycle-fair policy the wait drops to
``3 x 6 = 18`` cycles and the slowdown to ~2.8x — below the core count, as
one expects from a fair bandwidth partition.

The experiment reproduces both numbers two ways:

* analytically, with the closed forms of :mod:`repro.core.bounds`;
* by cycle-accurate simulation of the scenario on the shared bus, comparing
  round-robin (request-fair) against CBA (cycle-fair).

Because the example fixes the request durations explicitly (6 and 28 cycles),
the simulation drives the bus with purpose-built master agents and a
per-master fixed-latency slave instead of the full cache hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arbiters.base import Arbiter
from ..arbiters.registry import create_arbiter
from ..bus.bus import SharedBus
from ..bus.transaction import AccessType, BusRequest
from ..campaign.campaign import Campaign, aggregate_by_label
from ..campaign.jobs import CampaignJob, RunOutcome
from ..core.bounds import (
    ContentionScenario,
    cycle_fair_execution_time,
    request_fair_execution_time,
    slowdown,
)
from ..core.cba import CreditBasedArbiter
from ..sim.component import Component
from ..sim.config import CBAParameters
from ..sim.kernel import Kernel

__all__ = ["IllustrativeResult", "campaign_runner", "run_illustrative_example"]


class _FixedDurationSlave:
    """Bus slave serving each master with a fixed, per-master duration."""

    def __init__(self, durations: dict[int, int]) -> None:
        self.durations = dict(durations)

    def resolve(self, request: BusRequest, cycle: int) -> int:
        return self.durations[request.master_id]


class _PeriodicRequester(Component):
    """The TuA of the example: a fixed number of requests, a fixed compute gap."""

    def __init__(
        self,
        name: str,
        core_id: int,
        bus: SharedBus,
        num_requests: int,
        compute_gap: int,
    ) -> None:
        super().__init__(name)
        self.core_id = core_id
        self.bus = bus
        self.num_requests = num_requests
        self.compute_gap = compute_gap
        self.requests_completed = 0
        self.finish_cycle: int | None = None
        self._compute_remaining = compute_gap
        self._waiting = False
        bus.connect_master(core_id, self)

    @property
    def finished(self) -> bool:
        return self.finish_cycle is not None

    def tick(self) -> None:
        if self.finished or self._waiting:
            return
        if self._compute_remaining > 0:
            self._compute_remaining -= 1
            return
        request = BusRequest(
            master_id=self.core_id,
            address=0x1000_0000 + self.requests_completed * 64,
            access=AccessType.READ,
            issue_cycle=self.now,
        )
        self.bus.submit(request)
        self._waiting = True

    def on_grant(self, request: BusRequest, cycle: int) -> None:
        """Bus master protocol: nothing to do at grant time."""

    def on_complete(self, request: BusRequest, cycle: int) -> None:
        self._waiting = False
        self.requests_completed += 1
        if self.requests_completed >= self.num_requests:
            self.finish_cycle = cycle
        else:
            self._compute_remaining = self.compute_gap

    def reset(self) -> None:
        self.requests_completed = 0
        self.finish_cycle = None
        self._compute_remaining = self.compute_gap
        self._waiting = False


class _StreamingRequester(Component):
    """A streaming contender: always keeps one request pending."""

    def __init__(self, name: str, core_id: int, bus: SharedBus) -> None:
        super().__init__(name)
        self.core_id = core_id
        self.bus = bus
        self.requests_completed = 0
        self._waiting = False
        bus.connect_master(core_id, self)

    def tick(self) -> None:
        if self._waiting or self.bus.has_pending(self.core_id):
            return
        request = BusRequest(
            master_id=self.core_id,
            address=0x5000_0000 + self.core_id * 0x0100_0000 + self.requests_completed * 64,
            access=AccessType.READ,
            issue_cycle=self.now,
        )
        self.bus.submit(request)
        self._waiting = True

    def on_grant(self, request: BusRequest, cycle: int) -> None:
        """Bus master protocol: nothing to do at grant time."""

    def on_complete(self, request: BusRequest, cycle: int) -> None:
        self.requests_completed += 1
        self._waiting = False

    def reset(self) -> None:
        self.requests_completed = 0
        self._waiting = False


@dataclass(frozen=True)
class IllustrativeResult:
    """Analytical and simulated outcomes of the Section II example."""

    scenario: ContentionScenario
    analytic_isolation_cycles: int
    analytic_request_fair_cycles: int
    analytic_cycle_fair_cycles: int
    simulated_isolation_cycles: int
    simulated_request_fair_cycles: int
    simulated_cycle_fair_cycles: int

    @property
    def analytic_request_fair_slowdown(self) -> float:
        return slowdown(self.analytic_request_fair_cycles, self.analytic_isolation_cycles)

    @property
    def analytic_cycle_fair_slowdown(self) -> float:
        return slowdown(self.analytic_cycle_fair_cycles, self.analytic_isolation_cycles)

    @property
    def simulated_request_fair_slowdown(self) -> float:
        return slowdown(self.simulated_request_fair_cycles, self.simulated_isolation_cycles)

    @property
    def simulated_cycle_fair_slowdown(self) -> float:
        return slowdown(self.simulated_cycle_fair_cycles, self.simulated_isolation_cycles)

    def as_dict(self) -> dict[str, object]:
        return {
            "analytic": {
                "isolation_cycles": self.analytic_isolation_cycles,
                "request_fair_cycles": self.analytic_request_fair_cycles,
                "cycle_fair_cycles": self.analytic_cycle_fair_cycles,
                "request_fair_slowdown": self.analytic_request_fair_slowdown,
                "cycle_fair_slowdown": self.analytic_cycle_fair_slowdown,
            },
            "simulated": {
                "isolation_cycles": self.simulated_isolation_cycles,
                "request_fair_cycles": self.simulated_request_fair_cycles,
                "cycle_fair_cycles": self.simulated_cycle_fair_cycles,
                "request_fair_slowdown": self.simulated_request_fair_slowdown,
                "cycle_fair_slowdown": self.simulated_cycle_fair_slowdown,
            },
        }


def _simulate(
    scenario: ContentionScenario,
    use_cba: bool,
    with_contenders: bool,
    base_policy: str = "random_permutations",
    seed: int = 1,
    max_cycles: int = 2_000_000,
) -> int:
    """Simulate the example and return the TuA's execution time in cycles."""
    kernel = Kernel(seed=seed)
    num_cores = scenario.num_cores
    durations = {0: scenario.tua_request_cycles}
    for core in range(1, num_cores):
        durations[core] = scenario.contender_request_cycles
    slave = _FixedDurationSlave(durations)
    base = create_arbiter(base_policy, num_cores, rng=kernel.streams.stream("arbiter"))
    arbiter: Arbiter = base
    if use_cba:
        params = CBAParameters(
            max_latency=scenario.contender_request_cycles,
            num_cores=num_cores,
        )
        arbiter = CreditBasedArbiter(base, params)
    bus = SharedBus(
        "bus",
        num_masters=num_cores,
        arbiter=arbiter,
        slave=slave,
        max_latency=scenario.contender_request_cycles,
    )
    # The TuA spends (isolation - bus time) cycles computing, spread evenly
    # between its requests.
    compute_gap = scenario.compute_cycles // scenario.tua_requests
    tua = _PeriodicRequester(
        "tua", 0, bus, num_requests=scenario.tua_requests, compute_gap=compute_gap
    )
    contenders = []
    if with_contenders:
        contenders = [
            _StreamingRequester(f"contender{core}", core, bus)
            for core in range(1, num_cores)
        ]
    kernel.register(tua)
    for contender in contenders:
        kernel.register(contender)
    kernel.register(bus)
    kernel.add_stop_condition(lambda: tua.finished)
    kernel.run(max_cycles=max_cycles)
    if not tua.finished:
        raise RuntimeError("the illustrative-example simulation did not converge")
    return int(tua.finish_cycle or 0)


def campaign_runner(job: CampaignJob, run_index: int) -> RunOutcome:
    """Campaign scenario runner: one simulated variant of the Section II example.

    Job options carry the :class:`ContentionScenario` parameters plus the
    variant switches (``use_cba``, ``with_contenders``, ``base_policy``).
    ``run_index`` offsets the seed so repeated runs are independent.
    """
    options = job.options_dict
    scenario = ContentionScenario(
        isolation_cycles=int(options["isolation_cycles"]),
        tua_requests=int(options["tua_requests"]),
        tua_request_cycles=int(options["tua_request_cycles"]),
        contender_request_cycles=int(options["contender_request_cycles"]),
        num_cores=int(options["num_cores"]),
    )
    cycles = _simulate(
        scenario,
        use_cba=bool(options["use_cba"]),
        with_contenders=bool(options["with_contenders"]),
        base_policy=str(options["base_policy"]),
        seed=job.seed + run_index,
        max_cycles=job.max_cycles,
    )
    return RunOutcome(value=float(cycles))


def _variant_job(
    label: str,
    scenario: ContentionScenario,
    base_policy: str,
    seed: int,
    use_cba: bool,
    with_contenders: bool,
) -> CampaignJob:
    options = {
        "isolation_cycles": scenario.isolation_cycles,
        "tua_requests": scenario.tua_requests,
        "tua_request_cycles": scenario.tua_request_cycles,
        "contender_request_cycles": scenario.contender_request_cycles,
        "num_cores": scenario.num_cores,
        "use_cba": use_cba,
        "with_contenders": with_contenders,
        "base_policy": base_policy,
    }
    return CampaignJob(
        label=label,
        scenario="illustrative",
        seed=seed,
        options=tuple(options.items()),
        max_cycles=2_000_000,
    )


def run_illustrative_example(
    scenario: ContentionScenario | None = None,
    base_policy: str = "random_permutations",
    seed: int = 1,
    campaign: Campaign | None = None,
) -> IllustrativeResult:
    """Reproduce the Section II example analytically and by simulation.

    ``base_policy`` is the slot-fair policy used both as the request-fair
    baseline and as the policy CBA wraps (the paper's FPGA integrates CBA
    with random permutations).  The three simulated variants (isolation,
    request-fair contention, cycle-fair contention) run as campaign jobs.
    """
    scenario = scenario or ContentionScenario()
    campaign = campaign if campaign is not None else Campaign()
    jobs = [
        _variant_job(
            "isolation", scenario, base_policy, seed,
            use_cba=False, with_contenders=False,
        ),
        _variant_job(
            "request-fair", scenario, base_policy, seed,
            use_cba=False, with_contenders=True,
        ),
        _variant_job(
            "cycle-fair", scenario, base_policy, seed,
            use_cba=True, with_contenders=True,
        ),
    ]
    aggregated = aggregate_by_label(jobs, campaign.run(jobs))
    simulated_isolation = int(aggregated["isolation"].samples[0])
    simulated_request_fair = int(aggregated["request-fair"].samples[0])
    simulated_cycle_fair = int(aggregated["cycle-fair"].samples[0])
    return IllustrativeResult(
        scenario=scenario,
        analytic_isolation_cycles=scenario.isolation_cycles,
        analytic_request_fair_cycles=request_fair_execution_time(scenario),
        analytic_cycle_fair_cycles=cycle_fair_execution_time(scenario),
        simulated_isolation_cycles=simulated_isolation,
        simulated_request_fair_cycles=simulated_request_fair,
        simulated_cycle_fair_cycles=simulated_cycle_fair,
    )
