"""Figure 1: normalised average execution time of EEMBC benchmarks.

The paper runs each of ``cacheb``, ``canrdr``, ``matrix`` and ``tblook``
under six configurations — {RP, CBA, H-CBA} x {isolation, maximum
contention} — and reports the average execution time over 1,000 randomised
runs, normalised to RP in isolation.  The headline observations are:

* under maximum contention the RP bus suffers slowdowns up to 3.34x
  (``matrix``), while CBA caps the worst case at 2.34x;
* in isolation CBA costs only ~3% on average (budget-recovery stalls), and
  H-CBA is essentially free for the favoured core;
* H-CBA (TuA entitled to 50% of the bandwidth) further reduces the
  contention slowdown of the TuA.

:func:`run_figure1` regenerates the same table of normalised execution times
on the simulated platform.  The number of runs and the workload length are
parameters so the benchmark can trade accuracy for runtime; the *shape* of
the results (orderings and approximate ratios) is what the benchmark asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.reporting import format_figure1_table
from ..campaign.campaign import Campaign, aggregate_by_label
from ..campaign.jobs import seed_block_jobs
from ..platform.presets import cba_config, hcba_config, rp_config
from ..sim.config import PlatformConfig
from ..workloads.eembc import FIGURE1_BENCHMARKS, eembc_workload
from .runner import RepeatedRuns, runs_from_samples, scale_workload

__all__ = ["Figure1Result", "run_figure1", "FIGURE1_CONFIGURATIONS"]

#: Column labels in the order the paper's figure presents them.
FIGURE1_CONFIGURATIONS: tuple[str, ...] = (
    "RP-ISO",
    "CBA-ISO",
    "H-CBA-ISO",
    "RP-CON",
    "CBA-CON",
    "H-CBA-CON",
)


@dataclass
class Figure1Result:
    """All the data behind Figure 1."""

    #: benchmark -> configuration label -> mean execution cycles.
    mean_cycles: dict[str, dict[str, float]] = field(default_factory=dict)
    #: benchmark -> configuration label -> normalised execution time (slowdown).
    slowdowns: dict[str, dict[str, float]] = field(default_factory=dict)
    #: benchmark -> configuration label -> the underlying repeated-run record.
    runs: dict[str, dict[str, RepeatedRuns]] = field(default_factory=dict)
    num_runs: int = 0
    access_scale: float = 1.0

    def worst_contention_slowdown(self, configuration: str) -> float:
        """Largest slowdown across benchmarks for one configuration column."""
        return max(self.slowdowns[b][configuration] for b in self.slowdowns)

    def isolation_overhead(self, configuration: str) -> float:
        """Average isolation overhead of ``configuration`` relative to RP-ISO."""
        values = [self.slowdowns[b][configuration] for b in self.slowdowns]
        return sum(values) / len(values) - 1.0

    def to_table(self) -> str:
        """Render the figure's data as an aligned text table."""
        return format_figure1_table(self.slowdowns, FIGURE1_CONFIGURATIONS)


def _configurations(num_cores: int, tua_core: int) -> dict[str, tuple[PlatformConfig, str]]:
    """Map configuration labels to (platform config, scenario kind)."""
    rp = rp_config(num_cores)
    cba = cba_config(num_cores)
    hcba = hcba_config(num_cores, favoured_core=tua_core)
    return {
        "RP-ISO": (rp, "iso"),
        "CBA-ISO": (cba, "iso"),
        "H-CBA-ISO": (hcba, "iso"),
        "RP-CON": (rp, "con"),
        "CBA-CON": (cba, "con"),
        "H-CBA-CON": (hcba, "con"),
    }


def run_figure1(
    benchmarks: Sequence[str] = FIGURE1_BENCHMARKS,
    num_runs: int = 5,
    seed: int = 2017,
    access_scale: float = 1.0,
    num_cores: int = 4,
    tua_core: int = 0,
    max_cycles: int = 5_000_000,
    campaign: Campaign | None = None,
) -> Figure1Result:
    """Regenerate the Figure 1 data.

    Parameters
    ----------
    benchmarks:
        EEMBC benchmark names (defaults to the four the paper plots).
    num_runs:
        Randomised runs averaged per (benchmark, configuration).  The paper
        uses 1,000; the default keeps the harness fast while still averaging
        out randomisation noise.
    access_scale:
        Workload-length scaling factor (1.0 = paper-sized traces).
    campaign:
        Execution engine (parallel backend, artifact store, resume).  The
        default runs every job serially in-process; results are identical
        whichever executor dispatches the jobs.
    """
    campaign = campaign if campaign is not None else Campaign()
    result = Figure1Result(num_runs=num_runs, access_scale=access_scale)
    configurations = _configurations(num_cores, tua_core)

    jobs = []
    for benchmark in benchmarks:
        workload = scale_workload(eembc_workload(benchmark), access_scale)
        for label, (config, kind) in configurations.items():
            jobs.extend(
                seed_block_jobs(
                    f"{benchmark}/{label}",
                    "isolation" if kind == "iso" else "max_contention",
                    seed=seed,
                    num_runs=num_runs,
                    workload=workload,
                    config=config,
                    tua_core=tua_core,
                    max_cycles=max_cycles,
                )
            )
    aggregated = aggregate_by_label(jobs, campaign.run(jobs))

    for benchmark in benchmarks:
        result.mean_cycles[benchmark] = {}
        result.runs[benchmark] = {}
        for label in configurations:
            agg = aggregated[f"{benchmark}/{label}"]
            runs = runs_from_samples(f"{benchmark}/{label}", agg.samples)
            result.mean_cycles[benchmark][label] = runs.mean_cycles
            result.runs[benchmark][label] = runs
        baseline = result.mean_cycles[benchmark]["RP-ISO"]
        result.slowdowns[benchmark] = {
            label: cycles / baseline
            for label, cycles in result.mean_cycles[benchmark].items()
        }
    return result
