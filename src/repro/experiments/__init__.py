"""Experiment drivers: one module per table/figure of the paper plus the
ablation sweeps (see DESIGN.md for the experiment index)."""

from .base_policy_sweep import (
    BasePolicyPoint,
    BasePolicySweepResult,
    run_base_policy_sweep,
)
from .figure1 import FIGURE1_CONFIGURATIONS, Figure1Result, run_figure1
from .hcba_sweep import HCBASweepPoint, HCBASweepResult, run_hcba_sweep
from .illustrative import IllustrativeResult, run_illustrative_example
from .mbpta_experiment import MBPTAExperimentResult, run_mbpta_experiment
from .overheads import OverheadResult, run_overheads
from .runner import RepeatedRuns, repeat_scenario, scale_workload
from .table1 import Table1Result, run_table1

__all__ = [
    "run_base_policy_sweep",
    "BasePolicySweepResult",
    "BasePolicyPoint",
    "run_figure1",
    "Figure1Result",
    "FIGURE1_CONFIGURATIONS",
    "run_illustrative_example",
    "IllustrativeResult",
    "run_table1",
    "Table1Result",
    "run_overheads",
    "OverheadResult",
    "run_mbpta_experiment",
    "MBPTAExperimentResult",
    "run_hcba_sweep",
    "HCBASweepResult",
    "HCBASweepPoint",
    "RepeatedRuns",
    "repeat_scenario",
    "scale_workload",
]
