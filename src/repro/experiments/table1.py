"""Table I: the per-cycle signal behaviour of the CBA arbiter.

The paper summarises the FPGA implementation with a signal table (budget
counters, request lines, compete bits, and how they differ between the
WCET-estimation and operation modes).  This experiment drives the
signal-level model of :mod:`repro.core.signals` through a short scenario in
each mode, records the cycle-by-cycle signal values, and checks the rules of
Table I hold on the recorded trace:

* every cycle each ``BUDGi`` increases by 1, saturating at ``N * MaxL``;
* the core using the bus sees its budget decrease by ``N`` that same cycle
  (net effect: ``+1 - 4 = -3`` per busy cycle with the paper's parameters);
* in WCET-estimation mode the contenders' ``REQ`` lines are always set, and a
  contender's ``COMP`` bit is only set when its budget is full and the TuA
  has a request ready;
* in operation mode ``COMP`` bits are always set and ``REQ`` lines follow the
  actual requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..campaign.campaign import Campaign, aggregate_by_label
from ..campaign.jobs import CampaignJob, RunOutcome
from ..core.signals import ArbiterSignalModel, SignalSnapshot
from ..core.wcet_mode import OperatingMode

__all__ = [
    "Table1Result",
    "campaign_runner",
    "run_table1",
    "verify_budget_rule",
    "verify_comp_rule",
]


def verify_budget_rule(
    model: ArbiterSignalModel, history: list[SignalSnapshot]
) -> list[str]:
    """Check the BUDGi update rule on a recorded trace; return violations."""
    violations: list[str] = []
    full = model.full_budget
    drain = model.drain
    for previous, current in zip(history, history[1:], strict=False):
        for core in range(model.num_cores):
            before = previous.budgets[core]
            after = current.budgets[core]
            if current.bus_holder == core:
                expected = max(0, min(before + 1, full) - drain)
            else:
                expected = min(before + 1, full)
            if after != expected:
                violations.append(
                    f"cycle {current.cycle}: BUDG{core + 1} = {after}, expected {expected}"
                )
    return violations


def verify_comp_rule(
    model: ArbiterSignalModel, history: list[SignalSnapshot]
) -> list[str]:
    """Check the WCET-mode COMP/REQ rules on a recorded trace."""
    violations: list[str] = []
    if model.mode is not OperatingMode.WCET_ESTIMATION:
        return violations
    for snap in history:
        for core in range(model.num_cores):
            if core == model.tua_core:
                continue
            if not snap.requests[core]:
                violations.append(
                    f"cycle {snap.cycle}: REQ{core + 1} not set in WCET-estimation mode"
                )
    return violations


@dataclass(frozen=True)
class Table1Result:
    """Signal traces and rule-check outcomes for both operating modes."""

    wcet_mode_rows: list[dict[str, object]]
    operation_mode_rows: list[dict[str, object]]
    budget_rule_violations: list[str]
    comp_rule_violations: list[str]
    tua_execution_cycles_wcet_mode: int

    @property
    def rules_hold(self) -> bool:
        return not self.budget_rule_violations and not self.comp_rule_violations

    def summary(self) -> dict[str, object]:
        return {
            "wcet_mode_cycles_recorded": len(self.wcet_mode_rows),
            "operation_mode_cycles_recorded": len(self.operation_mode_rows),
            "budget_rule_violations": len(self.budget_rule_violations),
            "comp_rule_violations": len(self.comp_rule_violations),
            "rules_hold": self.rules_hold,
            "tua_execution_cycles_wcet_mode": self.tua_execution_cycles_wcet_mode,
        }


def campaign_runner(job: CampaignJob, run_index: int) -> RunOutcome:
    """Campaign scenario runner: the full Table I check as one job.

    The signal model is deterministic, so the job carries its parameters in
    ``options`` and the complete result rides along as the JSON payload —
    a resumed campaign reconstructs :class:`Table1Result` without re-driving
    the model.
    """
    result = _run_table1_direct(**job.options_dict)  # type: ignore[arg-type]
    payload = {
        "wcet_mode_rows": result.wcet_mode_rows,
        "operation_mode_rows": result.operation_mode_rows,
        "budget_rule_violations": result.budget_rule_violations,
        "comp_rule_violations": result.comp_rule_violations,
        "tua_execution_cycles_wcet_mode": result.tua_execution_cycles_wcet_mode,
    }
    return RunOutcome(
        value=float(result.tua_execution_cycles_wcet_mode), payload=payload
    )


def _result_from_payload(payload: dict) -> Table1Result:
    return Table1Result(
        wcet_mode_rows=[dict(row) for row in payload["wcet_mode_rows"]],
        operation_mode_rows=[dict(row) for row in payload["operation_mode_rows"]],
        budget_rule_violations=[str(v) for v in payload["budget_rule_violations"]],
        comp_rule_violations=[str(v) for v in payload["comp_rule_violations"]],
        tua_execution_cycles_wcet_mode=int(payload["tua_execution_cycles_wcet_mode"]),
    )


def run_table1(
    num_cores: int = 4,
    max_latency: int = 56,
    tua_requests: int = 20,
    tua_request_duration: int = 6,
    tua_gap_cycles: int = 4,
    campaign: Campaign | None = None,
) -> Table1Result:
    """Drive the signal model in both modes and check the Table I rules."""
    campaign = campaign if campaign is not None else Campaign()
    job = CampaignJob(
        label="table1",
        scenario="table1",
        options=(
            ("num_cores", num_cores),
            ("max_latency", max_latency),
            ("tua_requests", tua_requests),
            ("tua_request_duration", tua_request_duration),
            ("tua_gap_cycles", tua_gap_cycles),
        ),
    )
    aggregated = aggregate_by_label([job], campaign.run([job]))
    return _result_from_payload(aggregated["table1"].payloads[0])


def _run_table1_direct(
    num_cores: int = 4,
    max_latency: int = 56,
    tua_requests: int = 20,
    tua_request_duration: int = 6,
    tua_gap_cycles: int = 4,
) -> Table1Result:
    """The in-process Table I computation (called by the campaign runner)."""
    wcet_model = ArbiterSignalModel(
        num_cores=num_cores,
        max_latency=max_latency,
        mode=OperatingMode.WCET_ESTIMATION,
        tua_request_duration=tua_request_duration,
        tua_initial_budget=0,
    )
    tua_cycles = wcet_model.run_tua_requests(tua_requests, gap_cycles=tua_gap_cycles)

    operation_model = ArbiterSignalModel(
        num_cores=num_cores,
        max_latency=max_latency,
        mode=OperatingMode.OPERATION,
        tua_request_duration=tua_request_duration,
        tua_initial_budget=None,
    )
    operation_model.run_tua_requests(tua_requests, gap_cycles=tua_gap_cycles)

    budget_violations = verify_budget_rule(wcet_model, wcet_model.history)
    budget_violations += verify_budget_rule(operation_model, operation_model.history)
    comp_violations = verify_comp_rule(wcet_model, wcet_model.history)

    return Table1Result(
        wcet_mode_rows=wcet_model.signal_table(),
        operation_mode_rows=operation_model.signal_table(),
        budget_rule_violations=budget_violations,
        comp_rule_violations=comp_violations,
        tua_execution_cycles_wcet_mode=tua_cycles,
    )
