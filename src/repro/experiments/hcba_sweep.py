"""H-CBA ablation sweep (Section III-A design choices).

The paper describes two ways to give one core a larger bandwidth share —
redistributing the per-cycle replenishment (the evaluated H-CBA) or letting
the favoured core's budget cap grow — and notes the trade-off: budget-cap
growth enables back-to-back grants for the favoured core but creates temporal
starvation for the others.

This sweep quantifies the trade-off on the simulated platform: for a grid of
favoured-core bandwidth fractions (and for the cap-growth variant), it runs a
short-request task on the favoured core against greedy contenders and
reports

* the favoured core's contention slowdown,
* the contenders' throughput (completed requests), and
* the bandwidth share each core actually obtained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from ..campaign.campaign import AggregatedRuns, Campaign, aggregate_by_label
from ..campaign.jobs import seed_block_jobs
from ..core.hcba import budget_cap_parameters
from ..platform.presets import cba_config, hcba_config, paper_bus_timings, rp_config
from ..sim.config import PlatformConfig
from ..workloads.base import WorkloadSpec
from ..workloads.synthetic import short_request_workload
from .runner import scale_workload

__all__ = ["HCBASweepPoint", "HCBASweepResult", "run_hcba_sweep"]


@dataclass(frozen=True)
class HCBASweepPoint:
    """Outcome of one H-CBA variant under maximum contention."""

    label: str
    favoured_fraction: float
    tua_slowdown: float
    tua_mean_cycles: float
    contender_completed_requests: float
    tua_bandwidth_share: float

    def as_dict(self) -> dict[str, object]:
        return {
            "label": self.label,
            "favoured_fraction": self.favoured_fraction,
            "tua_slowdown": self.tua_slowdown,
            "tua_mean_cycles": self.tua_mean_cycles,
            "contender_completed_requests": self.contender_completed_requests,
            "tua_bandwidth_share": self.tua_bandwidth_share,
        }


@dataclass
class HCBASweepResult:
    """All sweep points plus the isolation baseline they are normalised to."""

    baseline_isolation_cycles: float
    points: list[HCBASweepPoint] = field(default_factory=list)

    def by_label(self, label: str) -> HCBASweepPoint:
        for point in self.points:
            if point.label == label:
                return point
        raise KeyError(f"no sweep point labelled {label!r}")

    def labels(self) -> list[str]:
        return [point.label for point in self.points]


def _point_from_aggregate(
    agg: AggregatedRuns, favoured_fraction: float, baseline_isolation: float
) -> HCBASweepPoint:
    """Fold one label's campaign results into a sweep point."""
    mean_cycles = agg.mean
    return HCBASweepPoint(
        label=agg.label,
        favoured_fraction=favoured_fraction,
        tua_slowdown=mean_cycles / baseline_isolation,
        tua_mean_cycles=mean_cycles,
        contender_completed_requests=agg.metric_mean("contender_requests"),
        tua_bandwidth_share=agg.metric_mean("tua_bandwidth_share"),
    )


def run_hcba_sweep(
    fractions: Sequence[float] = (0.25, 0.4, 0.5, 0.75),
    cap_multipliers: Sequence[int] = (2,),
    workload: WorkloadSpec | None = None,
    num_runs: int = 3,
    seed: int = 11,
    access_scale: float = 0.5,
    num_cores: int = 4,
    tua_core: int = 0,
    max_cycles: int = 5_000_000,
    campaign: Campaign | None = None,
) -> HCBASweepResult:
    """Sweep H-CBA variants and compare them against RP and homogeneous CBA.

    Every sweep point (and the isolation baseline) is a block of campaign
    jobs, so the whole design-space exploration parallelises and resumes
    through the configured ``campaign``.
    """
    campaign = campaign if campaign is not None else Campaign()
    workload = workload or short_request_workload()
    workload = scale_workload(workload, access_scale)

    rp = rp_config(num_cores)

    def block(label: str, scenario: str, config: PlatformConfig):
        return seed_block_jobs(
            label, scenario, seed=seed, num_runs=num_runs,
            workload=workload, config=config, tua_core=tua_core,
            max_cycles=max_cycles,
        )

    # (label, favoured fraction, config) for every contention point.
    points: list[tuple[str, float, PlatformConfig]] = [
        ("RP", 1.0 / num_cores, rp),
        ("CBA", 1.0 / num_cores, cba_config(num_cores)),
    ]
    for fraction in fractions:
        points.append(
            (
                f"H-CBA-shares-{fraction:.2f}",
                float(fraction),
                hcba_config(
                    num_cores, favoured_core=tua_core,
                    favoured_fraction=Fraction(fraction).limit_denominator(100),
                ),
            )
        )
    timings = paper_bus_timings()
    for multiplier in cap_multipliers:
        params = budget_cap_parameters(
            num_cores=num_cores,
            max_latency=timings.max_latency,
            favoured_core=tua_core,
            cap_multiplier=multiplier,
        )
        points.append(
            (
                f"H-CBA-cap-x{multiplier}",
                1.0 / num_cores,
                PlatformConfig(
                    num_cores=num_cores,
                    arbitration="random_permutations",
                    use_cba=True,
                    cba=params,
                    bus_timings=timings,
                ),
            )
        )

    jobs = block("baseline-iso", "isolation", rp)
    for label, _, config in points:
        jobs += block(label, "max_contention", config)
    aggregated = aggregate_by_label(jobs, campaign.run(jobs))

    baseline_cycles = aggregated["baseline-iso"].mean
    result = HCBASweepResult(baseline_isolation_cycles=baseline_cycles)
    for label, fraction, _ in points:
        result.points.append(
            _point_from_aggregate(aggregated[label], fraction, baseline_cycles)
        )
    return result
