"""H-CBA ablation sweep (Section III-A design choices).

The paper describes two ways to give one core a larger bandwidth share —
redistributing the per-cycle replenishment (the evaluated H-CBA) or letting
the favoured core's budget cap grow — and notes the trade-off: budget-cap
growth enables back-to-back grants for the favoured core but creates temporal
starvation for the others.

This sweep quantifies the trade-off on the simulated platform: for a grid of
favoured-core bandwidth fractions (and for the cap-growth variant), it runs a
short-request task on the favoured core against greedy contenders and
reports

* the favoured core's contention slowdown,
* the contenders' throughput (completed requests), and
* the bandwidth share each core actually obtained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from ..core.hcba import budget_cap_parameters
from ..platform.presets import cba_config, hcba_config, paper_bus_timings, rp_config
from ..platform.scenarios import run_isolation, run_max_contention
from ..sim.config import PlatformConfig
from ..workloads.base import WorkloadSpec
from ..workloads.synthetic import short_request_workload
from .runner import repeat_scenario, scale_workload

__all__ = ["HCBASweepPoint", "HCBASweepResult", "run_hcba_sweep"]


@dataclass(frozen=True)
class HCBASweepPoint:
    """Outcome of one H-CBA variant under maximum contention."""

    label: str
    favoured_fraction: float
    tua_slowdown: float
    tua_mean_cycles: float
    contender_completed_requests: float
    tua_bandwidth_share: float

    def as_dict(self) -> dict[str, object]:
        return {
            "label": self.label,
            "favoured_fraction": self.favoured_fraction,
            "tua_slowdown": self.tua_slowdown,
            "tua_mean_cycles": self.tua_mean_cycles,
            "contender_completed_requests": self.contender_completed_requests,
            "tua_bandwidth_share": self.tua_bandwidth_share,
        }


@dataclass
class HCBASweepResult:
    """All sweep points plus the isolation baseline they are normalised to."""

    baseline_isolation_cycles: float
    points: list[HCBASweepPoint] = field(default_factory=list)

    def by_label(self, label: str) -> HCBASweepPoint:
        for point in self.points:
            if point.label == label:
                return point
        raise KeyError(f"no sweep point labelled {label!r}")

    def labels(self) -> list[str]:
        return [point.label for point in self.points]


def _contention_point(
    label: str,
    favoured_fraction: float,
    workload: WorkloadSpec,
    config: PlatformConfig,
    baseline_isolation: float,
    num_runs: int,
    seed: int,
    tua_core: int,
    max_cycles: int,
) -> HCBASweepPoint:
    runs = []
    contender_requests = []
    shares = []
    for run_index in range(num_runs):
        result = run_max_contention(
            workload, config, seed=seed, run_index=run_index, tua_core=tua_core,
            max_cycles=max_cycles,
        )
        runs.append(float(result.tua_cycles))
        contenders = result.system.extra.get("contender_requests", {})
        total = sum(int(v) for v in contenders.values())
        contender_requests.append(total)
        shares.append(result.system.bandwidth_shares[tua_core])
    mean_cycles = sum(runs) / len(runs)
    return HCBASweepPoint(
        label=label,
        favoured_fraction=favoured_fraction,
        tua_slowdown=mean_cycles / baseline_isolation,
        tua_mean_cycles=mean_cycles,
        contender_completed_requests=sum(contender_requests) / len(contender_requests),
        tua_bandwidth_share=sum(shares) / len(shares),
    )


def run_hcba_sweep(
    fractions: Sequence[float] = (0.25, 0.4, 0.5, 0.75),
    cap_multipliers: Sequence[int] = (2,),
    workload: WorkloadSpec | None = None,
    num_runs: int = 3,
    seed: int = 11,
    access_scale: float = 0.5,
    num_cores: int = 4,
    tua_core: int = 0,
    max_cycles: int = 5_000_000,
) -> HCBASweepResult:
    """Sweep H-CBA variants and compare them against RP and homogeneous CBA."""
    workload = workload or short_request_workload()
    workload = scale_workload(workload, access_scale)

    rp = rp_config(num_cores)
    baseline = repeat_scenario(
        run_isolation, workload, rp, num_runs=num_runs, seed=seed,
        label="baseline-iso", tua_core=tua_core, max_cycles=max_cycles,
    )
    result = HCBASweepResult(baseline_isolation_cycles=baseline.mean_cycles)

    # Reference points: plain RP and homogeneous CBA.
    result.points.append(
        _contention_point(
            "RP", 1.0 / num_cores, workload, rp, baseline.mean_cycles,
            num_runs, seed, tua_core, max_cycles,
        )
    )
    result.points.append(
        _contention_point(
            "CBA", 1.0 / num_cores, workload, cba_config(num_cores),
            baseline.mean_cycles, num_runs, seed, tua_core, max_cycles,
        )
    )

    # Replenishment-share variants.
    for fraction in fractions:
        config = hcba_config(
            num_cores, favoured_core=tua_core,
            favoured_fraction=Fraction(fraction).limit_denominator(100),
        )
        result.points.append(
            _contention_point(
                f"H-CBA-shares-{fraction:.2f}", float(fraction), workload, config,
                baseline.mean_cycles, num_runs, seed, tua_core, max_cycles,
            )
        )

    # Budget-cap variants.
    timings = paper_bus_timings()
    for multiplier in cap_multipliers:
        params = budget_cap_parameters(
            num_cores=num_cores,
            max_latency=timings.max_latency,
            favoured_core=tua_core,
            cap_multiplier=multiplier,
        )
        config = PlatformConfig(
            num_cores=num_cores,
            arbitration="random_permutations",
            use_cba=True,
            cba=params,
            bus_timings=timings,
        )
        result.points.append(
            _contention_point(
                f"H-CBA-cap-x{multiplier}", 1.0 / num_cores, workload, config,
                baseline.mean_cycles, num_runs, seed, tua_core, max_cycles,
            )
        )
    return result
