"""Workload traces consumed by the core model.

A :class:`WorkloadTrace` hands :class:`~repro.cpu.requests.TraceItem` objects
to a core one at a time.  Traces can be finite (a task that runs to
completion, like the EEMBC benchmarks) or unbounded (streaming contenders
that keep issuing requests for as long as the simulation runs).

Traces are *replayable*: :meth:`WorkloadTrace.reset` rewinds to the beginning
so the same core object can be reused across runs of an experiment.

Besides the item-at-a-time interface, every finite trace can be
*materialised* into a :class:`MaterializedTrace`: three parallel columns
``(compute_gap, address, kind)`` held as numpy arrays.  The columnar form is
what the core's cursor-based fast path and any future compiled kernel consume
— no generator resumption, no per-item ``TraceItem``/``MemoryAccess``
allocation on the hot path.  Materialisation walks the item-at-a-time
interface (or the spec's scalar draw helpers, see
:meth:`repro.workloads.base.WorkloadSpec.generate_columns`), so the encoded
sequence — and every RNG draw behind it — is bit-identical to what the lazy
trace would have produced.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..bus.transaction import AccessType
from ..sim.errors import WorkloadError
from .requests import MemoryAccess, TraceItem

__all__ = [
    "KIND_READ",
    "KIND_WRITE",
    "KIND_ATOMIC",
    "KIND_NONE",
    "ACCESS_BY_KIND",
    "KIND_BY_ACCESS",
    "WorkloadTrace",
    "ListTrace",
    "GeneratorTrace",
    "InfiniteTrace",
    "MaterializedTrace",
]

# ----------------------------------------------------------------------
# Columnar access-kind encoding
# ----------------------------------------------------------------------
#: Integer codes for the ``kind`` column of a materialised trace.
KIND_READ: int = 0
KIND_WRITE: int = 1
KIND_ATOMIC: int = 2
#: A pure-compute item (no memory access; the ``address`` column holds 0).
KIND_NONE: int = 3

#: ``kind`` code -> :class:`~repro.bus.transaction.AccessType` (``None`` for
#: pure-compute items).
ACCESS_BY_KIND: tuple[AccessType | None, ...] = (
    AccessType.READ,
    AccessType.WRITE,
    AccessType.ATOMIC,
    None,
)

#: :class:`~repro.bus.transaction.AccessType` -> ``kind`` code.
KIND_BY_ACCESS: dict[AccessType, int] = {
    AccessType.READ: KIND_READ,
    AccessType.WRITE: KIND_WRITE,
    AccessType.ATOMIC: KIND_ATOMIC,
}


class WorkloadTrace:
    """Abstract trace interface."""

    name: str = "trace"
    #: Whether the trace exposes pre-computed columns (see
    #: :class:`MaterializedTrace`); the core model checks this once at
    #: construction to select its cursor-based fast path.
    columnar: bool = False

    def next_item(self) -> TraceItem | None:
        """Return the next item, or ``None`` when the trace is exhausted."""
        raise NotImplementedError

    def reset(self) -> None:
        """Rewind the trace to its beginning."""
        raise NotImplementedError

    @property
    def finite(self) -> bool:
        """Whether the trace ever ends."""
        return True

    def materialize(self, max_items: int | None = None) -> "MaterializedTrace":
        """Convert the trace into its columnar form by walking it.

        The remaining items are consumed through :meth:`next_item`, so the
        materialised columns encode exactly the sequence the item-at-a-time
        interface would have handed out (including any RNG draws a generator
        performs along the way).  Unbounded traces must pass ``max_items``
        to bound the walk; the result is then a finite prefix.
        """
        if not self.finite and max_items is None:
            raise WorkloadError(
                f"trace {self.name!r} is unbounded; materialize() needs max_items"
            )
        gaps: list[int] = []
        addresses: list[int] = []
        kinds: list[int] = []
        while max_items is None or len(gaps) < max_items:
            item = self.next_item()
            if item is None:
                break
            gaps.append(item.compute_cycles)
            access = item.access
            if access is None:
                addresses.append(0)
                kinds.append(KIND_NONE)
            else:
                addresses.append(access.address)
                kinds.append(KIND_BY_ACCESS[access.access])
        return MaterializedTrace(gaps, addresses, kinds, name=self.name)


class ListTrace(WorkloadTrace):
    """A finite trace backed by a list of items."""

    def __init__(self, items: Iterable[TraceItem], name: str = "list-trace") -> None:
        self.name = name
        self._items = list(items)
        self._position = 0

    def __len__(self) -> int:
        return len(self._items)

    def next_item(self) -> TraceItem | None:
        if self._position >= len(self._items):
            return None
        item = self._items[self._position]
        self._position += 1
        return item

    def reset(self) -> None:
        self._position = 0

    @property
    def remaining(self) -> int:
        return len(self._items) - self._position


class GeneratorTrace(WorkloadTrace):
    """A finite trace produced lazily by a factory of iterators.

    The factory is invoked lazily on the first :meth:`next_item` after
    construction or :meth:`reset` — never in ``__init__`` — so building a
    trace has no side effects and a ``reset()`` issued before first use does
    not generate the sequence twice.  A randomised workload generator can
    therefore produce a fresh but reproducible item stream for each run.
    """

    def __init__(self, factory: Callable[[], Iterator[TraceItem]], name: str = "generator-trace"):
        self.name = name
        self._factory = factory
        self._iterator: Iterator[TraceItem] | None = None

    def next_item(self) -> TraceItem | None:
        iterator = self._iterator
        if iterator is None:
            iterator = self._iterator = iter(self._factory())
        try:
            return next(iterator)
        except StopIteration:
            return None

    def reset(self) -> None:
        self._iterator = None


class InfiniteTrace(WorkloadTrace):
    """An unbounded trace that repeats items from a factory forever.

    Used for streaming contenders: the factory yields a (possibly finite)
    sequence that is restarted every time it runs out.  As with
    :class:`GeneratorTrace`, the factory is only invoked on first use.
    """

    def __init__(self, factory: Callable[[], Iterator[TraceItem]], name: str = "infinite-trace"):
        self.name = name
        self._factory = factory
        self._iterator: Iterator[TraceItem] | None = None
        self._exhaustion_guard = 0

    def next_item(self) -> TraceItem | None:
        if self._iterator is None:
            self._iterator = iter(self._factory())
        for _ in range(2):
            try:
                item = next(self._iterator)
                self._exhaustion_guard = 0
                return item
            except StopIteration:
                self._exhaustion_guard += 1
                if self._exhaustion_guard > 1:
                    raise WorkloadError(
                        f"infinite trace {self.name!r}: factory produced an empty sequence"
                    ) from None
                self._iterator = iter(self._factory())
        return None  # pragma: no cover - unreachable

    def reset(self) -> None:
        self._iterator = None
        self._exhaustion_guard = 0

    @property
    def finite(self) -> bool:
        return False


class MaterializedTrace(WorkloadTrace):
    """A finite trace held as three parallel ``(gap, address, kind)`` columns.

    The canonical representation is a triple of read-only numpy arrays
    (:attr:`compute_gaps`, :attr:`addresses`, :attr:`kinds`), which is what
    the vectorised analysis tools and any future compiled kernel fast path
    operate on.  For the interpreter hot path the same columns are also kept
    as plain Python lists (:meth:`columns`), so the core's cursor can index
    them without per-item numpy-scalar boxing.

    ``next_item`` remains available as a compatibility adapter: it rebuilds
    :class:`TraceItem` objects on demand, so any consumer of the lazy
    interface works unchanged on a materialised trace.

    Reset semantics: the columns are drawn once, so :meth:`reset` *replays*
    the identical sequence.  A :class:`GeneratorTrace` bound to an RNG
    instead draws a fresh sequence on reset.  Within one run (the campaign
    and scenario-runner usage, which build a fresh system per run) the two
    are bit-identical; a consumer that resets and re-runs the *same* trace
    object across runs and wants fresh per-run randomness must rebuild the
    trace (or stay on the lazy path).
    """

    columnar = True

    def __init__(
        self,
        compute_gaps: Sequence[int] | np.ndarray,
        addresses: Sequence[int] | np.ndarray,
        kinds: Sequence[int] | np.ndarray,
        name: str = "materialized-trace",
    ) -> None:
        self.name = name
        gaps = np.array(compute_gaps, dtype=np.int64)
        addrs = np.array(addresses, dtype=np.int64)
        kind_codes = np.array(kinds, dtype=np.int8)
        if not (gaps.ndim == addrs.ndim == kind_codes.ndim == 1):
            raise WorkloadError(f"trace {name!r}: columns must be one-dimensional")
        if not (gaps.size == addrs.size == kind_codes.size):
            raise WorkloadError(
                f"trace {name!r}: column lengths differ "
                f"({gaps.size}/{addrs.size}/{kind_codes.size})"
            )
        if gaps.size and int(gaps.min()) < 0:
            raise WorkloadError(f"trace {name!r}: compute gaps cannot be negative")
        if kind_codes.size and not (
            0 <= int(kind_codes.min()) and int(kind_codes.max()) <= KIND_NONE
        ):
            raise WorkloadError(f"trace {name!r}: kind codes must be in [0, {KIND_NONE}]")
        gaps.setflags(write=False)
        addrs.setflags(write=False)
        kind_codes.setflags(write=False)
        self.compute_gaps = gaps
        self.addresses = addrs
        self.kinds = kind_codes
        self._position = 0
        self._columns: tuple[list[int], list[int], list[int]] | None = None
        self._placement_columns: tuple[object, tuple[list[int], list[int]]] | None = None
        self._placement_arrays: tuple[object, np.ndarray, np.ndarray] | None = None
        self._bus_bound: np.ndarray | None = None

    @classmethod
    def from_columns(
        cls,
        compute_gaps: list[int],
        addresses: list[int],
        kinds: list[int],
        name: str = "materialized-trace",
    ) -> "MaterializedTrace":
        """Build from already-generated Python-scalar columns.

        The lists are adopted as the interpreter-facing columns without a
        numpy round trip, which is how
        :meth:`~repro.workloads.base.WorkloadSpec.materialize_trace` avoids
        paying the array -> list conversion at every run.
        """
        trace = cls(compute_gaps, addresses, kinds, name=name)
        trace._columns = (list(compute_gaps), list(addresses), list(kinds))
        return trace

    def __len__(self) -> int:
        return int(self.compute_gaps.size)

    @property
    def remaining(self) -> int:
        return len(self) - self._position

    def columns(self) -> tuple[list[int], list[int], list[int]]:
        """The ``(gaps, addresses, kinds)`` columns as plain Python lists.

        Cached after the first call; treat the returned lists as read-only.
        """
        if self._columns is None:
            self._columns = (
                self.compute_gaps.tolist(),
                self.addresses.tolist(),
                self.kinds.tolist(),
            )
        return self._columns

    def placement_arrays(self, placement) -> tuple[np.ndarray, np.ndarray]:
        """Per-item ``(set_index, tag)`` columns under ``placement`` as arrays.

        Computed with the placement's vectorised form over the whole address
        column in one call (bit-identical per element to the scalar mapping)
        and cached against the placement object, so a run's batch interpreter
        pays for the hashing once.  Items without a memory access carry
        address 0; their entries are never probed.  The arrays are read-only;
        this is what the vectorised residency probe compares against the L1's
        tag-store mirror, while :meth:`placement_columns` derives the
        list form consumed by the scalar probe fallback.
        """
        cached = self._placement_arrays
        if cached is not None and cached[0] is placement:
            return cached[1], cached[2]
        set_array, tag_array = placement.index_tag_arrays(self.addresses)
        set_array.setflags(write=False)
        tag_array.setflags(write=False)
        self._placement_arrays = (placement, set_array, tag_array)
        return set_array, tag_array

    def placement_columns(self, placement) -> tuple[list[int], list[int]]:
        """The :meth:`placement_arrays` columns as plain Python lists
        (cached; treat as read-only)."""
        cached = self._placement_columns
        if cached is not None and cached[0] is placement:
            return cached[1]
        set_array, tag_array = self.placement_arrays(placement)
        columns = (set_array.tolist(), tag_array.tolist())
        self._placement_columns = (placement, columns)
        return columns

    def bus_bound_indices(self) -> np.ndarray:
        """Sorted indices of items that go to the bus regardless of cache
        state — writes and atomics (the write-through L1 propagates every
        store; atomics are indivisible read-modify-writes against the shared
        level).  These are the hard boundaries of batch-interpreter
        stretches: a stretch can only ever end early at a read miss or the
        run-horizon budget, so the scan between two boundaries is safely
        vectorisable.  Computed once per trace and cached (read-only).
        """
        if self._bus_bound is None:
            kinds = self.kinds
            bound = np.flatnonzero((kinds == KIND_WRITE) | (kinds == KIND_ATOMIC))
            bound.setflags(write=False)
            self._bus_bound = bound
        return self._bus_bound

    def next_item(self) -> TraceItem | None:
        position = self._position
        if position >= len(self):
            return None
        self._position = position + 1
        gaps, addresses, kinds = self.columns()
        kind = kinds[position]
        access = (
            None
            if kind == KIND_NONE
            else MemoryAccess(address=addresses[position], access=ACCESS_BY_KIND[kind])
        )
        return TraceItem(compute_cycles=gaps[position], access=access)

    def reset(self) -> None:
        """Rewind the cursor; the replay is the identical pre-drawn sequence
        (see the class docstring for how this differs from a lazy trace)."""
        self._position = 0

    def materialize(self, max_items: int | None = None) -> "MaterializedTrace":
        """Already columnar: return self (or a finite prefix walk)."""
        if max_items is None:
            return self
        return super().materialize(max_items)
