"""Workload traces consumed by the core model.

A :class:`WorkloadTrace` hands :class:`~repro.cpu.requests.TraceItem` objects
to a core one at a time.  Traces can be finite (a task that runs to
completion, like the EEMBC benchmarks) or unbounded (streaming contenders
that keep issuing requests for as long as the simulation runs).

Traces are *replayable*: :meth:`WorkloadTrace.reset` rewinds to the beginning
so the same core object can be reused across runs of an experiment.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ..sim.errors import WorkloadError
from .requests import TraceItem

__all__ = ["WorkloadTrace", "ListTrace", "GeneratorTrace", "InfiniteTrace"]


class WorkloadTrace:
    """Abstract trace interface."""

    name: str = "trace"

    def next_item(self) -> TraceItem | None:
        """Return the next item, or ``None`` when the trace is exhausted."""
        raise NotImplementedError

    def reset(self) -> None:
        """Rewind the trace to its beginning."""
        raise NotImplementedError

    @property
    def finite(self) -> bool:
        """Whether the trace ever ends."""
        return True


class ListTrace(WorkloadTrace):
    """A finite trace backed by a list of items."""

    def __init__(self, items: Iterable[TraceItem], name: str = "list-trace") -> None:
        self.name = name
        self._items = list(items)
        self._position = 0

    def __len__(self) -> int:
        return len(self._items)

    def next_item(self) -> TraceItem | None:
        if self._position >= len(self._items):
            return None
        item = self._items[self._position]
        self._position += 1
        return item

    def reset(self) -> None:
        self._position = 0

    @property
    def remaining(self) -> int:
        return len(self._items) - self._position


class GeneratorTrace(WorkloadTrace):
    """A finite trace produced lazily by a factory of iterators.

    The factory is invoked once per run (and again after :meth:`reset`), so a
    randomised workload generator can produce a fresh but reproducible item
    stream for each run.
    """

    def __init__(self, factory: Callable[[], Iterator[TraceItem]], name: str = "generator-trace"):
        self.name = name
        self._factory = factory
        self._iterator = iter(factory())

    def next_item(self) -> TraceItem | None:
        try:
            return next(self._iterator)
        except StopIteration:
            return None

    def reset(self) -> None:
        self._iterator = iter(self._factory())


class InfiniteTrace(WorkloadTrace):
    """An unbounded trace that repeats items from a factory forever.

    Used for streaming contenders: the factory yields a (possibly finite)
    sequence that is restarted every time it runs out.
    """

    def __init__(self, factory: Callable[[], Iterator[TraceItem]], name: str = "infinite-trace"):
        self.name = name
        self._factory = factory
        self._iterator = iter(factory())
        self._exhaustion_guard = 0

    def next_item(self) -> TraceItem | None:
        for _ in range(2):
            try:
                item = next(self._iterator)
                self._exhaustion_guard = 0
                return item
            except StopIteration:
                self._exhaustion_guard += 1
                if self._exhaustion_guard > 1:
                    raise WorkloadError(
                        f"infinite trace {self.name!r}: factory produced an empty sequence"
                    )
                self._iterator = iter(self._factory())
        return None  # pragma: no cover - unreachable

    def reset(self) -> None:
        self._iterator = iter(self._factory())
        self._exhaustion_guard = 0

    @property
    def finite(self) -> bool:
        return False
