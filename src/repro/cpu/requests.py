"""Descriptors of the work a core performs.

A core's activity is described as a stream of :class:`TraceItem` objects:
each item is an optional number of *compute* cycles (no memory activity)
followed by one memory access.  This is the level of detail the bus — the
resource the paper studies — actually observes: when requests are issued, of
which kind, and how far apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bus.transaction import AccessType

__all__ = ["MemoryAccess", "TraceItem"]


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """One memory operation issued by a core."""

    address: int
    access: AccessType = AccessType.READ

    @property
    def is_write(self) -> bool:
        return self.access is AccessType.WRITE

    @property
    def is_atomic(self) -> bool:
        return self.access is AccessType.ATOMIC


@dataclass(frozen=True, slots=True)
class TraceItem:
    """``compute_cycles`` of core-local work followed by one memory access.

    ``access`` may be ``None`` for a pure-compute item (used to model final
    tail computation after the last memory access of a task).
    """

    compute_cycles: int = 0
    access: MemoryAccess | None = None

    def __post_init__(self) -> None:
        if self.compute_cycles < 0:
            raise ValueError("compute_cycles cannot be negative")
