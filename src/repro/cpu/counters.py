"""Per-core performance counters.

Mirrors the counters one would read from a LEON3 statistics unit: committed
trace items, memory accesses split by level serviced, cycles split by what
the core was doing.  Experiments use them to compute slowdowns, bus demand
and stall breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CoreCounters"]


@dataclass(slots=True)
class CoreCounters:
    """Counters accumulated by one core over one run."""

    core_id: int
    items_completed: int = 0
    accesses: int = 0
    l1_hits: int = 0
    bus_requests: int = 0
    #: Stores absorbed by the write buffer (drained to the bus in background).
    buffered_stores: int = 0
    #: Cycles stalled because the write buffer was full.
    store_stall_cycles: int = 0
    compute_cycles: int = 0
    l1_cycles: int = 0
    #: Cycles spent waiting for the bus grant (contention + CBA budget gating).
    bus_wait_cycles: int = 0
    #: Cycles the bus was held on behalf of this core.
    bus_hold_cycles: int = 0
    start_cycle: int = 0
    finish_cycle: int | None = None
    #: Per-request total latencies (issue to completion), for distributions.
    request_latencies: list[int] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.finish_cycle is not None

    @property
    def execution_cycles(self) -> int:
        """Total cycles from start to finish (0 until the core finishes)."""
        if self.finish_cycle is None:
            return 0
        return self.finish_cycle - self.start_cycle

    @property
    def bus_bound_cycles(self) -> int:
        """Cycles attributable to the bus (waiting plus holding)."""
        return self.bus_wait_cycles + self.bus_hold_cycles

    def l1_hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.l1_hits / self.accesses

    def as_dict(self) -> dict[str, object]:
        return {
            "core_id": self.core_id,
            "items_completed": self.items_completed,
            "accesses": self.accesses,
            "l1_hits": self.l1_hits,
            "bus_requests": self.bus_requests,
            "buffered_stores": self.buffered_stores,
            "store_stall_cycles": self.store_stall_cycles,
            "compute_cycles": self.compute_cycles,
            "l1_cycles": self.l1_cycles,
            "bus_wait_cycles": self.bus_wait_cycles,
            "bus_hold_cycles": self.bus_hold_cycles,
            "execution_cycles": self.execution_cycles,
            "finished": self.finished,
        }
