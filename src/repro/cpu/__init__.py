"""Trace-driven in-order core model and its supporting descriptors."""

from .core_model import CoreModel, CoreState
from .counters import CoreCounters
from .requests import MemoryAccess, TraceItem
from .trace import (
    GeneratorTrace,
    InfiniteTrace,
    ListTrace,
    MaterializedTrace,
    WorkloadTrace,
)

__all__ = [
    "CoreModel",
    "CoreState",
    "CoreCounters",
    "MemoryAccess",
    "TraceItem",
    "WorkloadTrace",
    "ListTrace",
    "GeneratorTrace",
    "InfiniteTrace",
    "MaterializedTrace",
]
