"""Trace-driven in-order core model.

The paper's platform uses pipelined in-order LEON3 (SPARC V8) cores.  For the
phenomena the paper studies — who gets the bus, for how long, and how long a
task is stalled waiting for it — the relevant abstraction of such a core is a
*blocking, in-order* consumer of a memory-access trace:

* while computing, the core does not touch the bus;
* a memory access first probes the private L1; a hit costs the L1 latency;
* an L1 miss (or any store, because the L1 data cache is write-through)
  issues one bus request and the core stalls until the request completes,
  because the core is in-order and blocking (no MSHRs, one outstanding
  request), which is also what makes requests non-split on the bus.

The core walks a :class:`~repro.cpu.trace.WorkloadTrace` and accumulates
:class:`~repro.cpu.counters.CoreCounters`.  Two consumption paths exist:

* the generic item-at-a-time path calls ``trace.next_item()`` per item;
* when the trace is columnar (:class:`~repro.cpu.trace.MaterializedTrace`),
  the core instead walks the pre-computed ``(gap, address, kind)`` columns
  with a plain integer cursor — no generator resumption and no
  ``TraceItem``/``MemoryAccess`` allocation per item.

Both paths normalise each item into the same scalar pending fields
(``_pending_address``, ``_pending_kind``), so within a run the downstream
state machine — and therefore every cache access, RNG draw and counter — is
bit-identical between them (enforced by the columnar equivalence test
matrix).  The paths differ only on :meth:`CoreModel.reset` reuse of the same
core across runs: a materialised trace replays its pre-drawn sequence, while
a lazy generator trace draws a fresh one (see
:class:`~repro.cpu.trace.MaterializedTrace`).

On top of the columnar path sits the **batch interpreter** (on by default,
``batch_interpreter=``): whenever the trace cursor advances, the core scans
the maximal upcoming stretch of items that provably never touch the bus —
pure-compute gaps and reads that hit in the L1, decided against per-run
pre-computed ``(set index, tag)`` placement columns and a residency probe —
and executes the whole stretch at once: cache hit effects are applied with
their exact cycle-accurate stamps, counters and the cursor advance in bulk,
and the core then merely counts down the stretch's cycles, exposing the
stretch end as its :meth:`next_event` wake hint so the kernel can jump it in
one fast-forward.  Because a read hit changes no residency, draws no RNG and
needs no bus, the executed events (the boundary bus access, every grant,
every draw) land on exactly the cycles plain stepping produces — batch runs
are bit-identical to stepped runs (enforced by the same equivalence matrix).
The one observable difference is cosmetic: during a batched stretch
:attr:`CoreModel.state` reads ``COMPUTING`` where stepping would alternate
``COMPUTING``/``L1_ACCESS``; nothing on the platform consumes that
distinction (contenders watch ``WAITING_BUS`` only).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..bus.bus import SharedBus
from ..bus.transaction import AccessType, BusRequest
from ..cache.l1 import L1Cache
from ..sim.component import Component
from ..sim.stats import StatGroup
from .counters import CoreCounters
from .trace import (
    ACCESS_BY_KIND,
    KIND_ATOMIC,
    KIND_BY_ACCESS,
    KIND_NONE,
    KIND_READ,
    KIND_WRITE,
    WorkloadTrace,
)

__all__ = ["CoreState", "CoreModel"]

#: The vectorised residency probe is used when both the candidate window and
#: the core's running stretch-length estimate reach this many items; below
#: it the scalar per-item probe wins (measured parity ~64 items, clear
#: vector wins from ~128 — the numpy fixed cost per probe round needs that
#: many items to amortise; the estimate runs at 1.5x the observed stretch).
_VEC_MIN_WINDOW = 96
#: Cap on the adaptive stretch-length estimate, i.e. on the vectorised
#: scan's *first* probe width.  Within one scan the width then gallops (4x
#: per round), so a fully resident trace is decided in a handful of numpy
#: operations while the wasted probe past an early miss stays proportional
#: to the items actually taken.
_VEC_CHUNK = 256
#: Initial stretch-length estimate (and smallest vectorised probe width).
_VEC_CHUNK_FIRST = 16


class CoreState(str, Enum):
    """What the core is doing in the current cycle."""

    COMPUTING = "computing"
    L1_ACCESS = "l1_access"
    WAITING_BUS = "waiting_bus"
    #: A demand access is ready to be issued but the core's single bus port is
    #: occupied by a draining buffered store.
    WAITING_PORT = "waiting_port"
    #: A store is ready but the store buffer is full.
    STORE_STALL = "store_stall"
    FINISHED = "finished"


class CoreModel(Component):
    """An in-order, blocking, trace-driven core.

    Event-queue protocol: the core pushes its wake whenever its state machine
    *transitions* (a trace item loaded, an access begun or finished, a store
    drained, a completion callback) and leaves the heap entry untouched
    across pure countdown ticks — an absolute wake does not move while a
    compute gap, an L1 latency or a batch stretch merely counts down.
    Transition helpers set :attr:`_wake_dirty`; the tick wrapper (and the bus
    callbacks, which run outside the core's own tick) re-derive the wake from
    :meth:`next_event` exactly once per dirty tick, so push sites cannot
    drift from the polled hint.
    """

    event_driven = True

    def __init__(
        self,
        name: str,
        core_id: int,
        trace: WorkloadTrace,
        l1_data: L1Cache,
        bus: SharedBus,
        l1_instruction: L1Cache | None = None,
        store_buffer_entries: int = 0,
        batch_interpreter: bool = True,
    ) -> None:
        """Create the core.

        ``store_buffer_entries`` enables a small write (store) buffer, as real
        LEON3 integer pipelines have: buffered stores drain to the bus in the
        background and the core only stalls when the buffer is full or when a
        demand access needs the (single) bus port while a store is draining.
        The default of 0 keeps the fully blocking behaviour.

        ``batch_interpreter`` enables the bulk execution of bus-free trace
        stretches (see the module docstring).  It requires the columnar trace
        path and is bit-identical to per-cycle stepping; the switch exists
        for the equivalence tests and benchmarks, not as a safety valve.
        """
        super().__init__(name)
        if store_buffer_entries < 0:
            raise ValueError("store_buffer_entries cannot be negative")
        self.core_id = core_id
        self.trace = trace
        self.l1_data = l1_data
        self.l1_instruction = l1_instruction
        self.bus = bus
        self.store_buffer_entries = store_buffer_entries
        self.counters = CoreCounters(core_id=core_id)
        self._state = CoreState.COMPUTING
        self._compute_remaining = 0
        self._l1_remaining = 0
        #: Scalar description of the current item's memory access: an address
        #: plus a kind code (KIND_NONE when the item is pure compute).  Both
        #: trace paths fill these, so the rest of the state machine never
        #: touches TraceItem/MemoryAccess objects.
        self._pending_address = 0
        self._pending_kind = KIND_NONE
        #: Columnar fast path: when the trace is materialised, the cursor
        #: indexes its (gap, address, kind) columns directly.
        self._columnar = bool(getattr(trace, "columnar", False))
        if self._columnar:
            self._gaps, self._addresses, self._kinds = trace.columns()
            self._trace_len = len(self._gaps)
        self._cursor = 0
        #: Batch interpreter state: pre-computed per-item placement columns
        #: plus pre-bound cache probe/commit hooks, and the count of cycles
        #: left in the stretch currently being replayed in bulk (0 = not in a
        #: stretch).  ``batched_items``/``batch_stretches`` live in the
        #: :attr:`obs` stat group — outside CoreCounters so result snapshots
        #: stay comparable across batch-on/off runs, and registrable in a
        #: campaign-level metrics registry.
        self._batch = self._columnar and batch_interpreter
        self._batch_remaining = 0
        self.obs = StatGroup(f"{name}.obs")
        self._c_batched_items = self.obs.counter("batched_items")
        self._c_batch_stretches = self.obs.counter("batch_stretches")
        if self._batch:
            self._l1_sets, self._l1_tags = trace.placement_columns(l1_data.placement)
            self._l1_probe, self._l1_commit = l1_data.batch_read_hooks()
            # Vectorised residency: the candidate stretch between two
            # mandatory bus items is decided against the L1's (num_sets,
            # ways) tag-store mirror in one numpy comparison per chunk; the
            # scalar probe above stays as the fallback for short windows,
            # where the fixed cost of array indexing exceeds a handful of
            # probe calls.
            self._set_array, self._tag_array = trace.placement_arrays(l1_data.placement)
            self._mirror_tags = l1_data.residency_mirror()
            self._bus_bounds = trace.bus_bound_indices().tolist()
            self._bound_pos = 0
            self._commit_hits = l1_data.commit_read_hits
            #: Random replacement never reads the access history, so batch
            #: commits may count hits without computing per-hit stamps/ways.
            self._hits_cheap = l1_data.hit_stamps_droppable
            self._count_hits = l1_data.cache.count_read_hits
            # Per-run prefix sums: item i's cost is gap + transition cycle
            # (+ hit latency for reads), so a stretch's cycle count and every
            # hit's exact completion stamp fall out of one subtraction
            # against these instead of a cumsum per probe.
            self._read_mask = trace.kinds == np.int8(KIND_READ)
            self._cost_prefix = np.cumsum(
                trace.compute_gaps + 1 + l1_data.hit_latency * self._read_mask
            )
            #: Adaptive stretch-length estimate: ~1.5x the *smaller* of the
            #: two most recent stretches (updated by both scan paths in
            #: :meth:`_commit_batch`).  Taking the pairwise minimum adds
            #: hysteresis — one long stretch in a short-stretch regime does
            #: not flip the route, so spiky distributions stay on the scalar
            #: probe while genuinely resident phases (consecutive long
            #: stretches) move to the vectorised one, which the estimate
            #: also sizes so a typical stretch is decided in one numpy round
            #: without over-probing far past its end.
            self._stretch_estimate = _VEC_CHUNK_FIRST
            self._last_stretch = 0
        self._store_buffer: list[int] = []
        self._store_in_flight = False
        self._deferred_request: BusRequest | None = None
        self._stalled_store: int | None = None
        self._started = False
        self._finishing = False
        #: Set by the state-machine transition helpers; consumed once at the
        #: end of the tick (or completion callback) that caused it, where the
        #: event-queue wake is re-derived from :meth:`next_event`.
        self._wake_dirty = False
        bus.connect_master(core_id, self)

    # ------------------------------------------------------------------
    # Observable state
    # ------------------------------------------------------------------
    @property
    def state(self) -> CoreState:
        return self._state

    @property
    def finished(self) -> bool:
        return self._state is CoreState.FINISHED

    @property
    def has_request_ready(self) -> bool:
        """True while this core has a bus request issued but not completed.

        This is the signal (``REQ1`` for the task under analysis) that the
        WCET-estimation-mode contenders observe.
        """
        return self._state is CoreState.WAITING_BUS

    @property
    def execution_cycles(self) -> int:
        return self.counters.execution_cycles

    @property
    def batched_items(self) -> int:
        """Trace items swallowed by the batch interpreter."""
        return self._c_batched_items.value

    @property
    def batch_stretches(self) -> int:
        """Bus-free stretches executed in bulk by the batch interpreter."""
        return self._c_batch_stretches.value

    # ------------------------------------------------------------------
    # Per-cycle behaviour
    # ------------------------------------------------------------------
    def tick(self) -> None:
        self._tick_cycle()
        if self._wake_dirty:
            self._wake_dirty = False
            if self._wake_push:
                self._reschedule_wake()

    def _tick_cycle(self) -> None:
        if self._state is CoreState.FINISHED:
            return
        if not self._started:
            self.counters.start_cycle = self.now
            self._started = True
            self._advance_trace(first_tick=True)
            if self._state is CoreState.FINISHED:
                return

        if self._batch_remaining:
            # Mid-stretch: all effects were applied at stretch entry; the
            # remaining ticks only count down to the boundary item, which is
            # loaded (cycle-accurately) the moment the count hits zero.
            remaining = self._batch_remaining - 1
            self._batch_remaining = remaining
            if not remaining:
                self._advance_trace()
            return

        self._drain_store_buffer()

        if self._state is CoreState.WAITING_BUS:
            self.counters.bus_wait_cycles += 1
            return

        if self._state is CoreState.WAITING_PORT:
            self.counters.bus_wait_cycles += 1
            return

        if self._state is CoreState.STORE_STALL:
            self.counters.store_stall_cycles += 1
            return

        if self._state is CoreState.COMPUTING:
            if self._compute_remaining > 0:
                self._compute_remaining -= 1
                self.counters.compute_cycles += 1
                return
            # Compute phase over: start the memory access of the current item.
            self._begin_access()
            return

        if self._state is CoreState.L1_ACCESS:
            self._l1_remaining -= 1
            self.counters.l1_cycles += 1
            if self._l1_remaining > 0:
                return
            self._finish_l1_access()

    # ------------------------------------------------------------------
    # Fast-forward support
    # ------------------------------------------------------------------
    def _reschedule_wake(self) -> None:
        """Push the wake the hint scan would compute for the next cycle.

        Deriving the pushed wake from :meth:`next_event` (evaluated at the
        next scheduling decision's ``now``) makes the two mechanisms equal by
        construction — the state machine cannot push one thing and poll
        another.
        """
        wake = self.next_event(self.now + 1)
        if wake is None:
            self._wake_cancel(self._wake_slot)
        else:
            self._wake_schedule(self._wake_slot, wake)

    def next_event(self, now: int) -> int | None:
        """Wake hint for the kernel's fast-forward.

        The core schedules its own events only while computing or walking the
        L1 pipeline; in every waiting state the event that unblocks it is a
        bus completion, which the bus's own hint covers (``None`` here).
        """
        state = self._state
        if state is CoreState.FINISHED:
            return None
        if not self._started:
            return now
        if self._batch_remaining:
            # The stretch end is the wake hint: only the tick that loads the
            # boundary item does anything (store buffer is empty mid-stretch).
            return now + self._batch_remaining - 1
        if (
            self._store_buffer
            and not self._store_in_flight
            and state is not CoreState.WAITING_BUS
            and state is not CoreState.WAITING_PORT
        ):
            return now  # a buffered store drains to the bus this very tick
        if state is CoreState.COMPUTING:
            if self._finishing:
                # Trace exhausted; ticks merely poll until the draining store
                # completes (a bus event), touching no counter meanwhile.
                return None if self._store_in_flight else now
            if self._compute_remaining > 0:
                return now + self._compute_remaining
            return now
        if state is CoreState.L1_ACCESS:
            # The L1 pipeline only *does* something on its final cycle; the
            # preceding ones are uniform latency accounting.
            return now + self._l1_remaining - 1
        # WAITING_BUS / WAITING_PORT / STORE_STALL: unblocked by the bus.
        return None

    def fast_forward(self, cycles: int) -> None:
        """Replay the uniform per-cycle accounting of ``cycles`` skipped ticks."""
        if self._batch_remaining:
            # Counters were advanced at stretch entry; skipped ticks would
            # only have counted down.
            self._batch_remaining -= cycles
            return
        state = self._state
        counters = self.counters
        if state is CoreState.WAITING_BUS or state is CoreState.WAITING_PORT:
            counters.bus_wait_cycles += cycles
        elif state is CoreState.STORE_STALL:
            counters.store_stall_cycles += cycles
        elif state is CoreState.COMPUTING:
            if not self._finishing and self._started:
                self._compute_remaining -= cycles
                counters.compute_cycles += cycles
        elif state is CoreState.L1_ACCESS:
            self._l1_remaining -= cycles
            counters.l1_cycles += cycles

    # ------------------------------------------------------------------
    # Trace walking
    # ------------------------------------------------------------------
    def _advance_trace(self, first_tick: bool = False) -> None:
        """Fetch the next trace item, or finish the task.

        With the batch interpreter enabled, first try to swallow a whole
        bus-free stretch; the single-item load below then only ever sees
        items that (may) need the bus, plus everything on the lazy path.
        """
        self._wake_dirty = True
        if self._columnar:
            cursor = self._cursor
            if cursor >= self._trace_len:
                self._finish()
                return
            if self._batch:
                # Cheap viability precheck: writes and atomics always go to
                # the bus, so the scan cannot start there — skip its fixed
                # setup cost entirely on miss/store-bound trace regions.
                kind = self._kinds[cursor]
                if (kind == KIND_READ or kind == KIND_NONE) and self._try_enter_batch(
                    first_tick
                ):
                    return
            self._cursor = cursor + 1
            self._compute_remaining = self._gaps[cursor]
            self._pending_address = self._addresses[cursor]
            self._pending_kind = self._kinds[cursor]
        else:
            item = self.trace.next_item()
            if item is None:
                self._finish()
                return
            self._compute_remaining = item.compute_cycles
            access = item.access
            if access is None:
                self._pending_kind = KIND_NONE
            else:
                self._pending_address = access.address
                self._pending_kind = KIND_BY_ACCESS[access.access]
        self._state = CoreState.COMPUTING

    def _try_enter_batch(self, first_tick: bool) -> bool:
        """Scan the maximal upcoming bus-free stretch and execute it in bulk.

        A stretch is a run of consecutive items that provably never interact
        with the bus: pure-compute items, and reads resident in the L1 (probed
        against the pre-computed placement columns; hits change no residency,
        so earlier hits in the stretch cannot invalidate later probes).  It
        ends at the first write or atomic (mandatory bus), the first read
        miss, or the end of the trace.

        Effects are applied eagerly, exactly as cycle-accurate stepping would
        accumulate them: each hit's replacement touch is stamped with the
        cycle the stepped L1 pipeline would have completed it (one transition
        cycle plus the compute gap plus the hit latency per item), and the
        core counters/cursor advance in bulk.  The core is then left counting
        down ``_batch_remaining`` cycles; the tick in which the count hits
        zero loads the boundary item — the same cycle in which stepping would
        have loaded it.

        ``first_tick`` marks the call from the core's very first tick, which
        (unlike every other call site) executes the first countdown cycle
        within the same tick, so the stamp base shifts back by one cycle.

        Eager effects are bounded by the kernel's :meth:`~repro.sim.kernel.Kernel.run_horizon`
        (fetched lazily, once the first item qualifies): an item is only
        swallowed if its completion tick is guaranteed to execute, so a run
        truncated at its cycle budget reports exactly the partial work the
        stepped run reports — the unswallowed tail re-enters the
        cycle-accurate path and truncates item-by-item like stepping does.
        Hinted stop conditions may watch fast-forwarded *accounting* (the
        :meth:`~repro.sim.kernel.Kernel.add_stop_condition` contract), which
        eager bulk counters would flip cycles early, so any hinted stop
        disables batching outright; outside :meth:`~repro.sim.kernel.Kernel.run`
        (bare ``kernel.step()`` driving) there is no horizon at all and
        batching stays off, keeping stepped partial state exact.

        Two scan implementations share these semantics: the candidate window
        runs from the cursor to the next write/atomic (which must go to the
        bus no matter what the cache holds, pre-computed per trace).  When
        both the window and the core's adaptive stretch-length estimate
        reach ``_VEC_MIN_WINDOW``, the window is decided *vectorised* — the
        reads' pre-computed ``(set, tag)`` placements are compared against
        the L1 tag-store mirror in one numpy operation per probe round, the
        stretch ending at the first read miss or the run-horizon cut found
        on per-run cost prefix sums.  Short windows and short-stretch
        regimes use the scalar per-item probe, whose fixed cost is lower.
        Both commit identical effects — the equivalence matrix covers
        workloads exercising each.
        """
        kernel = self.kernel
        if self._store_buffer or self._store_in_flight or kernel.has_hinted_stops:
            return False
        cursor = self._cursor
        # The next mandatory bus item bounds the window; the position cursor
        # into the per-trace boundary list only ever moves forward.
        bounds = self._bus_bounds
        pos = self._bound_pos
        num_bounds = len(bounds)
        while pos < num_bounds and bounds[pos] < cursor:
            pos += 1
        self._bound_pos = pos
        hard_end = bounds[pos] if pos < num_bounds else self._trace_len
        if (
            hard_end - cursor >= _VEC_MIN_WINDOW
            and self._stretch_estimate >= _VEC_MIN_WINDOW
        ):
            return self._enter_batch_vector(first_tick, cursor, hard_end)
        return self._enter_batch_scalar(first_tick, cursor, hard_end)

    def _enter_batch_scalar(self, first_tick: bool, cursor: int, end: int) -> bool:
        """Per-item probe scan over a short candidate window."""
        kernel = self.kernel
        gaps = self._gaps
        kinds = self._kinds
        sets = self._l1_sets
        tags = self._l1_tags
        probe = self._l1_probe
        commit = self._l1_commit
        cheap = self._hits_cheap
        latency = self.l1_data.hit_latency
        read_kind = KIND_READ
        base = self.now - 1 if first_tick else self.now
        budget = None
        bounded = False
        cycles = 0
        reads = 0
        j = cursor
        while j < end:
            kind = kinds[j]
            if kind == read_kind:
                set_index = sets[j]
                way = probe(set_index, tags[j])
                if way is None:
                    break
                cost = gaps[j] + 1 + latency
            else:  # pure compute (writes/atomics bound the window)
                way = None
                cost = gaps[j] + 1
            if not bounded:
                horizon = kernel.run_horizon(self.now)
                if horizon is None:
                    # No run in progress (the core is being driven by bare
                    # kernel.step() calls): there is no bound on how soon the
                    # caller may inspect partial state, so eager execution is
                    # never safe — stay cycle-accurate.
                    break
                budget = horizon - 1 - base
                bounded = True
            if cycles + cost > budget:
                break
            cycles += cost
            if kind == read_kind:
                if not cheap:
                    commit(set_index, way, base + cycles)
                reads += 1
            j += 1
        if j == cursor:
            return False
        if cheap and reads:
            self._count_hits(reads)
        self._commit_batch(cursor, j, cycles, reads)
        return True

    def _enter_batch_vector(self, first_tick: bool, cursor: int, hard_end: int) -> bool:
        """Vectorised scan: the window's hits fall out of one numpy compare
        per chunk against the L1 tag-store mirror.

        Correct for the same reason the scalar scan is: read hits change no
        residency, so the mirror probed once at stretch entry stays valid for
        every item of the stretch; the first read miss (or the run-horizon
        budget) ends it before any state the probe relied on could change.
        """
        # Fail fast on a leading read miss with one scalar probe — the
        # common exit after a bus completion loads the very item that missed,
        # and it should not cost a whole vectorised chunk to find out.
        if (
            self._kinds[cursor] == KIND_READ
            and self._l1_probe(self._l1_sets[cursor], self._l1_tags[cursor]) is None
        ):
            return False
        kernel = self.kernel
        horizon = kernel.run_horizon(self.now)
        if horizon is None:
            # Bare step() driving — eager execution is never safe (see the
            # scalar path).
            return False
        base = self.now - 1 if first_tick else self.now
        budget = horizon - 1 - base
        if budget <= 0:
            return False
        read_mask = self._read_mask
        cost_prefix = self._cost_prefix
        sets = self._set_array
        tags = self._tag_array
        mirror_tags = self._mirror_tags
        commit = self._commit_hits
        # Everything is priced off the per-run prefix sums: the cost of
        # items ``cursor..k`` is ``cost_prefix[k] - prev``, and a hit at
        # item ``i`` completes at ``stamp_base + cost_prefix[i]``.
        prev = int(cost_prefix[cursor - 1]) if cursor else 0
        stamp_base = base - prev
        # The longest prefix whose completion ticks all execute before the
        # run horizon, as an absolute index bound (one binary search on the
        # whole-run prefix sums).
        budget_end = int(np.searchsorted(cost_prefix, prev + budget, side="right"))
        if budget_end < hard_end:
            hard_end = budget_end
        j = cursor
        reads = 0
        width = self._stretch_estimate
        while j < hard_end:
            end = j + width
            if end > hard_end:
                end = hard_end
            width <<= 2  # gallop: long stretches finish in few rounds
            chunk_reads = read_mask[j:end]
            set_chunk = sets[j:end]
            # Invalid ways mirror as a sentinel no real tag equals, so the
            # residency of the whole chunk is one compare against the tag
            # plane (no validity mask needed).
            match = mirror_tags[set_chunk] == tags[j:end, None]
            viable = match.any(axis=1) | ~chunk_reads
            if viable.all():
                take = end - j
                stop = False
            else:
                # First read miss: the stretch ends just before it.
                take = int(np.argmin(viable))
                stop = True
            if take:
                if self._hits_cheap:
                    count = int(np.count_nonzero(chunk_reads[:take]))
                    if count:
                        self._count_hits(count)
                        reads += count
                else:
                    hits = np.flatnonzero(chunk_reads[:take])
                    if hits.size:
                        # Every read in the prefix is a hit by construction;
                        # stamp each with the exact cycle the stepped L1
                        # pipeline would have completed it.
                        stamps = stamp_base + cost_prefix[j + hits]
                        ways = match[hits].argmax(axis=1)
                        commit(set_chunk[hits].tolist(), ways.tolist(), stamps.tolist())
                        reads += int(hits.size)
                j += take
            if stop:
                break
        if j == cursor:
            return False
        cycles = int(cost_prefix[j - 1]) - prev
        self._commit_batch(cursor, j, cycles, reads)
        return True

    def _commit_batch(self, cursor: int, end: int, cycles: int, reads: int) -> None:
        """Advance counters/cursor for a swallowed stretch and start the
        countdown (shared tail of the scalar and vectorised scans)."""
        items = end - cursor
        # Re-aim the stretch estimate (route + vectorised probe width) at
        # ~1.5x the smaller of this stretch and the previous one.
        floor = items if items < self._last_stretch else self._last_stretch
        self._last_stretch = items
        self._stretch_estimate = min(
            _VEC_CHUNK, max(_VEC_CHUNK_FIRST, floor + (floor >> 1))
        )
        latency = self.l1_data.hit_latency
        counters = self.counters
        counters.items_completed += items
        counters.compute_cycles += cycles - items - latency * reads
        counters.l1_cycles += latency * reads
        counters.accesses += reads
        counters.l1_hits += reads
        self._c_batched_items.value += items
        self._c_batch_stretches.value += 1
        trace = self.kernel.trace
        if trace.enabled:
            trace.record(
                self.now,
                self.name,
                "core.stretch",
                core=self.core_id,
                items=items,
                cycles=cycles,
                reads=reads,
            )
        self._cursor = end
        self._batch_remaining = cycles
        self._pending_kind = KIND_NONE
        self._compute_remaining = 0
        self._state = CoreState.COMPUTING

    def _begin_access(self) -> None:
        self._wake_dirty = True
        if getattr(self, "_finishing", False):
            # Trace already exhausted; we are only waiting for stores to drain.
            if not self._store_buffer and not self._store_in_flight:
                self._finishing = False
                self._finish()
            return
        if self._pending_kind == KIND_NONE:
            # Pure compute item: move straight to the next one.
            self.counters.items_completed += 1
            self._advance_trace()
            return
        self._state = CoreState.L1_ACCESS
        self._l1_remaining = self.l1_data.hit_latency

    def _finish_l1_access(self) -> None:
        self._wake_dirty = True
        kind = self._pending_kind
        address = self._pending_address
        self.counters.accesses += 1
        if kind == KIND_ATOMIC:
            # Atomic operations always go to the bus (they are indivisible
            # read-modify-write transactions against the shared level).
            outcome_needs_bus = True
        else:
            outcome = self.l1_data.access(address, kind == KIND_WRITE, self.now)
            if outcome.hit:
                self.counters.l1_hits += 1
            outcome_needs_bus = outcome.needs_bus
        if not outcome_needs_bus:
            self.counters.items_completed += 1
            self._pending_kind = KIND_NONE
            self._advance_trace()
            return
        if kind == KIND_WRITE and self.store_buffer_entries > 0:
            if len(self._store_buffer) < self.store_buffer_entries:
                self._accept_buffered_store(address)
            else:
                self._stalled_store = address
                self._state = CoreState.STORE_STALL
            return
        request = BusRequest(
            master_id=self.core_id,
            address=address,
            access=ACCESS_BY_KIND[kind],
            issue_cycle=self.now,
        )
        self.counters.bus_requests += 1
        if self._store_in_flight:
            # The single bus port is busy draining a store; issue the demand
            # access as soon as the store completes.
            self._deferred_request = request
            self._state = CoreState.WAITING_PORT
        else:
            self._state = CoreState.WAITING_BUS
            self.bus.submit(request)

    def _accept_buffered_store(self, address: int) -> None:
        """Put a store into the write buffer and let the pipeline continue."""
        self._store_buffer.append(address)
        self.counters.buffered_stores += 1
        self.counters.items_completed += 1
        self._pending_kind = KIND_NONE
        self._advance_trace()

    def _drain_store_buffer(self) -> None:
        """Issue the oldest buffered store when the bus port is free."""
        if self._store_in_flight or not self._store_buffer:
            return
        if self._state in (CoreState.WAITING_BUS, CoreState.WAITING_PORT):
            return
        address = self._store_buffer.pop(0)
        request = BusRequest(
            master_id=self.core_id,
            address=address,
            access=AccessType.WRITE,
            issue_cycle=self.now,
        )
        request.annotate(buffered_store=True)
        self.counters.bus_requests += 1
        self._store_in_flight = True
        self._wake_dirty = True
        self.bus.submit(request)

    def _finish(self) -> None:
        if self._store_buffer or self._store_in_flight:
            # The trace is exhausted but stores are still draining; the task
            # is only complete once its memory effects are globally visible.
            self._state = CoreState.COMPUTING
            self._compute_remaining = 0
            self._pending_kind = KIND_NONE
            self._finishing = True
            return
        self._state = CoreState.FINISHED
        self.counters.finish_cycle = self.now
        trace = self.kernel.trace
        if trace.enabled:
            trace.record(
                self.now,
                self.name,
                "core.finish",
                core=self.core_id,
                items=self.counters.items_completed,
            )

    # ------------------------------------------------------------------
    # Bus master port protocol
    # ------------------------------------------------------------------
    def on_grant(self, request: BusRequest, cycle: int) -> None:
        """The bus granted this core's request; nothing to do until completion."""

    def on_complete(self, request: BusRequest, cycle: int) -> None:
        """The bus transaction finished; resume the trace next cycle."""
        if request.annotations.get("buffered_store"):
            self._complete_buffered_store(request)
            return
        if request.duration is not None:
            self.counters.bus_hold_cycles += request.duration
            # The cycles the bus was held were accounted as wait cycles by the
            # per-cycle loop (the core is in WAITING_BUS while the transaction
            # is in flight); reclassify them as hold cycles.
            self.counters.bus_wait_cycles -= request.duration
        self.counters.request_latencies.append(request.total_latency)
        self.counters.items_completed += 1
        self._pending_kind = KIND_NONE
        self._advance_trace()
        # This callback runs inside the *bus's* tick, after the core's own
        # tick already flushed its wake — flush again here.
        if self._wake_dirty:
            self._wake_dirty = False
            if self._wake_push:
                self._reschedule_wake()

    def _complete_buffered_store(self, request: BusRequest) -> None:
        """A background store drained; free the port and unblock stalls."""
        self._store_in_flight = False
        # Every branch below can change the wake (another buffered store may
        # drain next tick, a finishing core resumes polling, a deferred
        # request goes out): re-derive it unconditionally at the end.
        self._wake_dirty = True
        if request.duration is not None:
            self.counters.bus_hold_cycles += request.duration
        self.counters.request_latencies.append(request.total_latency)
        if self._state is CoreState.STORE_STALL and self._stalled_store is not None:
            address = self._stalled_store
            self._stalled_store = None
            self._accept_buffered_store(address)
        elif self._state is CoreState.WAITING_PORT and self._deferred_request is not None:
            deferred = self._deferred_request
            self._deferred_request = None
            self._state = CoreState.WAITING_BUS
            self.bus.submit(deferred)
        if self._wake_dirty:
            self._wake_dirty = False
            if self._wake_push:
                self._reschedule_wake()

    def reset(self) -> None:
        self.counters = CoreCounters(core_id=self.core_id)
        self.trace.reset()
        self.l1_data.reset()
        if self.l1_instruction is not None:
            self.l1_instruction.reset()
        self._state = CoreState.COMPUTING
        self._compute_remaining = 0
        self._l1_remaining = 0
        self._pending_address = 0
        self._pending_kind = KIND_NONE
        self._cursor = 0
        self._batch_remaining = 0
        self.obs.reset()
        if self._batch:
            self._bound_pos = 0
            self._stretch_estimate = _VEC_CHUNK_FIRST
            self._last_stretch = 0
        self._store_buffer = []
        self._store_in_flight = False
        self._deferred_request = None
        self._stalled_store = None
        self._finishing = False
        self._started = False
        self._wake_dirty = False
