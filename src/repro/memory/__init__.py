"""Memory subsystem: DRAM model and memory controller."""

from .controller import MemoryController
from .dram import DRAM

__all__ = ["DRAM", "MemoryController"]
