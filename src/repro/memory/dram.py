"""DRAM models.

The paper's platform connects the L2 to a DDR2 memory through a memory
controller; every memory access costs a fixed 28 bus cycles.  :class:`DRAM`
therefore only needs to account accesses and expose the fixed latency — the
timing itself is folded into the bus hold time by the latency table, because
the bus is non-split and is occupied for the whole memory turnaround.

:class:`BankedDRAM` is the second contention point the CBA analysis extends
to: independent banks, each with a row buffer that stays open after an
access.  An access to the open row is a *row hit* (cheap), an access to a
bank with no open row is a *row miss* (activate), and an access to a bank
holding a different row is a *row conflict* (precharge + activate, the most
expensive case).  Cores sharing a bank therefore perturb each other's row
buffers — memory-system interference that exists even when the bus itself is
perfectly arbitrated.

Both models are passive and synchronous: the memory controller calls them at
bus-grant time, which happens on executed cycles in every kernel mode
(stepping, fast-forward, batch, event queue), so their state evolution is
bit-identical across modes by construction — no wake hints or
``fast_forward`` bookkeeping are needed.
"""

from __future__ import annotations

from ..sim.errors import ConfigurationError
from ..sim.stats import StatGroup

__all__ = ["DRAM", "BankedDRAM"]


class DRAM:
    """Fixed-latency DRAM with an optional open-row model."""

    def __init__(
        self,
        access_latency: int = 28,
        row_bytes: int = 1024,
        row_hit_latency: int | None = None,
    ) -> None:
        """Create the DRAM model.

        Parameters
        ----------
        access_latency:
            Latency of one memory access in bus cycles (paper: 28).
        row_bytes:
            Row size used when the open-row model is enabled.
        row_hit_latency:
            If given, accesses to the currently open row cost this many cycles
            instead of ``access_latency``.  ``None`` (default) disables the
            row-buffer model, matching the flat latency of the paper.
        """
        if access_latency <= 0:
            raise ValueError("DRAM access latency must be positive")
        if row_hit_latency is not None and not 0 < row_hit_latency <= access_latency:
            raise ValueError("row hit latency must be in (0, access_latency]")
        self.access_latency = access_latency
        self.row_bytes = row_bytes
        self.row_hit_latency = row_hit_latency
        self._open_row: int | None = None
        self.stats = StatGroup(name="dram.stats")
        # Touched on every memory access; pre-bound to skip the dict lookup.
        self._c_reads = self.stats.counter("reads")
        self._c_writes = self.stats.counter("writes")
        self._c_row_hits = self.stats.counter("row_hits")
        self._c_row_misses = self.stats.counter("row_misses")

    def access(self, address: int = 0, read: bool = True) -> int:
        """Perform one access and return its latency in cycles."""
        (self._c_reads if read else self._c_writes).value += 1
        if self.row_hit_latency is None:
            return self.access_latency
        row = address // self.row_bytes
        if row == self._open_row:
            self._c_row_hits.value += 1
            return self.row_hit_latency
        self._c_row_misses.value += 1
        self._open_row = row
        return self.access_latency

    def is_row_hit(self, address: int) -> bool:
        """Would an access to ``address`` hit the open row right now?"""
        if self.row_hit_latency is None:
            return False
        return address // self.row_bytes == self._open_row

    @property
    def total_accesses(self) -> int:
        return self._c_reads.value + self._c_writes.value

    def reset(self) -> None:
        self._open_row = None
        self.stats.reset()


class BankedDRAM:
    """Multi-bank DRAM with per-bank open-row state.

    Addresses interleave across banks at row granularity:
    ``bank = (address // row_bytes) % num_banks`` and the row within the bank
    is ``(address // row_bytes) // num_banks``, so consecutive rows land on
    consecutive banks (the usual interleaving that spreads streaming traffic).

    The same ``access``/``is_row_hit``/``reset`` protocol as :class:`DRAM`,
    so :class:`~repro.memory.controller.MemoryController` drives either model.
    """

    def __init__(
        self,
        num_banks: int = 4,
        row_bytes: int = 1024,
        row_hit_latency: int = 16,
        row_miss_latency: int = 24,
        row_conflict_latency: int = 28,
    ) -> None:
        if num_banks <= 0:
            raise ConfigurationError("BankedDRAM needs at least one bank")
        if row_bytes <= 0 or row_bytes & (row_bytes - 1):
            raise ConfigurationError("row size must be a positive power of two")
        if not 0 < row_hit_latency <= row_miss_latency <= row_conflict_latency:
            raise ConfigurationError(
                "DRAM latencies must satisfy 0 < hit <= miss <= conflict"
            )
        self.num_banks = num_banks
        self.row_bytes = row_bytes
        self.row_hit_latency = row_hit_latency
        self.row_miss_latency = row_miss_latency
        self.row_conflict_latency = row_conflict_latency
        #: Open row per bank (``None`` = bank precharged / no row open).
        self._open_rows: list[int | None] = [None] * num_banks
        self.stats = StatGroup(name="dram.stats")
        self._c_reads = self.stats.counter("reads")
        self._c_writes = self.stats.counter("writes")
        self._c_row_hits = self.stats.counter("row_hits")
        self._c_row_misses = self.stats.counter("row_misses")
        self._c_row_conflicts = self.stats.counter("row_conflicts")

    def _locate(self, address: int) -> tuple[int, int]:
        """``(bank, row)`` of ``address`` under row-granularity interleaving."""
        global_row = address // self.row_bytes
        return global_row % self.num_banks, global_row // self.num_banks

    def is_row_hit(self, address: int) -> bool:
        """Would an access to ``address`` hit its bank's open row right now?"""
        bank, row = self._locate(address)
        return self._open_rows[bank] == row

    def access(self, address: int = 0, read: bool = True) -> int:
        """Perform one access, update the bank state, return its latency."""
        (self._c_reads if read else self._c_writes).value += 1
        bank, row = self._locate(address)
        open_row = self._open_rows[bank]
        if open_row == row:
            self._c_row_hits.value += 1
            return self.row_hit_latency
        self._open_rows[bank] = row
        if open_row is None:
            self._c_row_misses.value += 1
            return self.row_miss_latency
        self._c_row_conflicts.value += 1
        return self.row_conflict_latency

    @property
    def total_accesses(self) -> int:
        return self._c_reads.value + self._c_writes.value

    def reset(self) -> None:
        self._open_rows = [None] * self.num_banks
        self.stats.reset()
