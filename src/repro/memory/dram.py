"""DRAM model.

The paper's platform connects the L2 to a DDR2 memory through a memory
controller; every memory access costs a fixed 28 bus cycles.  The DRAM model
therefore only needs to account accesses and expose the fixed latency — the
timing itself is folded into the bus hold time by the latency table, because
the bus is non-split and is occupied for the whole memory turnaround.

A small refinement is provided for ablation studies: an optional row-buffer
model where accesses hitting the currently open row are cheaper.  It is
disabled by default so the platform matches the paper.
"""

from __future__ import annotations

from ..sim.stats import StatGroup

__all__ = ["DRAM"]


class DRAM:
    """Fixed-latency DRAM with an optional open-row model."""

    def __init__(
        self,
        access_latency: int = 28,
        row_bytes: int = 1024,
        row_hit_latency: int | None = None,
    ) -> None:
        """Create the DRAM model.

        Parameters
        ----------
        access_latency:
            Latency of one memory access in bus cycles (paper: 28).
        row_bytes:
            Row size used when the open-row model is enabled.
        row_hit_latency:
            If given, accesses to the currently open row cost this many cycles
            instead of ``access_latency``.  ``None`` (default) disables the
            row-buffer model, matching the flat latency of the paper.
        """
        if access_latency <= 0:
            raise ValueError("DRAM access latency must be positive")
        if row_hit_latency is not None and not 0 < row_hit_latency <= access_latency:
            raise ValueError("row hit latency must be in (0, access_latency]")
        self.access_latency = access_latency
        self.row_bytes = row_bytes
        self.row_hit_latency = row_hit_latency
        self._open_row: int | None = None
        self.stats = StatGroup(name="dram.stats")
        # Touched on every memory access; pre-bound to skip the dict lookup.
        self._c_reads = self.stats.counter("reads")
        self._c_writes = self.stats.counter("writes")
        self._c_row_hits = self.stats.counter("row_hits")
        self._c_row_misses = self.stats.counter("row_misses")

    def access(self, address: int = 0, read: bool = True) -> int:
        """Perform one access and return its latency in cycles."""
        (self._c_reads if read else self._c_writes).value += 1
        if self.row_hit_latency is None:
            return self.access_latency
        row = address // self.row_bytes
        if row == self._open_row:
            self._c_row_hits.value += 1
            return self.row_hit_latency
        self._c_row_misses.value += 1
        self._open_row = row
        return self.access_latency

    @property
    def total_accesses(self) -> int:
        return self._c_reads.value + self._c_writes.value

    def reset(self) -> None:
        self._open_row = None
        self.stats.reset()
