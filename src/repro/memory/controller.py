"""Memory controller.

Bridges the L2 cache to the DRAM.  In the paper's platform the controller is
a simple single-channel bridge with a fixed per-access latency; it exists in
the model mainly to keep the accounting of memory traffic (reads, writes,
writebacks) separate from the caches and to give experiments a single place
to read memory-pressure statistics from.

With the banked DRAM model the controller also *arbitrates within a bus
transaction*: a dirty L2 miss performs two memory accesses (victim writeback
plus line fetch) and an atomic performs a read+write pair, and the order they
reach the DRAM determines how many row hits the transaction collects.
``"in_order"`` preserves the transaction's own sequence; ``"frfcfs"``
(first-ready, first-come-first-served) repeatedly serves the oldest access
whose row is already open — the open-row-priority reordering real memory
controllers use.  Both policies are pure functions of the access list and
the bank state, so every kernel mode computes identical timings.
"""

from __future__ import annotations

from typing import Sequence, Union

from ..sim.errors import ConfigurationError
from ..sim.stats import StatGroup
from .dram import DRAM, BankedDRAM

__all__ = ["MemoryController"]


class MemoryController:
    """Single-channel memory controller in front of the DRAM."""

    def __init__(
        self,
        dram: Union[DRAM, BankedDRAM, None] = None,
        policy: str = "in_order",
    ) -> None:
        if policy not in ("in_order", "frfcfs"):
            raise ConfigurationError(f"unknown memory controller policy {policy!r}")
        self.dram = dram if dram is not None else DRAM()
        self.policy = policy
        self.stats = StatGroup(name="memctrl.stats")
        # One access per L2 miss / atomic — hot enough to pre-bind.
        self._c_reads = self.stats.counter("reads")
        self._c_writes = self.stats.counter("writes")
        self._c_busy_cycles = self.stats.counter("busy_cycles")
        self._c_reordered = self.stats.counter("reordered_accesses")

    def access(self, address: int = 0, read: bool = True) -> int:
        """Forward one access to the DRAM and return its latency in cycles."""
        latency = self.dram.access(address, read=read)
        (self._c_reads if read else self._c_writes).value += 1
        self._c_busy_cycles.value += latency
        return latency

    def transaction(self, accesses: Sequence[tuple[int, bool]]) -> int:
        """Serve one bus transaction's accesses and return their total latency.

        ``accesses`` is the transaction's ``(address, read)`` list in program
        order.  Under ``"in_order"`` that order is preserved; under
        ``"frfcfs"`` the controller repeatedly picks the oldest access whose
        row is currently open (falling back to the oldest overall), re-testing
        after each serve because serving changes the bank state.  The pick is
        by stable index scan, so the schedule is deterministic.
        """
        if len(accesses) == 1:
            address, read = accesses[0]
            return self.access(address, read=read)
        remaining = list(accesses)
        total = 0
        while remaining:
            pick = 0
            if self.policy == "frfcfs":
                for index, (address, _read) in enumerate(remaining):
                    if self.dram.is_row_hit(address):
                        pick = index
                        break
                if pick:
                    self._c_reordered.value += 1
            address, read = remaining.pop(pick)
            total += self.access(address, read=read)
        return total

    @property
    def total_accesses(self) -> int:
        return self._c_reads.value + self._c_writes.value

    def reset(self) -> None:
        self.dram.reset()
        self.stats.reset()
