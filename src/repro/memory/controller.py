"""Memory controller.

Bridges the L2 cache to the DRAM.  In the paper's platform the controller is
a simple single-channel bridge with a fixed per-access latency; it exists in
the model mainly to keep the accounting of memory traffic (reads, writes,
writebacks) separate from the caches and to give experiments a single place
to read memory-pressure statistics from.
"""

from __future__ import annotations

from ..sim.stats import StatGroup
from .dram import DRAM

__all__ = ["MemoryController"]


class MemoryController:
    """Single-channel memory controller in front of the DRAM."""

    def __init__(self, dram: DRAM | None = None) -> None:
        self.dram = dram if dram is not None else DRAM()
        self.stats = StatGroup(name="memctrl.stats")
        # One access per L2 miss / atomic — hot enough to pre-bind.
        self._c_reads = self.stats.counter("reads")
        self._c_writes = self.stats.counter("writes")
        self._c_busy_cycles = self.stats.counter("busy_cycles")

    def access(self, address: int = 0, read: bool = True) -> int:
        """Forward one access to the DRAM and return its latency in cycles."""
        latency = self.dram.access(address, read=read)
        (self._c_reads if read else self._c_writes).value += 1
        self._c_busy_cycles.value += latency
        return latency

    @property
    def total_accesses(self) -> int:
        return self._c_reads.value + self._c_writes.value

    def reset(self) -> None:
        self.dram.reset()
        self.stats.reset()
