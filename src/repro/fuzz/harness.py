"""Invariant checks the fuzzer runs against each drawn scenario.

Three invariant families, named by the strings a scenario's ``checks`` tuple
carries:

``"modes"``
    The scenario produces bit-identical results in all four kernel modes —
    plain stepping, event-aware fast-forward, the batch interpreter and the
    event-queue scheduler.  The compared snapshot covers everything the
    columnar equivalence matrix compares (execution cycles, per-core
    counters, bus/arbiter/CBA statistics, cache miss rates) plus the DRAM
    bank counters of the banked memory model.

``"campaign"``
    Dispatching the scenario through the campaign engine yields identical
    samples from a serial executor and a two-worker process pool, and a
    store-backed resume re-executes nothing, appends no duplicate records and
    returns the same samples.

``"monotonicity"``
    Adding maximum contention never shortens the task under analysis
    (``CON >= ISO`` per run).  Only checked for configurations where it is a
    sound per-run property — see
    :func:`repro.fuzz.space.monotonicity_eligible`.

Each check is deterministic given the scenario, so a failing scenario is a
self-contained reproduction.  ``run_mode`` accepts an optional ``perturb``
hook (called with the built system and the mode name before running) — the
fuzzer's own mutation self-tests use it to break exactly one mode and assert
the harness notices.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Callable

from ..campaign.campaign import Campaign
from ..campaign.executor import SerialExecutor, create_executor
from ..campaign.jobs import CampaignJob, seed_block_jobs
from ..campaign.store import ArtifactStore
from ..platform.system import MulticoreSystem, SystemResult
from .space import FuzzScenario

__all__ = [
    "KernelMode",
    "KERNEL_MODES",
    "PRODUCTION_MODE",
    "InvariantViolation",
    "build_system",
    "run_mode",
    "snapshot",
    "check_modes",
    "check_campaign",
    "check_monotonicity",
    "check_scenario",
    "CHECKS",
]

PerturbHook = Callable[[MulticoreSystem, str], None]


@dataclass(frozen=True)
class KernelMode:
    """One execution strategy of the simulation kernel."""

    name: str
    fast_forward: bool
    event_queue: bool
    batch_interpreter: bool
    materialize_traces: bool


#: The four modes of the equivalence matrix, reference (stepping) first.
KERNEL_MODES = (
    KernelMode("stepping", False, False, False, False),
    KernelMode("fast_forward", True, False, False, True),
    KernelMode("batch", True, False, True, True),
    KernelMode("event_queue", True, True, True, True),
)
#: Production defaults: everything on.
PRODUCTION_MODE = KERNEL_MODES[3]


@dataclass(frozen=True)
class InvariantViolation:
    """One invariant the scenario broke, with a human-readable detail."""

    invariant: str
    detail: str


# ----------------------------------------------------------------------
# Scenario execution
# ----------------------------------------------------------------------
def build_system(scenario: FuzzScenario, mode: KernelMode) -> MulticoreSystem:
    """Assemble the scenario's platform in the given kernel mode."""
    system = MulticoreSystem(
        scenario.config,
        seed=scenario.seed,
        run_index=scenario.run_index,
        label=f"fuzz-{scenario.kind}",
        fast_forward=mode.fast_forward,
        materialize_traces=mode.materialize_traces,
        batch_interpreter=mode.batch_interpreter,
        event_queue=mode.event_queue,
    )
    kind = scenario.kind
    if kind == "multiprogram":
        for core, spec in scenario.workloads:
            system.add_task(core, spec)
        return system
    tua = scenario.tua_core
    system.add_task(tua, scenario.tua_workload)
    if kind == "max_contention":
        for core in range(scenario.config.num_cores):
            if core != tua:
                system.add_greedy_contender(core)
    elif kind == "wcet_estimation":
        for core in range(scenario.config.num_cores):
            if core != tua:
                system.add_wcet_contender(core, tua_core=tua)
        system.set_tua_initial_budget(tua, 0)
    elif kind == "mixed_criticality":
        best_effort = scenario.best_effort
        if best_effort is None:
            raise ValueError("mixed_criticality scenario without a best-effort spec")
        for core in range(scenario.config.num_cores):
            if core != tua:
                system.add_task(core, best_effort)
    return system


def run_mode(
    scenario: FuzzScenario,
    mode: KernelMode,
    perturb: PerturbHook | None = None,
) -> SystemResult:
    """Run the scenario in one kernel mode and return the system result."""
    system = build_system(scenario, mode)
    if perturb is not None:
        perturb(system, mode.name)
    return system.run(max_cycles=scenario.max_cycles, allow_truncation=True)


def snapshot(result: SystemResult, tua_core: int) -> dict[str, object]:
    """Everything that must be bit-identical across kernel modes.

    Mirrors the columnar equivalence matrix's snapshot;
    :attr:`SystemResult.observability` is deliberately excluded (execution
    strategies legitimately differ there).
    """
    return {
        "truncated": result.truncated,
        "total_cycles": result.total_cycles,
        "tua_cycles": (
            result.execution_cycles(tua_core) if tua_core in result.core_counters else 0
        ),
        "core_counters": {
            core: dict(counters.as_dict())
            for core, counters in sorted(result.core_counters.items())
        },
        "bus_utilization": result.bus_utilization,
        "bandwidth_shares": list(result.bandwidth_shares),
        "grants_per_core": list(result.grants_per_core),
        "cycles_per_core": list(result.cycles_per_core),
        "cba_blocked_cycles": result.cba_blocked_cycles,
        "l1_miss_rates": {
            core: rate for core, rate in sorted(result.l1_miss_rates.items())
        },
        "l2_miss_rate": result.l2_miss_rate,
        "extra": result.extra,
    }


def _diff_keys(reference: dict[str, object], candidate: dict[str, object]) -> list[str]:
    return sorted(key for key in reference if candidate.get(key) != reference[key])


# ----------------------------------------------------------------------
# Invariant checks
# ----------------------------------------------------------------------
def check_modes(
    scenario: FuzzScenario, perturb: PerturbHook | None = None
) -> InvariantViolation | None:
    """All four kernel modes must produce bit-identical snapshots."""
    reference_mode = KERNEL_MODES[0]
    reference = snapshot(run_mode(scenario, reference_mode, perturb), scenario.tua_core)
    for mode in KERNEL_MODES[1:]:
        candidate = snapshot(run_mode(scenario, mode, perturb), scenario.tua_core)
        if candidate != reference:
            differing = _diff_keys(reference, candidate)
            parts = []
            for key in differing[:4]:
                parts.append(
                    f"{key}: {reference_mode.name}={reference[key]!r} "
                    f"{mode.name}={candidate[key]!r}"
                )
            return InvariantViolation(
                invariant="modes",
                detail=(
                    f"{mode.name} diverges from {reference_mode.name} "
                    f"on {', '.join(differing)} — " + "; ".join(parts)
                ),
            )
    return None


def _campaign_jobs(scenario: FuzzScenario, num_runs: int = 3) -> list[CampaignJob]:
    options: tuple[tuple[str, object], ...] = ()
    if scenario.kind == "mixed_criticality":
        options = (("best_effort", scenario.best_effort),)
    return seed_block_jobs(
        label=f"fuzz-{scenario.kind}",
        scenario=scenario.kind,
        seed=scenario.seed,
        num_runs=num_runs,
        workload=scenario.tua_workload,
        config=scenario.config,
        options=options,
        tua_core=scenario.tua_core,
        max_cycles=scenario.max_cycles,
    )


def _samples_by_job(results) -> dict[str, tuple[float, ...]]:
    return {job_id: result.samples for job_id, result in sorted(results.items())}


def check_campaign(
    scenario: FuzzScenario, perturb: PerturbHook | None = None
) -> InvariantViolation | None:
    """Serial == pool dispatch, and store-backed resume is duplicate-free.

    ``perturb`` is accepted for signature uniformity but unused: campaign
    dispatch goes through worker processes the hook cannot reach.
    """
    jobs = _campaign_jobs(scenario)
    serial = _samples_by_job(Campaign(executor=SerialExecutor()).run(jobs))
    pool = _samples_by_job(Campaign(executor=create_executor(2)).run(jobs))
    if pool != serial:
        return InvariantViolation(
            invariant="campaign",
            detail=f"pool samples diverge from serial: serial={serial} pool={pool}",
        )

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        store_path = f"{tmp}/store.jsonl"
        # First leg: one job lands in the store, then the campaign "dies".
        Campaign(store=ArtifactStore(store_path)).run(jobs[:1])
        # Resumed leg: must reuse the stored record and execute the rest.
        resumed = _samples_by_job(
            Campaign(store=ArtifactStore(store_path), resume=True).run(jobs)
        )
        with open(store_path, encoding="utf-8") as handle:
            stored_lines = sum(1 for line in handle if line.strip())
    unique_jobs = len({job.job_id for job in jobs})
    if resumed != serial:
        return InvariantViolation(
            invariant="campaign",
            detail=f"resumed samples diverge from serial: {resumed} != {serial}",
        )
    if stored_lines != unique_jobs:
        return InvariantViolation(
            invariant="campaign",
            detail=(
                f"resume appended duplicates: {stored_lines} store records "
                f"for {unique_jobs} unique jobs"
            ),
        )
    return None


def check_monotonicity(
    scenario: FuzzScenario, perturb: PerturbHook | None = None
) -> InvariantViolation | None:
    """Maximum contention never shortens the task under analysis."""
    isolation = scenario.with_updates(kind="isolation", checks=("monotonicity",))
    contended = scenario.with_updates(
        kind="max_contention",
        checks=("monotonicity",),
        workloads=((scenario.tua_core, scenario.tua_workload),),
        best_effort=None,
    )
    iso = run_mode(isolation, PRODUCTION_MODE, perturb)
    con = run_mode(contended, PRODUCTION_MODE, perturb)
    if iso.truncated or con.truncated:
        return None
    iso_cycles = iso.execution_cycles(scenario.tua_core)
    con_cycles = con.execution_cycles(scenario.tua_core)
    if con_cycles < iso_cycles:
        return InvariantViolation(
            invariant="monotonicity",
            detail=(
                f"contention shortened the TuA: isolation={iso_cycles} "
                f"max_contention={con_cycles}"
            ),
        )
    return None


CHECKS: dict[str, Callable[..., InvariantViolation | None]] = {
    "modes": check_modes,
    "campaign": check_campaign,
    "monotonicity": check_monotonicity,
}


def check_scenario(
    scenario: FuzzScenario, perturb: PerturbHook | None = None
) -> list[InvariantViolation]:
    """Run the scenario's checks in order; stop at the first violation."""
    for name in scenario.checks:
        try:
            check = CHECKS[name]
        except KeyError:
            raise ValueError(f"unknown fuzz invariant {name!r}") from None
        violation = check(scenario, perturb)
        if violation is not None:
            return [violation]
    return []
