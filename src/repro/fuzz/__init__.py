"""Property-based scenario fuzzing for the reproduction.

The fuzzer draws random-but-valid platform/workload/memory configurations
from a seeded generator (:mod:`repro.fuzz.space`), runs each one through
every kernel execution mode and the campaign engine, and checks cross-mode
bit-identity, serial-vs-pool dispatch equivalence, duplicate-free resume and
contention monotonicity (:mod:`repro.fuzz.harness`).  Failures shrink
deterministically (:mod:`repro.fuzz.shrink`) into self-contained repro JSON
files that ``repro fuzz replay`` re-executes (:mod:`repro.fuzz.runner`).
"""

from .harness import (
    CHECKS,
    KERNEL_MODES,
    PRODUCTION_MODE,
    InvariantViolation,
    KernelMode,
    build_system,
    check_campaign,
    check_modes,
    check_monotonicity,
    check_scenario,
    run_mode,
    snapshot,
)
from .runner import (
    REPRO_VERSION,
    FuzzFailure,
    FuzzReport,
    fuzz_iteration,
    fuzz_run,
    iteration_seed,
    load_repro,
    replay_file,
    replay_scenario,
    write_repro,
)
from .shrink import shrink_scenario
from .space import (
    ARBITER_POLICIES,
    DETERMINISTIC_ARBITERS,
    SCENARIO_KINDS,
    FuzzScenario,
    canonical_json,
    draw_scenario,
    monotonicity_eligible,
    scenario_from_dict,
    scenario_to_dict,
)

__all__ = [
    "ARBITER_POLICIES",
    "CHECKS",
    "DETERMINISTIC_ARBITERS",
    "FuzzFailure",
    "FuzzReport",
    "FuzzScenario",
    "InvariantViolation",
    "KERNEL_MODES",
    "KernelMode",
    "PRODUCTION_MODE",
    "REPRO_VERSION",
    "SCENARIO_KINDS",
    "build_system",
    "canonical_json",
    "check_campaign",
    "check_modes",
    "check_monotonicity",
    "check_scenario",
    "draw_scenario",
    "fuzz_iteration",
    "fuzz_run",
    "iteration_seed",
    "load_repro",
    "monotonicity_eligible",
    "replay_file",
    "replay_scenario",
    "run_mode",
    "scenario_from_dict",
    "scenario_to_dict",
    "shrink_scenario",
    "snapshot",
    "write_repro",
]
