"""The fuzz campaign driver: iterate, detect, shrink, persist, replay.

One fuzzing *iteration* derives its own seed from ``(master_seed, index)``
via the repository's stream-derivation hash, draws a scenario from that seed
and runs its invariant checks.  A failing iteration is shrunk (see
:mod:`repro.fuzz.shrink`) and written as a self-contained repro JSON that
:func:`replay_file` — and ``repro fuzz replay`` — re-executes without any
other state.  Minimised cases that found real bugs get committed to
``tests/fuzz/corpus/`` where tier-1 replays them forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from ..sim.rng import derive_seed
from .harness import InvariantViolation, PerturbHook, check_scenario
from .shrink import shrink_scenario
from .space import (
    FuzzScenario,
    canonical_json,
    draw_scenario,
    scenario_from_dict,
    scenario_to_dict,
)

__all__ = [
    "REPRO_VERSION",
    "FuzzFailure",
    "FuzzReport",
    "iteration_seed",
    "fuzz_iteration",
    "fuzz_run",
    "write_repro",
    "load_repro",
    "replay_file",
    "replay_scenario",
]

REPRO_VERSION = 1


@dataclass(frozen=True)
class FuzzFailure:
    """One invariant violation the fuzzer found (and shrank)."""

    iteration: int
    master_seed: int
    violation: InvariantViolation
    scenario: FuzzScenario
    original_scenario: FuzzScenario
    shrink_attempts: int
    repro_path: str | None = None

    def replay_command(self) -> str:
        path = self.repro_path or "<repro.json>"
        return f"repro fuzz replay {path}"


@dataclass
class FuzzReport:
    """Outcome of one ``fuzz_run`` campaign."""

    master_seed: int
    iterations: int
    checks_run: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures


def iteration_seed(master_seed: int, iteration: int) -> int:
    """The drawing seed of one iteration (stable across machines)."""
    return derive_seed(master_seed, "fuzz", iteration)


def fuzz_iteration(master_seed: int, iteration: int) -> FuzzScenario:
    """Draw the scenario that iteration ``iteration`` checks."""
    rng = np.random.default_rng(iteration_seed(master_seed, iteration))
    return draw_scenario(rng)


def fuzz_run(
    master_seed: int,
    iterations: int,
    artifacts_dir: "str | Path | None" = None,
    max_failures: int | None = None,
    shrink: bool = True,
    shrink_budget: int = 64,
    perturb: PerturbHook | None = None,
    log: "Callable[[str], None] | None" = None,
) -> FuzzReport:
    """Run ``iterations`` fuzz iterations and report every failure found.

    ``max_failures`` stops the campaign early once that many failures were
    collected (each one is shrunk and persisted first).  ``artifacts_dir``
    receives one ``repro-<iteration>.json`` per failure.  ``perturb`` is the
    mutation-testing hook threaded through to every mode execution.
    """
    report = FuzzReport(master_seed=master_seed, iterations=iterations)
    emit = log if log is not None else (lambda _message: None)
    for iteration in range(iterations):
        scenario = fuzz_iteration(master_seed, iteration)
        emit(
            f"iteration {iteration}: kind={scenario.kind} "
            f"arbiter={scenario.config.arbitration} "
            f"memory={scenario.config.memory.model} checks={','.join(scenario.checks)}"
        )
        violations = check_scenario(scenario, perturb)
        report.checks_run += len(scenario.checks)
        if not violations:
            continue
        violation = violations[0]
        emit(f"iteration {iteration}: FAILED {violation.invariant} — {violation.detail}")
        shrunk, shrunk_violation, attempts = (
            shrink_scenario(scenario, violation, perturb, max_attempts=shrink_budget)
            if shrink
            else (scenario.with_updates(checks=(violation.invariant,)), violation, 0)
        )
        repro_path: str | None = None
        if artifacts_dir is not None:
            directory = Path(artifacts_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"repro-{iteration}.json"
            write_repro(
                path,
                scenario=shrunk,
                violation=shrunk_violation,
                master_seed=master_seed,
                iteration=iteration,
            )
            repro_path = str(path)
            emit(f"iteration {iteration}: shrunk repro written to {repro_path}")
        report.failures.append(
            FuzzFailure(
                iteration=iteration,
                master_seed=master_seed,
                violation=shrunk_violation,
                scenario=shrunk,
                original_scenario=scenario,
                shrink_attempts=attempts,
                repro_path=repro_path,
            )
        )
        if max_failures is not None and len(report.failures) >= max_failures:
            break
    return report


# ----------------------------------------------------------------------
# Repro files
# ----------------------------------------------------------------------
def write_repro(
    path: "str | Path",
    scenario: FuzzScenario,
    violation: "InvariantViolation | None" = None,
    master_seed: int | None = None,
    iteration: int | None = None,
) -> None:
    """Write a self-contained repro JSON for ``scenario``."""
    record: dict[str, object] = {
        "version": REPRO_VERSION,
        "scenario": scenario_to_dict(scenario),
    }
    if violation is not None:
        record["invariant"] = violation.invariant
        record["detail"] = violation.detail
    if master_seed is not None:
        record["master_seed"] = master_seed
    if iteration is not None:
        record["iteration"] = iteration
    Path(path).write_text(canonical_json(record) + "\n", encoding="utf-8")


def load_repro(path: "str | Path") -> tuple[FuzzScenario, Mapping[str, object]]:
    """Load a repro file; returns the scenario and the raw record."""
    record = json.loads(Path(path).read_text(encoding="utf-8"))
    version = int(record.get("version", 0))
    if version != REPRO_VERSION:
        raise ValueError(f"{path}: unsupported repro version {version}")
    return scenario_from_dict(record["scenario"]), record


def replay_scenario(
    scenario: FuzzScenario, perturb: PerturbHook | None = None
) -> list[InvariantViolation]:
    """Re-run a scenario's checks; empty list means every invariant holds."""
    return check_scenario(scenario, perturb)


def replay_file(
    path: "str | Path", perturb: PerturbHook | None = None
) -> list[InvariantViolation]:
    """Replay a repro file from disk."""
    scenario, _record = load_repro(path)
    return replay_scenario(scenario, perturb)
