"""The fuzzer's scenario space: drawing, validating and (de)serialising.

A :class:`FuzzScenario` is one self-contained point of the configuration
space the property-based fuzzer explores: a platform configuration (cores,
cache geometry and policies, arbiter, CBA, memory model), the workloads
placed on the cores, the scenario kind that wires them together, the
simulation seed, and the list of invariants the harness checks against it.

Everything is drawn from a seeded ``numpy`` generator — the scenario reached
by ``(master_seed, iteration)`` is a pure function of those two integers —
and round-trips losslessly through canonical JSON, which is what makes
failures replayable from a committed repro file.

The drawn dimensions are curated discrete sets rather than free integers so
every combination is *valid by construction* (cache sizes divide evenly,
``MaxL`` covers the worst transaction of whichever memory model was drawn,
partitioned L2 sets divide by the core count); :func:`test_validity
<tests.fuzz.test_space>` locks that property.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Mapping

import numpy as np

from ..sim.config import (
    BusTimings,
    CacheGeometry,
    CBAParameters,
    MemoryConfig,
    PlatformConfig,
)
from ..sim.errors import ConfigurationError
from ..workloads.base import AddressPattern, WorkloadSpec

__all__ = [
    "FuzzScenario",
    "ARBITER_POLICIES",
    "DETERMINISTIC_ARBITERS",
    "SCENARIO_KINDS",
    "draw_scenario",
    "monotonicity_eligible",
    "canonical_json",
    "scenario_to_dict",
    "scenario_from_dict",
    "config_to_dict",
    "config_from_dict",
    "workload_to_dict",
    "workload_from_dict",
]


#: Every arbiter the registry knows; the fuzzer draws uniformly across them.
ARBITER_POLICIES = (
    "fifo",
    "round_robin",
    "tdma",
    "fixed_priority",
    "lottery",
    "random_permutations",
)
#: Arbiters whose grant schedule is a pure function of the request pattern.
#: Only these make per-run contention monotonicity a sound invariant — the
#: randomised arbiters draw from a shared stream, so adding contenders
#: changes the draw sequence and a single run pair proves nothing.
DETERMINISTIC_ARBITERS = frozenset({"fifo", "round_robin", "tdma", "fixed_priority"})
#: Scenario kinds the harness can wire up.
SCENARIO_KINDS = (
    "isolation",
    "max_contention",
    "wcet_estimation",
    "multiprogram",
    "mixed_criticality",
)
#: Kinds that place contenders/tasks beside the task under analysis.
CONTENDED_KINDS = frozenset(
    {"max_contention", "wcet_estimation", "multiprogram", "mixed_criticality"}
)


@dataclass(frozen=True)
class FuzzScenario:
    """One fully-specified point of the fuzzed configuration space."""

    #: Scenario kind (one of :data:`SCENARIO_KINDS`).
    kind: str
    #: Simulation seed / run index handed to the scenario runner.
    seed: int
    run_index: int
    tua_core: int
    max_cycles: int
    config: PlatformConfig
    #: ``(core_id, spec)`` pairs, sorted by core; the task under analysis is
    #: the entry for :attr:`tua_core`.  Multiprogram kinds carry one spec per
    #: core, every other kind exactly one.
    workloads: tuple[tuple[int, WorkloadSpec], ...]
    #: Best-effort program for the non-critical cores (mixed criticality).
    best_effort: WorkloadSpec | None = None
    #: Invariants the harness checks, in order (see :mod:`repro.fuzz.harness`).
    checks: tuple[str, ...] = ("modes",)

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ConfigurationError(f"unknown fuzz scenario kind {self.kind!r}")
        if not self.workloads:
            raise ConfigurationError("a fuzz scenario needs at least one workload")
        cores = [core for core, _spec in self.workloads]
        if cores != sorted(cores) or len(set(cores)) != len(cores):
            raise ConfigurationError("workloads must be sorted by core and unique")
        if self.tua_core not in set(cores):
            raise ConfigurationError("the task under analysis has no workload")
        if any(not 0 <= core < self.config.num_cores for core in cores):
            raise ConfigurationError("workload core out of range")

    @property
    def tua_workload(self) -> WorkloadSpec:
        for core, spec in self.workloads:
            if core == self.tua_core:
                return spec
        raise ConfigurationError("the task under analysis has no workload")

    @property
    def workloads_by_core(self) -> dict[int, WorkloadSpec]:
        return dict(self.workloads)

    def with_updates(self, **kwargs: object) -> "FuzzScenario":
        return replace(self, **kwargs)


# ----------------------------------------------------------------------
# Drawing
# ----------------------------------------------------------------------
def _choice(rng: np.random.Generator, options):
    """Uniform pick from a sequence (index drawn, so options stay ordered)."""
    return options[int(rng.integers(0, len(options)))]


def _draw_workload(rng: np.random.Generator, name: str) -> WorkloadSpec:
    write_fraction = _choice(rng, (0.0, 0.2, 0.5))
    return WorkloadSpec(
        name=name,
        num_accesses=int(rng.integers(30, 161)),
        working_set_bytes=_choice(rng, (2 * 1024, 8 * 1024, 32 * 1024, 64 * 1024)),
        mean_compute_gap=_choice(rng, (0.0, 1.0, 4.0)),
        gap_variability=_choice(rng, (0.0, 0.5, 1.0)),
        pattern=_choice(rng, AddressPattern.ALL),
        stride_bytes=_choice(rng, (16, 32, 64)),
        write_fraction=write_fraction,
        atomic_fraction=_choice(rng, (0.0, 0.05)),
        hot_fraction=_choice(rng, (0.0, 0.3)),
        hot_region_bytes=512,
        tail_compute_cycles=_choice(rng, (0, 16)),
        description="fuzzer-drawn workload",
    )


def _draw_config(rng: np.random.Generator) -> PlatformConfig:
    num_cores = int(_choice(rng, (2, 3, 4)))
    line_bytes = int(_choice(rng, (16, 32)))

    l1_assoc = int(_choice(rng, (2, 4)))
    l1_sets = int(_choice(rng, (8, 16, 32)))
    l1_geometry = CacheGeometry(
        size_bytes=line_bytes * l1_assoc * l1_sets,
        line_bytes=line_bytes,
        associativity=l1_assoc,
    )

    l2_partitioned = bool(_choice(rng, (True, True, True, False)))
    l2_assoc = int(_choice(rng, (2, 4)))
    # Partitioned L2 sets must split evenly across cores, so draw the
    # per-core set count and multiply; the unified draw needs no constraint.
    sets_per_core = int(_choice(rng, (8, 16, 32)))
    l2_sets = num_cores * sets_per_core if l2_partitioned else int(_choice(rng, (32, 64, 128)))
    l2_geometry = CacheGeometry(
        size_bytes=line_bytes * l2_assoc * l2_sets,
        line_bytes=line_bytes,
        associativity=l2_assoc,
    )

    bus_overhead = int(_choice(rng, (0, 1)))
    memory_latency = int(_choice(rng, (20, 28)))
    max_latency = 2 * memory_latency + bus_overhead
    bus_timings = BusTimings(
        memory_latency=memory_latency,
        bus_overhead=bus_overhead,
        max_latency=max_latency,
    )

    model = _choice(rng, ("fixed", "banked", "banked"))
    if model == "banked":
        # MaxL covers 2 * conflict + overhead by making the conflict latency
        # the drawn memory latency; hit/miss are drawn below it.
        conflict = memory_latency
        hit = int(_choice(rng, (8, 12, 16)))
        miss = int(_choice(rng, tuple(m for m in (16, 20, 24) if hit <= m <= conflict)))
        memory = MemoryConfig(
            model="banked",
            num_banks=int(_choice(rng, (2, 4, 8))),
            row_bytes=int(_choice(rng, (512, 1024, 2048))),
            row_hit_latency=hit,
            row_miss_latency=miss,
            row_conflict_latency=conflict,
            controller_policy=_choice(rng, ("in_order", "frfcfs")),
        )
    else:
        memory = MemoryConfig()

    use_cba = bool(_choice(rng, (True, False)))
    return PlatformConfig(
        num_cores=num_cores,
        arbitration=_choice(rng, ARBITER_POLICIES),
        use_cba=use_cba,
        cba=CBAParameters(max_latency=max_latency, num_cores=num_cores),
        bus_timings=bus_timings,
        l1_geometry=l1_geometry,
        l2_geometry=l2_geometry,
        l2_partitioned=l2_partitioned,
        random_caches=bool(_choice(rng, (True, False))),
        store_buffer_entries=int(_choice(rng, (0, 0, 2))),
        memory=memory,
    )


def monotonicity_eligible(config: PlatformConfig) -> bool:
    """Whether per-run contention monotonicity is a sound invariant here.

    Adding contenders must never *reduce* the task under analysis' execution
    time — but only when nothing else changes between the two runs:

    * the arbiter must be deterministic (the randomised arbiters consume a
      shared stream whose draws shift when contenders join);
    * the caches must be deterministic (random replacement draws from the
      shared ``"l2"`` stream, which contender accesses interleave);
    * the L2 must be partitioned (a unified L2 lets contenders evict the
      TuA's dirty lines, which can *shorten* later TuA transactions);
    * the memory model must be fixed (shared DRAM row buffers mean contender
      accesses can leave rows open that speed the TuA up);
    * stores must be blocking (a store buffer overlaps its drain with
      compute, so added waits can hide instead of accumulate).
    """
    return (
        config.arbitration in DETERMINISTIC_ARBITERS
        and not config.random_caches
        and config.l2_partitioned
        and config.memory.model == "fixed"
        and config.store_buffer_entries == 0
    )


def draw_scenario(rng: np.random.Generator) -> FuzzScenario:
    """Draw one valid scenario from the configuration space."""
    config = _draw_config(rng)
    kind = _choice(rng, SCENARIO_KINDS)
    tua_core = int(rng.integers(0, config.num_cores))
    if kind == "multiprogram":
        workloads = tuple(
            (core, _draw_workload(rng, f"fuzz-core{core}"))
            for core in range(config.num_cores)
        )
    else:
        workloads = ((tua_core, _draw_workload(rng, f"fuzz-core{tua_core}")),)
    best_effort = (
        _draw_workload(rng, "fuzz-best-effort") if kind == "mixed_criticality" else None
    )

    checks = ["modes"]
    # The campaign invariants (serial == pool, duplicate-free resume) spin up
    # a process pool, so they ride on a subset of iterations; multiprogram is
    # not a registered campaign scenario (jobs carry one workload).
    if kind != "multiprogram" and int(rng.integers(0, 3)) == 0:
        checks.append("campaign")
    if monotonicity_eligible(config):
        checks.append("monotonicity")

    return FuzzScenario(
        kind=kind,
        seed=int(rng.integers(0, 2**31)),
        run_index=int(rng.integers(0, 4)),
        tua_core=tua_core,
        max_cycles=3_000_000,
        config=config,
        workloads=workloads,
        best_effort=best_effort,
        checks=tuple(checks),
    )


# ----------------------------------------------------------------------
# Canonical (de)serialisation
# ----------------------------------------------------------------------
def canonical_json(value: object) -> str:
    """Stable JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(value, sort_keys=True, indent=2)


def workload_to_dict(spec: WorkloadSpec) -> dict[str, object]:
    record = asdict(spec)
    record["tags"] = list(spec.tags)
    return record


def workload_from_dict(record: Mapping[str, object]) -> WorkloadSpec:
    fields = dict(record)
    fields["tags"] = tuple(fields.get("tags", ()))
    return WorkloadSpec(**fields)  # type: ignore[arg-type]


def config_to_dict(config: PlatformConfig) -> dict[str, object]:
    return asdict(config)


def _tuple_or_none(value) -> tuple | None:
    return None if value is None else tuple(value)


def config_from_dict(record: Mapping[str, object]) -> PlatformConfig:
    fields = dict(record)
    cba = dict(fields["cba"])
    cba["replenish_shares"] = _tuple_or_none(cba.get("replenish_shares"))
    cba["budget_caps"] = _tuple_or_none(cba.get("budget_caps"))
    fields["cba"] = CBAParameters(**cba)
    fields["bus_timings"] = BusTimings(**fields["bus_timings"])
    fields["l1_geometry"] = CacheGeometry(**fields["l1_geometry"])
    fields["l2_geometry"] = CacheGeometry(**fields["l2_geometry"])
    fields["memory"] = MemoryConfig(**fields.get("memory", {}))
    return PlatformConfig(**fields)  # type: ignore[arg-type]


def scenario_to_dict(scenario: FuzzScenario) -> dict[str, object]:
    return {
        "kind": scenario.kind,
        "seed": scenario.seed,
        "run_index": scenario.run_index,
        "tua_core": scenario.tua_core,
        "max_cycles": scenario.max_cycles,
        "config": config_to_dict(scenario.config),
        "workloads": [
            [core, workload_to_dict(spec)] for core, spec in scenario.workloads
        ],
        "best_effort": (
            workload_to_dict(scenario.best_effort)
            if scenario.best_effort is not None
            else None
        ),
        "checks": list(scenario.checks),
    }


def scenario_from_dict(record: Mapping[str, object]) -> FuzzScenario:
    best_effort = record.get("best_effort")
    return FuzzScenario(
        kind=str(record["kind"]),
        seed=int(record["seed"]),
        run_index=int(record["run_index"]),
        tua_core=int(record["tua_core"]),
        max_cycles=int(record["max_cycles"]),
        config=config_from_dict(record["config"]),
        workloads=tuple(
            (int(core), workload_from_dict(spec)) for core, spec in record["workloads"]
        ),
        best_effort=workload_from_dict(best_effort) if best_effort else None,
        checks=tuple(str(c) for c in record["checks"]),
    )
