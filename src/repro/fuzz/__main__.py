"""Allow ``python -m repro.fuzz run|replay|shrink``."""

import sys

from .cli import main

sys.exit(main())
