"""Greedy dimension-wise shrinking of failing fuzz scenarios.

Given a scenario that violates an invariant, the shrinker walks a fixed list
of simplifying transformations — fewer cores, shorter traces, zeroed
workload fractions, deterministic caches, the fixed memory model, CBA off —
and greedily accepts any candidate that still violates the *same* invariant,
repeating until a full pass accepts nothing or the re-execution budget is
spent.  There is no randomness anywhere: the shrunk scenario is a pure
function of the failing scenario (itself a pure function of the fuzzer
seed), so two machines shrink one failure to the same repro file.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from ..sim.config import CBAParameters, MemoryConfig
from ..sim.errors import SimulationError
from ..workloads.base import AddressPattern, WorkloadSpec
from .harness import InvariantViolation, PerturbHook, check_scenario
from .space import FuzzScenario

__all__ = ["shrink_scenario"]


def _shrunk_workload(spec: WorkloadSpec) -> Iterator[WorkloadSpec]:
    """Candidate simplifications of one workload, most aggressive first."""
    if spec.num_accesses > 10:
        yield replace(spec, num_accesses=max(10, spec.num_accesses // 2))
    if spec.pattern != AddressPattern.SEQUENTIAL:
        yield replace(spec, pattern=AddressPattern.SEQUENTIAL)
    if spec.gap_variability:
        yield replace(spec, gap_variability=0.0)
    if spec.atomic_fraction:
        yield replace(spec, atomic_fraction=0.0)
    if spec.hot_fraction:
        yield replace(spec, hot_fraction=0.0)
    if spec.write_fraction:
        yield replace(spec, write_fraction=0.0)
    if spec.tail_compute_cycles:
        yield replace(spec, tail_compute_cycles=0)
    if spec.mean_compute_gap:
        yield replace(spec, mean_compute_gap=0.0)


def _with_config(scenario: FuzzScenario, **updates: object) -> FuzzScenario:
    return scenario.with_updates(config=scenario.config.with_updates(**updates))


def _fewer_cores(scenario: FuzzScenario) -> "FuzzScenario | None":
    """Drop to two cores, keeping the task under analysis on core 0."""
    config = scenario.config
    if config.num_cores <= 2:
        return None
    num_cores = 2
    kept = [(core, spec) for core, spec in scenario.workloads if core < num_cores]
    tua = scenario.tua_core if scenario.tua_core < num_cores else 0
    if tua not in {core for core, _spec in kept}:
        if not kept:
            return None
        tua = kept[0][0]
    new_config = config.with_updates(
        num_cores=num_cores,
        cba=CBAParameters(
            max_latency=config.cba.max_latency,
            num_cores=num_cores,
            initial_budget=config.cba.initial_budget,
        ),
    )
    return scenario.with_updates(config=new_config, workloads=tuple(kept), tua_core=tua)


def _candidates(scenario: FuzzScenario) -> Iterator[FuzzScenario]:
    """One full pass of candidate simplifications, in fixed order.

    Candidate *construction* can itself be invalid (dropping cores may break
    the partitioned-L2 divisibility, for instance); such candidates are
    silently skipped — they are rejected simplifications, nothing more.
    """

    def attempt(build: Callable[[], "FuzzScenario | None"]) -> "FuzzScenario | None":
        try:
            return build()
        except SimulationError:
            return None

    candidate = attempt(lambda: _fewer_cores(scenario))
    if candidate is not None:
        yield candidate
    for index, (core, spec) in enumerate(scenario.workloads):
        for smaller in _shrunk_workload(spec):
            workloads = list(scenario.workloads)
            workloads[index] = (core, smaller)
            candidate = attempt(
                lambda w=tuple(workloads): scenario.with_updates(workloads=w)
            )
            if candidate is not None:
                yield candidate
    if scenario.best_effort is not None:
        for smaller in _shrunk_workload(scenario.best_effort):
            candidate = attempt(
                lambda s=smaller: scenario.with_updates(best_effort=s)
            )
            if candidate is not None:
                yield candidate
    config = scenario.config
    builders: list[Callable[[], "FuzzScenario | None"]] = []
    if config.memory.model != "fixed":
        builders.append(lambda: _with_config(scenario, memory=MemoryConfig()))
    elif config.memory.controller_policy != "in_order":
        builders.append(
            lambda: _with_config(
                scenario, memory=replace(config.memory, controller_policy="in_order")
            )
        )
    if config.use_cba:
        builders.append(lambda: _with_config(scenario, use_cba=False))
    if config.random_caches:
        builders.append(lambda: _with_config(scenario, random_caches=False))
    if config.store_buffer_entries:
        builders.append(lambda: _with_config(scenario, store_buffer_entries=0))
    if scenario.run_index:
        builders.append(lambda: scenario.with_updates(run_index=0))
    for build in builders:
        candidate = attempt(build)
        if candidate is not None:
            yield candidate


def shrink_scenario(
    scenario: FuzzScenario,
    violation: InvariantViolation,
    perturb: PerturbHook | None = None,
    max_attempts: int = 64,
) -> tuple[FuzzScenario, InvariantViolation, int]:
    """Greedily minimise ``scenario`` while it still fails the same invariant.

    Returns ``(shrunk, violation, attempts)`` — the smallest accepted
    scenario (its ``checks`` restricted to the failing invariant), the
    violation it produces, and how many candidate re-executions were spent.
    """
    failing = violation.invariant
    current = scenario.with_updates(checks=(failing,))
    current_violation = violation
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                found = check_scenario(candidate, perturb)
            except SimulationError:
                # An invalid simplification (e.g. geometry no longer divides)
                # is just a rejected candidate, not a shrink failure.
                continue
            if found and found[0].invariant == failing:
                current = candidate
                current_violation = found[0]
                improved = True
                break
    return current, current_violation, attempts
