"""Command-line front end: ``repro fuzz run|replay|shrink``.

Exit codes:

* ``0`` — every iteration / repro file passed its invariants;
* ``1`` — at least one invariant violation (repros written when ``--artifacts``
  is given);
* ``2`` — configuration or usage error (bad paths, corrupt repro files, ...).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from ..sim.errors import SimulationError
from .runner import fuzz_run, load_repro, replay_scenario, write_repro
from .shrink import shrink_scenario

__all__ = ["add_fuzz_arguments", "main", "run_from_args"]


def add_fuzz_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the fuzz subcommands (shared by ``repro fuzz`` and tests)."""
    sub = parser.add_subparsers(dest="fuzz_command", required=True)

    run = sub.add_parser(
        "run", help="draw seeded random scenarios and check their invariants"
    )
    run.add_argument("--seed", type=int, default=0, metavar="N",
                     help="master seed; every iteration derives its own "
                          "sub-seed from it (default: 0)")
    run.add_argument("--iterations", type=int, default=25, metavar="N",
                     help="number of scenarios to draw and check (default: 25)")
    run.add_argument("--artifacts", default=None, metavar="DIR",
                     help="write one shrunk repro-<i>.json per failure here")
    run.add_argument("--max-failures", type=int, default=None, metavar="N",
                     help="stop after collecting N failures (default: run all)")
    run.add_argument("--no-shrink", action="store_true",
                     help="persist failing scenarios unshrunk (faster triage)")
    run.add_argument("--shrink-budget", type=int, default=64, metavar="N",
                     help="max candidate re-executions per shrink (default: 64)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-iteration progress on stderr")

    replay = sub.add_parser(
        "replay", help="re-execute repro files and re-check their invariants"
    )
    replay.add_argument("repros", nargs="+", metavar="PATH",
                        help="repro JSON files written by `repro fuzz run`")

    shrink = sub.add_parser(
        "shrink", help="further minimise an existing failing repro file"
    )
    shrink.add_argument("repro", metavar="PATH", help="failing repro JSON file")
    shrink.add_argument("--output", default=None, metavar="PATH",
                        help="write the shrunk repro here (default: in place)")
    shrink.add_argument("--shrink-budget", type=int, default=64, metavar="N",
                        help="max candidate re-executions (default: 64)")


def _cmd_run(args: argparse.Namespace) -> int:
    log = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    report = fuzz_run(
        master_seed=args.seed,
        iterations=args.iterations,
        artifacts_dir=args.artifacts,
        max_failures=args.max_failures,
        shrink=not args.no_shrink,
        shrink_budget=args.shrink_budget,
        log=log,
    )
    print(
        f"fuzz: seed={report.master_seed} iterations={report.iterations} "
        f"checks={report.checks_run} failures={len(report.failures)}"
    )
    for failure in report.failures:
        print(
            f"  iteration {failure.iteration}: {failure.violation.invariant} — "
            f"{failure.violation.detail}"
        )
        if failure.repro_path is not None:
            print(f"    replay with: {failure.replay_command()}")
    if report.failures:
        print(
            f"fuzz: reproduce the whole campaign with "
            f"`repro fuzz run --seed {report.master_seed} "
            f"--iterations {report.iterations}`"
        )
    return 0 if report.passed else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.repros:
        try:
            scenario, record = load_repro(path)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"fuzz replay: {path}: unreadable repro: {error}", file=sys.stderr)
            return 2
        violations = replay_scenario(scenario)
        if violations:
            failures += 1
            expected = record.get("invariant")
            note = f" (repro recorded: {expected})" if expected else ""
            print(
                f"FAIL {path}: {violations[0].invariant} — "
                f"{violations[0].detail}{note}"
            )
        else:
            print(f"PASS {path}: checks={','.join(scenario.checks)}")
    print(f"fuzz replay: {len(args.repros)} file(s), {failures} failing")
    return 0 if failures == 0 else 1


def _cmd_shrink(args: argparse.Namespace) -> int:
    try:
        scenario, record = load_repro(args.repro)
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"fuzz shrink: {args.repro}: unreadable repro: {error}", file=sys.stderr)
        return 2
    violations = replay_scenario(scenario)
    if not violations:
        print(f"fuzz shrink: {args.repro} passes its checks; nothing to shrink")
        return 0
    shrunk, violation, attempts = shrink_scenario(
        scenario, violations[0], max_attempts=args.shrink_budget
    )
    output = Path(args.output) if args.output else Path(args.repro)
    write_repro(
        output,
        scenario=shrunk,
        violation=violation,
        master_seed=record.get("master_seed"),  # type: ignore[arg-type]
        iteration=record.get("iteration"),  # type: ignore[arg-type]
    )
    print(
        f"fuzz shrink: {violation.invariant} still fails after {attempts} "
        f"attempt(s); wrote {output}"
    )
    return 1


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a fuzz invocation from parsed arguments."""
    command = args.fuzz_command
    if command == "run":
        return _cmd_run(args)
    if command == "replay":
        return _cmd_replay(args)
    if command == "shrink":
        return _cmd_shrink(args)
    raise ValueError(f"unknown fuzz command {command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.fuzz``)."""
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Property-based scenario fuzzer: random platform/workload/"
                    "memory configurations checked for kernel-mode equivalence, "
                    "campaign-dispatch equivalence and contention monotonicity.",
    )
    add_fuzz_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_from_args(args)
    except SimulationError as error:
        print(f"repro fuzz: error: {error}", file=sys.stderr)
        return 2
