"""Allow ``python -m repro <command>`` to run the CLI."""

import sys

from .cli import main

sys.exit(main())
