"""Lottery arbitration (LOTTERYBUS-style).

Each requesting master holds a number of lottery tickets; every arbitration a
winner is drawn with probability proportional to its tickets.  With equal
tickets this is request-fair in expectation and is MBPTA-compatible because
grant latencies are probabilistic with a known distribution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sim.errors import ArbitrationError
from .base import Arbiter

__all__ = ["LotteryArbiter"]


class LotteryArbiter(Arbiter):
    """Randomised arbitration with per-master ticket weights."""

    policy_name = "lottery"

    def __init__(
        self,
        num_masters: int,
        rng: np.random.Generator,
        tickets: Sequence[int] | None = None,
    ) -> None:
        """Create the arbiter.

        Parameters
        ----------
        rng:
            Random stream (one of :class:`repro.sim.RandomStreams`' streams on
            the real platform; any :class:`numpy.random.Generator` in tests).
        tickets:
            Tickets per master; defaults to one each (uniform lottery).
        """
        super().__init__(num_masters)
        if tickets is None:
            tickets = [1] * num_masters
        if len(tickets) != num_masters:
            raise ArbitrationError("need one ticket count per master")
        if any(t <= 0 for t in tickets):
            raise ArbitrationError("every master needs at least one ticket")
        self.tickets = list(tickets)
        self._rng = rng

    def arbitrate(self, requestors: Sequence[int], cycle: int) -> int | None:
        pending = self._validate_requestors(requestors)
        if not pending:
            return None
        weights = np.array([self.tickets[m] for m in pending], dtype=float)
        weights /= weights.sum()
        choice = int(self._rng.choice(np.array(pending), p=weights))
        return self._validate_choice(choice, requestors)
