"""First-in first-out arbitration.

Masters are granted in the order their requests arrived.  The bus reports the
arrival cycle of each pending request through :meth:`FIFOArbiter.note_request`
(called when a master asserts its request line); arbitration then picks the
requestor with the oldest pending request, breaking ties by master index.
"""

from __future__ import annotations

from typing import Sequence

from .base import Arbiter

__all__ = ["FIFOArbiter"]


class FIFOArbiter(Arbiter):
    """Grant the master whose request has been pending the longest."""

    policy_name = "fifo"

    def __init__(self, num_masters: int) -> None:
        super().__init__(num_masters)
        #: Arrival cycle of the currently pending request of each master, or
        #: ``None`` when the master has no pending request recorded.
        self._arrival: list[int | None] = [None] * num_masters
        self._sequence = 0
        self._order: list[int | None] = [None] * num_masters

    def on_request(self, master_id: int, cycle: int) -> None:
        """Record that ``master_id`` asserted a new request at ``cycle``."""
        if self._arrival[master_id] is None:
            self._arrival[master_id] = cycle
            self._order[master_id] = self._sequence
            self._sequence += 1

    # Backwards-compatible alias used by some unit tests / direct callers.
    note_request = on_request

    def arbitrate(self, requestors: Sequence[int], cycle: int) -> int | None:
        pending = self._validate_requestors(requestors)
        if not pending:
            return None
        # Masters whose request the bus reported earlier win; a master the bus
        # never reported (possible when FIFO is used standalone in tests) is
        # treated as having arrived this cycle.
        def key(master: int) -> tuple[int, int, int]:
            arrival = self._arrival[master]
            order = self._order[master]
            if arrival is None:
                return (cycle, self._sequence, master)
            return (arrival, order if order is not None else self._sequence, master)

        choice = min(pending, key=key)
        return self._validate_choice(choice, requestors)

    def on_grant(self, master_id: int, duration: int, cycle: int) -> None:
        super().on_grant(master_id, duration, cycle)
        self._arrival[master_id] = None
        self._order[master_id] = None

    def reset(self) -> None:
        super().reset()
        self._arrival = [None] * self.num_masters
        self._order = [None] * self.num_masters
        self._sequence = 0
