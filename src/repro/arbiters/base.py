"""Common interface of all bus arbitration policies.

An arbiter answers one question every cycle: *given the set of masters with a
pending, eligible request, which one (if any) is granted the bus?*  All the
policies studied in the paper — FIFO, round-robin, TDMA, lottery, random
permutations — implement this interface, and the credit-based arbitration of
the paper (:class:`repro.core.cba.CreditBasedArbiter`) wraps any of them,
filtering the set of eligible masters by budget before delegating.

The bus drives an arbiter through three hooks:

* :meth:`Arbiter.cycle_update` every cycle, with the master currently holding
  the bus (or ``None``) — used by stateful policies (TDMA slot counters,
  credit budgets);
* :meth:`Arbiter.arbitrate` when the bus is idle and at least one master has a
  pending request;
* :meth:`Arbiter.on_grant` when the grant actually happens, with the resolved
  transaction duration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..sim.errors import ArbitrationError

__all__ = ["Arbiter"]


class Arbiter(ABC):
    """Abstract bus arbiter."""

    #: Short policy identifier used by the registry and in reports.
    policy_name: str = "abstract"

    def __init__(self, num_masters: int) -> None:
        if num_masters <= 0:
            raise ArbitrationError("an arbiter needs at least one master")
        self.num_masters = num_masters
        self.grants_per_master = [0] * num_masters
        self.cycles_granted_per_master = [0] * num_masters

    # ------------------------------------------------------------------
    # Policy interface
    # ------------------------------------------------------------------
    @abstractmethod
    def arbitrate(self, requestors: Sequence[int], cycle: int) -> int | None:
        """Return the master to grant among ``requestors``, or ``None``.

        ``requestors`` is the list of master indices with a pending, eligible
        request this cycle.  Implementations must only ever return a member of
        ``requestors`` (or ``None`` to leave the bus idle, e.g. TDMA outside
        the owner's slot).
        """

    def on_grant(self, master_id: int, duration: int, cycle: int) -> None:
        """Notification that ``master_id`` was granted for ``duration`` cycles.

        Subclasses overriding this must call ``super().on_grant`` so the
        per-master grant accounting stays correct.
        """
        self.grants_per_master[master_id] += 1
        self.cycles_granted_per_master[master_id] += duration

    def on_request(self, master_id: int, cycle: int) -> None:
        """Notification that ``master_id`` asserted a new request at ``cycle``.

        Most policies ignore it; FIFO uses it to order grants by arrival time.
        """

    def cycle_update(self, cycle: int, holder: int | None) -> None:
        """Per-cycle hook; ``holder`` is the master using the bus this cycle."""

    # ------------------------------------------------------------------
    # Fast-forward support
    # ------------------------------------------------------------------
    def next_grant_opportunity(self, requestors: Sequence[int], cycle: int) -> int | None:
        """Earliest cycle ``>= cycle`` at which one of ``requestors`` could be granted.

        Called by the bus while it sits idle with pending requests, to bound
        how far the kernel may fast-forward.  The value must never be later
        than the true next grant (being early merely wastes a wake-up; being
        late would change behaviour).  Policies that grant whenever anyone
        requests keep the conservative default of ``cycle`` — with such a
        policy the bus never idles with pending requests anyway.  ``None``
        means no member of ``requestors`` can ever be granted (e.g. a master
        absent from a TDMA schedule).
        """
        return cycle

    def advance_cycles(
        self,
        start_cycle: int,
        cycles: int,
        holder: int | None,
        idle_requestors: Sequence[int] = (),
    ) -> None:
        """Bulk equivalent of ``cycles`` per-cycle bus interactions.

        Must reproduce exactly what ``cycles`` consecutive
        :meth:`cycle_update` calls (constant ``holder``) — plus, when the bus
        idles with ``idle_requestors`` pending, the corresponding
        :meth:`arbitrate` calls that returned ``None`` — would have done.
        The default replays :meth:`cycle_update` only, short-circuiting for
        policies that keep the base class's no-op (all the slot-/queue-based
        policies here are stateless per cycle).
        """
        if type(self).cycle_update is Arbiter.cycle_update:
            return
        for offset in range(cycles):
            self.cycle_update(start_cycle + offset, holder)

    def reset(self) -> None:
        """Return the arbiter to its power-on state."""
        self.grants_per_master = [0] * self.num_masters
        self.cycles_granted_per_master = [0] * self.num_masters

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _validate_requestors(self, requestors: Sequence[int]) -> list[int]:
        """Check requestor indices and return them as a list."""
        out = []
        for master in requestors:
            if not 0 <= master < self.num_masters:
                raise ArbitrationError(
                    f"requestor {master} out of range for {self.num_masters} masters"
                )
            out.append(master)
        return out

    def _validate_choice(self, choice: int | None, requestors: Sequence[int]) -> int | None:
        """Ensure the arbitration decision is legal."""
        if choice is not None and choice not in requestors:
            raise ArbitrationError(
                f"{type(self).__name__} granted master {choice}, which is not requesting"
            )
        return choice

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_masters={self.num_masters})"
