"""Random-permutations arbitration.

The MBPTA-friendly policy of Jalle et al. (DATE 2014) and the base policy the
paper integrates CBA with on the FPGA prototype.  The arbiter draws a random
permutation of all masters and walks it: each *arbitration window* grants
masters in the order of the permutation, skipping masters without a pending
request; when the permutation is exhausted a fresh one is drawn.  Compared to
a pure lottery this bounds the distance between consecutive grants to the same
master (at most ``2N - 1`` grant opportunities), which tightens probabilistic
WCET estimates, while still providing the randomisation MBPTA needs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Arbiter

__all__ = ["RandomPermutationsArbiter"]


class RandomPermutationsArbiter(Arbiter):
    """Grant masters following successive random permutations."""

    policy_name = "random_permutations"

    def __init__(self, num_masters: int, rng: np.random.Generator) -> None:
        super().__init__(num_masters)
        self._rng = rng
        self._window: list[int] = []

    def _refill_window(self) -> None:
        # tolist() converts to plain ints in C — same draw, same values,
        # measurably cheaper than a Python-level comprehension per window.
        self._window = self._rng.permutation(self.num_masters).tolist()

    def arbitrate(self, requestors: Sequence[int], cycle: int) -> int | None:
        pending = set(self._validate_requestors(requestors))
        if not pending:
            return None
        # Walk the current permutation; if no remaining entry is pending,
        # draw a new permutation (possibly repeatedly, though with at least
        # one pending master a fresh full permutation always contains it).
        for _ in range(2):
            while self._window:
                candidate = self._window[0]
                if candidate in pending:
                    return self._validate_choice(candidate, list(pending))
                # Masters without a pending request lose their turn in this
                # permutation (the slot is not wasted; arbitration moves on).
                self._window.pop(0)
            self._refill_window()
        raise AssertionError("unreachable: fresh permutation must contain a pending master")

    def on_grant(self, master_id: int, duration: int, cycle: int) -> None:
        super().on_grant(master_id, duration, cycle)
        # The granted master consumes its position in the permutation.
        if self._window and self._window[0] == master_id:
            self._window.pop(0)
        elif master_id in self._window:
            self._window.remove(master_id)

    def reset(self) -> None:
        super().reset()
        self._window = []
