"""Fixed-priority arbitration.

Included as a baseline the paper explicitly rules out for systems where every
core runs real-time tasks: a high-priority master that requests continuously
starves the others, so worst-case bounds for low-priority masters do not
exist.  It is still useful for tests and for demonstrating that starvation in
the simulator behaves as the paper argues.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.errors import ArbitrationError
from .base import Arbiter

__all__ = ["FixedPriorityArbiter"]


class FixedPriorityArbiter(Arbiter):
    """Always grant the requesting master with the highest priority."""

    policy_name = "fixed_priority"

    def __init__(self, num_masters: int, priorities: Sequence[int] | None = None) -> None:
        """Create the arbiter.

        Parameters
        ----------
        priorities:
            Priority value per master; higher wins.  Defaults to master 0
            having the highest priority (``num_masters - index``).
        """
        super().__init__(num_masters)
        if priorities is None:
            priorities = [num_masters - i for i in range(num_masters)]
        if len(priorities) != num_masters:
            raise ArbitrationError("need one priority per master")
        if len(set(priorities)) != num_masters:
            raise ArbitrationError("priorities must be distinct")
        self.priorities = list(priorities)

    def arbitrate(self, requestors: Sequence[int], cycle: int) -> int | None:
        pending = self._validate_requestors(requestors)
        if not pending:
            return None
        choice = max(pending, key=lambda master: self.priorities[master])
        return self._validate_choice(choice, requestors)
