"""Time-division multiple access (TDMA) arbitration.

Time is split into fixed-length slots assigned to masters in a static
schedule.  Following the description in Section II of the paper (and the
deconstruction in Jalle et al., SIES 2013), a request may only start in the
*first cycle* of its owner's slot: since the duration of a request is unknown
a priori, starting it later could overrun into the next slot and perturb the
other masters' guaranteed slots.  The slot length therefore matches the
longest possible request (``MaxL``), and a request shorter than the slot
leaves the bus idle for the remainder of the slot — exactly the bandwidth
waste the paper describes.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.errors import ArbitrationError
from .base import Arbiter

__all__ = ["TDMAArbiter"]


class TDMAArbiter(Arbiter):
    """Static slot-based arbitration with issue-at-slot-start semantics."""

    policy_name = "tdma"

    def __init__(
        self,
        num_masters: int,
        slot_cycles: int = 56,
        schedule: Sequence[int] | None = None,
        issue_only_at_slot_start: bool = True,
    ) -> None:
        """Create the arbiter.

        Parameters
        ----------
        slot_cycles:
            Length of each TDMA slot; the paper sizes it as ``MaxL``.
        schedule:
            Sequence of master indices owning consecutive slots.  Defaults to
            ``0, 1, ..., num_masters - 1`` repeating.
        issue_only_at_slot_start:
            When True (paper semantics) the slot owner may only be granted in
            the first cycle of its slot.  When False the owner may be granted
            at any point of its slot where the remaining slot length still
            covers ``slot_cycles`` (a common "work-conserving within slot"
            variant, exposed for ablation).
        """
        super().__init__(num_masters)
        if slot_cycles <= 0:
            raise ArbitrationError("TDMA slot length must be positive")
        if schedule is None:
            schedule = list(range(num_masters))
        schedule = list(schedule)
        if not schedule:
            raise ArbitrationError("TDMA schedule cannot be empty")
        for master in schedule:
            if not 0 <= master < num_masters:
                raise ArbitrationError(f"TDMA schedule references unknown master {master}")
        self.slot_cycles = slot_cycles
        self.schedule = schedule
        self.issue_only_at_slot_start = issue_only_at_slot_start

    # ------------------------------------------------------------------
    # Schedule helpers
    # ------------------------------------------------------------------
    def slot_index(self, cycle: int) -> int:
        """Index into the schedule of the slot containing ``cycle``."""
        return (cycle // self.slot_cycles) % len(self.schedule)

    def slot_owner(self, cycle: int) -> int:
        """Master owning the slot containing ``cycle``."""
        return self.schedule[self.slot_index(cycle)]

    def cycle_within_slot(self, cycle: int) -> int:
        """Offset of ``cycle`` within its slot (0 = slot start)."""
        return cycle % self.slot_cycles

    def next_slot_start(self, master_id: int, cycle: int) -> int:
        """First cycle ≥ ``cycle`` that starts a slot owned by ``master_id``."""
        if master_id not in self.schedule:
            raise ArbitrationError(f"master {master_id} never appears in the TDMA schedule")
        probe = cycle
        # Jump to the next slot boundary unless we are exactly on one.
        if probe % self.slot_cycles:
            probe += self.slot_cycles - (probe % self.slot_cycles)
        for _ in range(len(self.schedule) + 1):
            if self.slot_owner(probe) == master_id:
                return probe
            probe += self.slot_cycles
        raise ArbitrationError("unreachable: schedule scan failed")  # pragma: no cover

    def next_grant_opportunity(self, requestors: Sequence[int], cycle: int) -> int | None:
        """First cycle ``>= cycle`` at which a pending master's slot allows a grant.

        With issue-at-slot-start semantics that is the next slot *boundary*
        owned by a pending master; in the work-conserving variant the current
        slot also qualifies mid-slot when its owner is pending.  ``None`` when
        no pending master owns any slot of the schedule (it would starve).
        """
        pending = set(self._validate_requestors(requestors))
        if not pending:
            return None
        offset = cycle % self.slot_cycles
        if self.slot_owner(cycle) in pending and (
            not self.issue_only_at_slot_start or offset == 0
        ):
            return cycle
        probe = cycle - offset + self.slot_cycles
        for _ in range(len(self.schedule)):
            if self.slot_owner(probe) in pending:
                return probe
            probe += self.slot_cycles
        return None

    # ------------------------------------------------------------------
    # Arbiter interface
    # ------------------------------------------------------------------
    def arbitrate(self, requestors: Sequence[int], cycle: int) -> int | None:
        pending = set(self._validate_requestors(requestors))
        if not pending:
            return None
        owner = self.slot_owner(cycle)
        if owner not in pending:
            return None
        if self.issue_only_at_slot_start and self.cycle_within_slot(cycle) != 0:
            return None
        return self._validate_choice(owner, requestors)
