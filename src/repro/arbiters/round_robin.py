"""Round-robin arbitration.

The classic request-fair policy: masters are granted in circular order
starting from the one after the last grantee.  Under saturation every master
receives the same *number of slots*, which is exactly the behaviour the paper
identifies as unfair in *cycles* when request durations differ.
"""

from __future__ import annotations

from typing import Sequence

from .base import Arbiter

__all__ = ["RoundRobinArbiter"]


class RoundRobinArbiter(Arbiter):
    """Grant masters in circular order starting after the previous grantee."""

    policy_name = "round_robin"

    def __init__(self, num_masters: int) -> None:
        super().__init__(num_masters)
        self._last_granted = num_masters - 1

    def arbitrate(self, requestors: Sequence[int], cycle: int) -> int | None:
        pending = set(self._validate_requestors(requestors))
        if not pending:
            return None
        for offset in range(1, self.num_masters + 1):
            candidate = (self._last_granted + offset) % self.num_masters
            if candidate in pending:
                return self._validate_choice(candidate, requestors)
        return None

    def on_grant(self, master_id: int, duration: int, cycle: int) -> None:
        super().on_grant(master_id, duration, cycle)
        self._last_granted = master_id

    def reset(self) -> None:
        super().reset()
        self._last_granted = self.num_masters - 1
