"""Bus arbitration policies.

This package contains the slot-fair baseline policies the paper compares
against (FIFO, round-robin, TDMA, lottery, random permutations, fixed
priority) behind a common :class:`~repro.arbiters.base.Arbiter` interface,
plus a registry to build them by name.  The paper's credit-based arbitration
lives in :mod:`repro.core` and wraps any of these.
"""

from .base import Arbiter
from .fifo import FIFOArbiter
from .lottery import LotteryArbiter
from .priority import FixedPriorityArbiter
from .random_permutations import RandomPermutationsArbiter
from .registry import ARBITER_POLICIES, available_policies, create_arbiter
from .round_robin import RoundRobinArbiter
from .tdma import TDMAArbiter

__all__ = [
    "Arbiter",
    "FIFOArbiter",
    "RoundRobinArbiter",
    "TDMAArbiter",
    "LotteryArbiter",
    "RandomPermutationsArbiter",
    "FixedPriorityArbiter",
    "ARBITER_POLICIES",
    "available_policies",
    "create_arbiter",
]
