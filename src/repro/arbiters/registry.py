"""Registry/factory for arbitration policies.

Experiments select arbiters by name (e.g. ``"random_permutations"`` in a
:class:`repro.sim.PlatformConfig`); the registry builds the corresponding
arbiter, injecting the random stream where the policy needs one.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..sim.errors import ConfigurationError
from .base import Arbiter
from .fifo import FIFOArbiter
from .lottery import LotteryArbiter
from .priority import FixedPriorityArbiter
from .random_permutations import RandomPermutationsArbiter
from .round_robin import RoundRobinArbiter
from .tdma import TDMAArbiter

__all__ = ["ARBITER_POLICIES", "create_arbiter", "available_policies"]

_ArbiterFactory = Callable[[int, np.random.Generator, dict], Arbiter]


def _make_round_robin(num_masters: int, rng: np.random.Generator, options: dict) -> Arbiter:
    return RoundRobinArbiter(num_masters)


def _make_fifo(num_masters: int, rng: np.random.Generator, options: dict) -> Arbiter:
    return FIFOArbiter(num_masters)


def _make_tdma(num_masters: int, rng: np.random.Generator, options: dict) -> Arbiter:
    return TDMAArbiter(
        num_masters,
        slot_cycles=options.get("slot_cycles", 56),
        schedule=options.get("schedule"),
        issue_only_at_slot_start=options.get("issue_only_at_slot_start", True),
    )


def _make_lottery(num_masters: int, rng: np.random.Generator, options: dict) -> Arbiter:
    return LotteryArbiter(num_masters, rng, tickets=options.get("tickets"))


def _make_random_permutations(
    num_masters: int, rng: np.random.Generator, options: dict
) -> Arbiter:
    return RandomPermutationsArbiter(num_masters, rng)


def _make_priority(num_masters: int, rng: np.random.Generator, options: dict) -> Arbiter:
    return FixedPriorityArbiter(num_masters, priorities=options.get("priorities"))


ARBITER_POLICIES: dict[str, _ArbiterFactory] = {
    "round_robin": _make_round_robin,
    "fifo": _make_fifo,
    "tdma": _make_tdma,
    "lottery": _make_lottery,
    "random_permutations": _make_random_permutations,
    "fixed_priority": _make_priority,
}


def available_policies() -> list[str]:
    """Names of all registered arbitration policies."""
    return sorted(ARBITER_POLICIES)


def create_arbiter(
    policy: str,
    num_masters: int,
    rng: np.random.Generator | None = None,
    **options: object,
) -> Arbiter:
    """Build the arbiter named ``policy`` for ``num_masters`` masters.

    Parameters
    ----------
    policy:
        One of :func:`available_policies`.
    rng:
        Random stream for randomised policies.  A deterministic default
        generator is created when omitted (convenient in tests, but
        experiments should pass one of their :class:`~repro.sim.RandomStreams`
        streams for reproducibility).
    options:
        Policy-specific keyword options (e.g. ``slot_cycles`` for TDMA,
        ``tickets`` for lottery, ``priorities`` for fixed priority).
    """
    if policy not in ARBITER_POLICIES:
        raise ConfigurationError(
            f"unknown arbitration policy {policy!r}; available: {available_policies()}"
        )
    if rng is None:
        rng = np.random.default_rng(0)
    return ARBITER_POLICIES[policy](num_masters, rng, dict(options))
