"""Hardware-facing models: the LFSR random bank (APRANDBANK stand-in) and the
structural RTL cost model used to reproduce the implementation-overhead
claims of Section IV-B."""

from .prng import MAXIMAL_TAPS, GaloisLFSR, RandomBank
from .rtl_cost import (
    STRATIX_IV_ALUT_CAPACITY,
    ResourceEstimate,
    arbiter_cost,
    cba_addon_cost,
    overhead_report,
    platform_cost,
)

__all__ = [
    "GaloisLFSR",
    "RandomBank",
    "MAXIMAL_TAPS",
    "ResourceEstimate",
    "arbiter_cost",
    "cba_addon_cost",
    "platform_cost",
    "overhead_report",
    "STRATIX_IV_ALUT_CAPACITY",
]
