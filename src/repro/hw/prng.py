"""Hardware-style pseudo-random number generation (APRANDBANK stand-in).

The FPGA platform of the paper feeds its randomised arbiters and caches from
the APRANDBANK module — a bank of hardware pseudo-random number generators
that delivers fresh random bits every cycle and is designed to IEC 61508
SIL-3 requirements (Agirre et al., DSD 2015).  In the simulator the random
streams of :mod:`repro.sim.rng` play that role, but a faithful LFSR bank is
provided here for two reasons:

* tests of the arbiters can be driven by the exact bit-level source a
  hardware implementation would use;
* the RTL cost model (:mod:`repro.hw.rtl_cost`) counts its registers when
  estimating arbiter implementation overheads.

:class:`GaloisLFSR` implements a maximal-length Galois linear-feedback shift
register; :class:`RandomBank` groups several of them, one per consumer, and
exposes per-cycle random words like the hardware module does.
"""

from __future__ import annotations

from ..sim.errors import ConfigurationError

__all__ = ["GaloisLFSR", "RandomBank", "MAXIMAL_TAPS"]

#: Taps (as XOR masks) of maximal-length Galois LFSRs for common widths.
MAXIMAL_TAPS: dict[int, int] = {
    8: 0xB8,
    16: 0xB400,
    24: 0xE10000,
    32: 0xA3000000,
}


class GaloisLFSR:
    """A Galois linear-feedback shift register."""

    def __init__(self, width: int = 32, seed: int = 1, taps: int | None = None) -> None:
        if width not in MAXIMAL_TAPS and taps is None:
            raise ConfigurationError(
                f"no default taps for width {width}; provide them explicitly"
            )
        self.width = width
        self.mask = (1 << width) - 1
        self.taps = taps if taps is not None else MAXIMAL_TAPS[width]
        seed &= self.mask
        if seed == 0:
            # The all-zero state is the one fixed point of an LFSR; nudge it.
            seed = 1
        self.state = seed
        self._initial_state = seed

    def step(self) -> int:
        """Advance one cycle and return the new state."""
        lsb = self.state & 1
        self.state >>= 1
        if lsb:
            self.state ^= self.taps
        return self.state

    def bits(self, count: int) -> int:
        """Return ``count`` fresh random bits (stepping once per bit)."""
        if count <= 0:
            raise ConfigurationError("bit count must be positive")
        value = 0
        for _ in range(count):
            value = (value << 1) | (self.step() & 1)
        return value

    def uniform_int(self, upper: int) -> int:
        """A pseudo-random integer in ``[0, upper)`` via rejection sampling."""
        if upper <= 0:
            raise ConfigurationError("upper bound must be positive")
        bits_needed = max(1, (upper - 1).bit_length())
        while True:
            value = self.bits(bits_needed)
            if value < upper:
                return value

    def reset(self) -> None:
        self.state = self._initial_state

    @property
    def period(self) -> int:
        """Period of a maximal-length LFSR of this width."""
        return (1 << self.width) - 1


class RandomBank:
    """A bank of independent LFSRs, one per named consumer."""

    def __init__(self, width: int = 32, base_seed: int = 0xACE1) -> None:
        self.width = width
        self.base_seed = base_seed
        self._lfsrs: dict[str, GaloisLFSR] = {}

    def lfsr(self, consumer: str) -> GaloisLFSR:
        """The LFSR dedicated to ``consumer`` (created on first use)."""
        if consumer not in self._lfsrs:
            # Derive a distinct, non-zero seed per consumer.
            seed = (self.base_seed + 0x9E37 * (len(self._lfsrs) + 1)) & ((1 << self.width) - 1)
            self._lfsrs[consumer] = GaloisLFSR(width=self.width, seed=seed or 1)
        return self._lfsrs[consumer]

    def random_word(self, consumer: str) -> int:
        """One fresh word of random bits for ``consumer``."""
        return self.lfsr(consumer).bits(self.width)

    def permutation(self, consumer: str, n: int) -> list[int]:
        """A Fisher–Yates permutation of ``range(n)`` drawn from the bank."""
        lfsr = self.lfsr(consumer)
        values = list(range(n))
        for i in range(n - 1, 0, -1):
            j = lfsr.uniform_int(i + 1)
            values[i], values[j] = values[j], values[i]
        return values

    @property
    def register_bits(self) -> int:
        """Total state bits held by the bank (used by the RTL cost model)."""
        return self.width * max(1, len(self._lfsrs))

    def reset(self) -> None:
        for lfsr in self._lfsrs.values():
            lfsr.reset()
