"""Structural RTL cost model for arbiter implementations.

Section IV-B of the paper reports the implementation overhead of CBA on the
FPGA prototype: the multicore occupies 73% of the TerasIC DE4's resources
without CBA, and adding CBA grows occupancy by *far less than 0.1%* while
still meeting the 100 MHz target frequency.  We cannot synthesise RTL here,
so the claim is reproduced with a structural cost model: each arbiter design
is described by its register and comparator inventory, converted to
flip-flop / LUT-equivalent counts with conventional per-primitive costs, and
compared against the resource budget of the whole multicore.

The absolute numbers are estimates; the *relative* conclusion — the CBA
add-on is orders of magnitude smaller than the processor, and small even
relative to the bus arbiter it extends — is what the benchmark checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2

from ..sim.errors import ConfigurationError

__all__ = [
    "ResourceEstimate",
    "arbiter_cost",
    "cba_addon_cost",
    "platform_cost",
    "overhead_report",
    "STRATIX_IV_ALUT_CAPACITY",
]

#: Logic capacity (ALUTs) of the Stratix IV EP4SGX230 on the TerasIC DE4 board
#: used by the paper.  Used only to express overheads as board percentages.
STRATIX_IV_ALUT_CAPACITY: int = 182_400

#: Fraction of the board the baseline (no-CBA) multicore occupies (Sec. IV-B).
BASELINE_OCCUPANCY_FRACTION: float = 0.73


@dataclass(frozen=True)
class ResourceEstimate:
    """Flip-flop and LUT-equivalent counts of one hardware block."""

    name: str
    flip_flops: int = 0
    luts: int = 0
    breakdown: dict[str, tuple[int, int]] = field(default_factory=dict)

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        breakdown = dict(self.breakdown)
        breakdown.update(other.breakdown)
        return ResourceEstimate(
            name=f"{self.name}+{other.name}",
            flip_flops=self.flip_flops + other.flip_flops,
            luts=self.luts + other.luts,
            breakdown=breakdown,
        )

    @property
    def alut_equivalent(self) -> int:
        """Rough ALUT equivalent: LUTs plus packing overhead for registers."""
        return self.luts + ceil(self.flip_flops * 0.1)

    def fraction_of_board(self, capacity: int = STRATIX_IV_ALUT_CAPACITY) -> float:
        return self.alut_equivalent / capacity

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "flip_flops": self.flip_flops,
            "luts": self.luts,
            "alut_equivalent": self.alut_equivalent,
            "board_fraction": self.fraction_of_board(),
        }


def _counter_cost(bits: int) -> tuple[int, int]:
    """(flip-flops, LUTs) of a loadable saturating counter of ``bits`` bits."""
    return bits, 2 * bits


def _comparator_cost(bits: int) -> tuple[int, int]:
    """(flip-flops, LUTs) of an equality/threshold comparator of ``bits`` bits."""
    return 0, max(1, bits // 2)


def _mux_cost(ways: int, width: int) -> tuple[int, int]:
    """(flip-flops, LUTs) of a ``ways``-to-1 multiplexer of ``width`` bits."""
    if ways <= 1:
        return 0, 0
    return 0, width * (ways - 1)


def arbiter_cost(policy: str, num_masters: int = 4, max_latency: int = 56) -> ResourceEstimate:
    """Structural resource estimate of one arbitration policy.

    Supported policies mirror :mod:`repro.arbiters`: ``round_robin``,
    ``fifo``, ``tdma``, ``lottery``, ``random_permutations`` and
    ``fixed_priority``.
    """
    if num_masters <= 0:
        raise ConfigurationError("the arbiter needs at least one master")
    grant_bits = max(1, ceil(log2(num_masters)))
    breakdown: dict[str, tuple[int, int]] = {}
    # Every arbiter needs request/grant handshake registers and a grant mux.
    breakdown["handshake"] = (num_masters + grant_bits, 2 * num_masters)
    breakdown["grant_mux"] = _mux_cost(num_masters, grant_bits)

    if policy == "round_robin":
        breakdown["pointer"] = _counter_cost(grant_bits)
        breakdown["rotate_logic"] = (0, 2 * num_masters)
    elif policy == "fifo":
        order_bits = grant_bits * num_masters
        breakdown["order_queue"] = (order_bits, 2 * order_bits)
    elif policy == "tdma":
        slot_bits = max(1, ceil(log2(max_latency)))
        breakdown["slot_counter"] = _counter_cost(slot_bits)
        breakdown["schedule_rom"] = (0, num_masters)
        breakdown["owner_compare"] = _comparator_cost(grant_bits)
    elif policy == "lottery":
        lfsr_bits = 16
        breakdown["lfsr"] = (lfsr_bits, lfsr_bits)
        breakdown["ticket_adders"] = (0, 4 * num_masters)
    elif policy == "random_permutations":
        lfsr_bits = 32
        perm_bits = grant_bits * num_masters
        breakdown["lfsr_interface"] = (lfsr_bits, lfsr_bits // 2)
        breakdown["permutation_regs"] = (perm_bits, 2 * perm_bits)
        breakdown["walk_logic"] = (grant_bits, 3 * num_masters)
    elif policy == "fixed_priority":
        breakdown["priority_encoder"] = (0, 2 * num_masters)
    else:
        raise ConfigurationError(f"unknown policy {policy!r} for the cost model")

    flip_flops = sum(ff for ff, _ in breakdown.values())
    luts = sum(lut for _, lut in breakdown.values())
    return ResourceEstimate(
        name=f"{policy}_arbiter", flip_flops=flip_flops, luts=luts, breakdown=breakdown
    )


def cba_addon_cost(num_masters: int = 4, max_latency: int = 56) -> ResourceEstimate:
    """Resource estimate of the CBA addition itself (Table I hardware).

    Per core: one saturating budget counter wide enough for ``N * MaxL``
    (8 bits for the paper's 228), one full-budget comparator and one COMP
    flip-flop; plus the shared mode bit and the grant-side decrement logic.
    """
    if num_masters <= 0:
        raise ConfigurationError("CBA needs at least one master")
    budget_bits = max(1, ceil(log2(num_masters * max_latency + 1)))
    breakdown: dict[str, tuple[int, int]] = {}
    counter_ff, counter_lut = _counter_cost(budget_bits)
    compare_ff, compare_lut = _comparator_cost(budget_bits)
    breakdown["budget_counters"] = (num_masters * counter_ff, num_masters * counter_lut)
    breakdown["full_comparators"] = (num_masters * compare_ff, num_masters * compare_lut)
    breakdown["comp_bits"] = (num_masters, num_masters)
    breakdown["mode_and_control"] = (2, 4)
    breakdown["eligibility_mask"] = (0, num_masters)
    flip_flops = sum(ff for ff, _ in breakdown.values())
    luts = sum(lut for _, lut in breakdown.values())
    return ResourceEstimate(
        name="cba_addon", flip_flops=flip_flops, luts=luts, breakdown=breakdown
    )


def platform_cost(
    capacity: int = STRATIX_IV_ALUT_CAPACITY,
    occupancy_fraction: float = BASELINE_OCCUPANCY_FRACTION,
) -> ResourceEstimate:
    """Resource estimate of the whole baseline multicore (from its occupancy)."""
    aluts = int(capacity * occupancy_fraction)
    # Registers are not reported by the paper; assume a typical 1:1 ratio.
    return ResourceEstimate(name="quad_core_leon3", flip_flops=aluts, luts=aluts)


def overhead_report(
    base_policy: str = "random_permutations",
    num_masters: int = 4,
    max_latency: int = 56,
) -> dict[str, object]:
    """The implementation-overhead comparison of Section IV-B as a dictionary."""
    base = arbiter_cost(base_policy, num_masters, max_latency)
    addon = cba_addon_cost(num_masters, max_latency)
    platform = platform_cost()
    addon_vs_platform = addon.alut_equivalent / platform.alut_equivalent
    return {
        "base_arbiter": base.as_dict(),
        "cba_addon": addon.as_dict(),
        "platform": platform.as_dict(),
        "addon_vs_arbiter": addon.alut_equivalent / max(1, base.alut_equivalent),
        "addon_vs_platform": addon_vs_platform,
        "addon_vs_platform_percent": 100.0 * addon_vs_platform,
        "paper_claim_percent_upper_bound": 0.1,
        "claim_holds": bool(100.0 * addon_vs_platform < 0.1),
    }
