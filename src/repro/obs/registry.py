"""Labelled metrics registry.

The simulator's components accumulate plain :mod:`repro.sim.stats` primitives
(one :class:`~repro.sim.stats.StatGroup` per component).  The registry layers
*labels* on top, Prometheus-style: a metric is identified by a name plus a
set of ``key=value`` labels, so the same metric family (``bus.grants``) can
carry one series per system, per core, per campaign label and still be
aggregated across runs with :meth:`MetricsRegistry.merge`.

The registry deliberately reuses the :mod:`repro.sim.stats` classes as its
storage so that everything a component already counted can be folded in with
:meth:`MetricsRegistry.ingest_group` — no re-walking of simulation events.
Exporters (JSONL, Prometheus text) live in :mod:`repro.obs.exporters`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..sim.stats import Counter, Gauge, Histogram, RunningStats, StatGroup

__all__ = ["MetricsRegistry", "label_key", "registries_merged"]

#: Canonical hashable form of a label set: sorted ``(key, value)`` pairs.
LabelKey = tuple[tuple[str, str], ...]


def label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonicalise a label mapping (values stringified, keys sorted)."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class MetricsRegistry:
    """A collection of labelled counters, gauges, samples and histograms."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._samples: dict[tuple[str, LabelKey], RunningStats] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # Accessors (create on first use, like StatGroup)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        """Return (creating if needed) the counter series ``name{labels}``."""
        key = (name, label_key(labels))
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter(name)
        return series

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Return (creating if needed) the gauge series ``name{labels}``."""
        key = (name, label_key(labels))
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge(name)
        return series

    def sample(self, name: str, **labels: object) -> RunningStats:
        """Return (creating if needed) the sample series ``name{labels}``."""
        key = (name, label_key(labels))
        series = self._samples.get(key)
        if series is None:
            series = self._samples[key] = RunningStats(name)
        return series

    def histogram(self, name: str, **labels: object) -> Histogram:
        """Return (creating if needed) the histogram series ``name{labels}``."""
        key = (name, label_key(labels))
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = Histogram(name)
        return series

    # ------------------------------------------------------------------
    # Bulk ingestion and merging
    # ------------------------------------------------------------------
    def ingest_group(self, group: StatGroup, prefix: str = "", **labels: object) -> None:
        """Fold a component's :class:`StatGroup` into the registry.

        Every member is merged into the series ``prefix + member_name`` under
        the given labels, so repeated ingestion (one run after another with
        the same labels) accumulates instead of overwriting.
        """
        for name, counter in group.counters.items():
            self.counter(prefix + name, **labels).merge(counter)
        for name, stats in group.samples.items():
            self.sample(prefix + name, **labels).merge(stats)
        for name, histogram in group.histograms.items():
            self.histogram(prefix + name, **labels).merge(histogram)

    def ingest_values(
        self, values: Mapping[str, object], prefix: str = "", **labels: object
    ) -> None:
        """Fold a plain ``name -> number`` mapping in as counters.

        Non-numeric entries (booleans excluded too) are skipped, so component
        snapshot dictionaries that mix identity fields into their counters
        (e.g. ``CoreCounters.as_dict``) can be ingested directly.
        """
        for name, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.counter(prefix + name, **labels).increment(int(value))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in, series by series."""
        for (name, key), counter in other._counters.items():
            self.counter(name, **dict(key)).merge(counter)
        for (name, key), gauge in other._gauges.items():
            self.gauge(name, **dict(key)).merge(gauge)
        for (name, key), stats in other._samples.items():
            self.sample(name, **dict(key)).merge(stats)
        for (name, key), histogram in other._histograms.items():
            self.histogram(name, **dict(key)).merge(histogram)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._samples)
            + len(self._histograms)
        )

    def snapshot(self) -> list[dict[str, object]]:
        """Every series as a plain, JSON-serialisable row (sorted by name).

        Rows are fresh dictionaries — mutating a snapshot never touches the
        registry, and later registry updates never touch old snapshots.
        """
        keyed: list[tuple[tuple[str, LabelKey], dict[str, object]]] = []
        for (name, key), counter in self._counters.items():
            keyed.append(
                ((name, key), {"name": name, "labels": dict(key), "type": "counter",
                               "value": counter.value})
            )
        for (name, key), gauge in self._gauges.items():
            keyed.append(
                ((name, key), {"name": name, "labels": dict(key), "type": "gauge",
                               "value": gauge.value})
            )
        for (name, key), stats in self._samples.items():
            keyed.append(
                ((name, key), {"name": name, "labels": dict(key), "type": "summary",
                               "stats": stats.as_dict()})
            )
        for (name, key), histogram in self._histograms.items():
            keyed.append(
                ((name, key), {
                    "name": name,
                    "labels": dict(key),
                    "type": "histogram",
                    "stats": histogram.as_dict(),
                    "buckets": [[value, count] for value, count in histogram.items()],
                })
            )
        keyed.sort(key=lambda item: item[0])
        return [row for _, row in keyed]


def registries_merged(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Convenience: merge several registries into a fresh one."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged
