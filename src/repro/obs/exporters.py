"""Metric exporters: JSON-lines and Prometheus text exposition.

Both exporters work from :meth:`MetricsRegistry.snapshot`, so they are pure
functions of the registry state and never hold references into it.

* **JSONL** — one JSON object per series, the registry's native snapshot row.
  This is the machine-readable artifact the CI bench job uploads and the
  ``repro obs metrics`` command renders.
* **Prometheus text** — the `text exposition format`__ understood by a
  Prometheus scrape (and by ``promtool check metrics``).  Counters and gauges
  map directly; :class:`~repro.sim.stats.RunningStats` series become
  summaries (``_count``/``_sum``); value histograms become classic cumulative
  ``_bucket{le=...}`` families.

__ https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .registry import MetricsRegistry

__all__ = [
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
    "write_prometheus",
    "write_metrics",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitise a metric name for the Prometheus exposition format."""
    cleaned = _NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_labels(labels: dict[str, object], extra: dict[str, object] | None = None) -> str:
    """Render a label set as ``{key="value",...}`` (empty string when none)."""
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key, value in sorted(merged.items()):
        text = str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        parts.append(f'{_prom_name(str(key))}="{text}"')
    return "{" + ",".join(parts) + "}"


def to_jsonl(registry: MetricsRegistry) -> str:
    """The registry as JSON-lines text (one series per line)."""
    lines = [json.dumps(row, sort_keys=True) for row in registry.snapshot()]
    return "\n".join(lines) + ("\n" if lines else "")


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for row in registry.snapshot():
        name = _prom_name(str(row["name"]))
        labels = dict(row["labels"])  # type: ignore[call-overload]
        kind = row["type"]
        if kind == "counter":
            declare(name, "counter")
            lines.append(f"{name}{_prom_labels(labels)} {row['value']}")
        elif kind == "gauge":
            declare(name, "gauge")
            lines.append(f"{name}{_prom_labels(labels)} {row['value']}")
        elif kind == "summary":
            stats = row["stats"]
            assert isinstance(stats, dict)
            declare(name, "summary")
            lines.append(f"{name}_count{_prom_labels(labels)} {int(stats['count'])}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {stats['total']}")
        else:  # histogram
            stats = row["stats"]
            buckets = row["buckets"]
            assert isinstance(stats, dict) and isinstance(buckets, list)
            declare(name, "histogram")
            cumulative = 0
            total = 0
            for value, count in buckets:
                cumulative += int(count)
                total += int(value) * int(count)
                le = _prom_labels(labels, {"le": value})
                lines.append(f"{name}_bucket{le} {cumulative}")
            inf = _prom_labels(labels, {"le": "+Inf"})
            lines.append(f"{name}_bucket{inf} {cumulative}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {total}")
            lines.append(f"{name}_count{_prom_labels(labels)} {int(stats['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the JSONL export to ``path`` and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_jsonl(registry), encoding="utf-8")
    return target


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the Prometheus text export to ``path`` and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_prometheus(registry), encoding="utf-8")
    return target


def write_metrics(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the export format implied by the file extension.

    ``.prom`` / ``.txt`` select the Prometheus text format; anything else
    (conventionally ``.jsonl``) selects JSON-lines.
    """
    suffix = Path(path).suffix.lower()
    if suffix in (".prom", ".txt"):
        return write_prometheus(registry, path)
    return write_jsonl(registry, path)
