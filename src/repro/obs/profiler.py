"""Wall-clock profiling: per-component kernel attribution, per-phase campaigns.

Two independent profilers cover the two performance mysteries on the roadmap:

* :class:`KernelProfiler` answers *which component's ticks burn the time*
  inside :meth:`~repro.sim.kernel.Kernel.run`.  Enabling it swaps the
  kernel's pre-bound hook lists for timing proxies
  (:meth:`~repro.sim.kernel.Kernel.enable_profiling`), so the disabled mode
  keeps the exact hot loop the seed shipped — zero cost when off, exactly
  like the no-op tick-hook filtering.
* :class:`CampaignProfiler` attributes campaign wall-clock across the five
  pool phases — ``spawn`` (worker process startup/shutdown), ``dispatch``
  (building and submitting job batches to the pool), ``simulate`` (waiting
  for results), ``result`` (folding finished batch results back into per-job
  records) and ``store`` (artifact-store writes) — which is the
  instrumentation behind the batched-dispatch redesign (the per-job
  ``pickle``/``aggregate`` split it replaces is what proved dispatch
  overhead dominated ``speedup_pool_vs_serial``).  Alongside the timed
  phases it keeps named :attr:`~CampaignProfiler.counters` (batch count,
  worker context-cache hits/misses) so cache behaviour lands in the same
  JSON artifact.

Both render to plain dictionaries (JSON artifacts) consumed by
:mod:`repro.obs.report` and the ``repro obs profile`` command.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Iterator

__all__ = ["KernelProfiler", "CampaignProfiler"]


class _HookProxy:
    """Stand-in for a component inside one of the kernel's hook lists.

    Only the wrapped hook is ever looked up (each list calls exactly one
    method), so the proxy carries just that attribute plus the component's
    name for debugging.
    """

    __slots__ = ("fast_forward", "name", "post_tick", "tick")

    def __init__(self, name: str, hook: str, timed: Callable[..., object]) -> None:
        self.name = name
        setattr(self, hook, timed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_HookProxy({self.name!r})"


class KernelProfiler:
    """Accumulates wall-clock seconds per (component, hook) pair."""

    HOOKS = ("tick", "post_tick", "fast_forward")

    def __init__(self) -> None:
        self._seconds: dict[tuple[str, str], float] = {}
        self._calls: dict[tuple[str, str], int] = {}
        #: Total wall-clock of the instrumented ``Kernel.run`` calls.
        self.run_wall_seconds = 0.0
        self.executed_cycles = 0
        self.runs = 0

    # ------------------------------------------------------------------
    # Kernel integration (see Kernel.enable_profiling)
    # ------------------------------------------------------------------
    def proxy(self, component: Any, hook: str) -> Any:
        """Wrap one hook of ``component`` in a timing closure."""
        real = getattr(component, hook)
        key = (str(component.name), hook)
        seconds = self._seconds
        calls = self._calls
        seconds.setdefault(key, 0.0)
        calls.setdefault(key, 0)

        def timed(*args: object) -> object:
            started = perf_counter()
            try:
                return real(*args)
            finally:
                seconds[key] += perf_counter() - started
                calls[key] += 1

        return _HookProxy(key[0], hook, timed)

    def on_run(self, wall_seconds: float, executed_cycles: int) -> None:
        """One instrumented ``Kernel.run`` call finished."""
        self.run_wall_seconds += wall_seconds
        self.executed_cycles += executed_cycles
        self.runs += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def attributed_seconds(self) -> float:
        """Seconds spent inside component hooks (the rest is the scheduler)."""
        return sum(self._seconds.values())

    def component_seconds(self) -> dict[str, float]:
        """Total hook seconds per component, highest first."""
        totals: dict[str, float] = {}
        for (name, _hook), value in self._seconds.items():
            totals[name] = totals.get(name, 0.0) + value
        return dict(sorted(totals.items(), key=lambda item: -item[1]))

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable profile report."""
        components: dict[str, dict[str, object]] = {}
        for (name, hook), value in sorted(self._seconds.items()):
            entry = components.setdefault(name, {})
            entry[f"{hook}_seconds"] = value
            entry[f"{hook}_calls"] = self._calls[(name, hook)]
        attributed = self.attributed_seconds
        return {
            "type": "kernel_profile",
            "runs": self.runs,
            "executed_cycles": self.executed_cycles,
            "run_wall_seconds": self.run_wall_seconds,
            "attributed_seconds": attributed,
            "scheduler_seconds": max(0.0, self.run_wall_seconds - attributed),
            "components": components,
        }

    def write(self, path: str | Path) -> Path:
        """Write the report to ``path`` as JSON and return it."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.as_dict(), indent=2), encoding="utf-8")
        return target


class CampaignProfiler:
    """Accumulates campaign wall-clock per executor phase."""

    PHASES = ("spawn", "dispatch", "simulate", "result", "store")

    def __init__(self, output_path: str | Path | None = None) -> None:
        self.seconds = {phase: 0.0 for phase in self.PHASES}
        self.events = {phase: 0 for phase in self.PHASES}
        #: Named event counters with no wall-clock of their own (batch count,
        #: worker cache hits/misses) — accumulated via :meth:`count`.
        self.counters: dict[str, int] = {}
        #: End-to-end wall-clock of the campaign dispatch loops profiled so
        #: far (measured by the orchestrator *around* the executor, so
        #: generator suspension time is included and coverage is honest).
        self.wall_seconds = 0.0
        self.jobs = 0
        self.workers = 1
        self.output_path = Path(output_path) if output_path is not None else None
        self._wall_started: float | None = None

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def add(self, phase: str, seconds: float, count: int = 1) -> None:
        """Charge ``seconds`` of wall-clock to ``phase``."""
        self.seconds[phase] += seconds
        self.events[phase] += count

    def count(self, name: str, n: int = 1) -> None:
        """Bump the named event counter by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    @contextmanager
    def phase(self, phase: str) -> Iterator[None]:
        """Context manager charging its body's wall-clock to ``phase``."""
        started = perf_counter()
        try:
            yield
        finally:
            self.add(phase, perf_counter() - started)

    def start(self, jobs: int, workers: int) -> None:
        """A campaign dispatch loop over ``jobs`` jobs begins."""
        self.jobs += jobs
        self.workers = workers
        self._wall_started = perf_counter()

    def finish(self) -> None:
        """The dispatch loop ended; fold its wall-clock in."""
        if self._wall_started is not None:
            self.wall_seconds += perf_counter() - self._wall_started
            self._wall_started = None
        if self.output_path is not None:
            self.write(self.output_path)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def attributed_seconds(self) -> float:
        return sum(self.seconds.values())

    @property
    def coverage(self) -> float:
        """Fraction of the measured wall-clock attributed to a phase."""
        if not self.wall_seconds:
            return 0.0
        return min(1.0, self.attributed_seconds / self.wall_seconds)

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable profile report."""
        return {
            "type": "campaign_profile",
            "jobs": self.jobs,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "attributed_seconds": self.attributed_seconds,
            "coverage": self.coverage,
            "phases": {
                phase: {"seconds": self.seconds[phase], "events": self.events[phase]}
                for phase in self.PHASES
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def write(self, path: str | Path) -> Path:
        """Write the report to ``path`` as JSON and return it."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.as_dict(), indent=2), encoding="utf-8")
        return target
