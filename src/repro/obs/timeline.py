"""Timeline tracing: ring-buffered recording and Chrome trace-event export.

:class:`TimelineRecorder` is a drop-in :class:`~repro.sim.trace.TraceRecorder`
backed by a :class:`collections.deque` ring buffer, so a bounded-memory
recording of an arbitrarily long run keeps the *most recent* ``capacity``
events in O(1) per event (the list-backed recorder pays an O(n) slice-delete
when it overflows).

:func:`chrome_trace` converts recorded :class:`~repro.sim.trace.TraceEvent`
sequences into the Chrome trace-event JSON format (the ``traceEvents`` array
understood by Perfetto / ``chrome://tracing``).  Simulated cycles map 1:1 to
trace microseconds — timestamps stay exact integers and Perfetto's time axis
reads directly in cycles.  Three families of visual objects are produced:

* **complete spans** (``"ph": "X"``) for events that carry a duration — bus
  transactions (``bus.grant``), batch stretches (``core.stretch``) and kernel
  fast-forward jumps (``kernel.jump``), each on its own named track;
* **counter tracks** (``"ph": "C"``) for CBA budget balances
  (``cba.drain`` / ``cba.refill`` payloads carry the scaled balances);
* **instants** (``"ph": "i"``) for everything else, on the emitting
  component's track.
"""

from __future__ import annotations

import json
import numbers
from collections import deque
from pathlib import Path
from typing import Iterable, Sequence

from ..sim.trace import TraceEvent, TraceRecorder

__all__ = ["TimelineRecorder", "chrome_trace", "write_chrome_trace"]


class TimelineRecorder(TraceRecorder):
    """A trace recorder whose storage is a bounded ring buffer."""

    def __init__(self, kinds: Iterable[str] | None = None, capacity: int | None = None):
        # The ring must exist before the base initialiser assigns
        # ``self.events`` (routed through the property setter below).
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        #: Events dropped off the head of the ring (observability: a summary
        #: can say "showing the last N of M events").
        self.dropped = 0
        super().__init__(kinds=kinds, capacity=capacity)

    @property
    def events(self) -> list[TraceEvent]:  # type: ignore[override]
        """The retained events, oldest first (a fresh list)."""
        return list(self._ring)

    @events.setter
    def events(self, values: Iterable[TraceEvent]) -> None:
        self._ring.clear()
        self._ring.extend(values)

    def record(self, cycle: int, source: str, kind: str, **payload: object) -> None:
        """Record one event (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        ring = self._ring
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(TraceEvent(cycle=cycle, source=source, kind=kind, payload=payload))

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)


def _plain(value: object) -> object:
    """Force a payload value into JSON-serialisable plain types."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    return str(value)


def _plain_args(payload: dict[str, object]) -> dict[str, object]:
    return {key: _plain(value) for key, value in payload.items()}


#: ``kind -> payload key`` of events that describe a span starting at their
#: cycle and covering that many cycles.
_SPAN_DURATION_KEYS = {
    "bus.grant": "duration",
    "core.stretch": "cycles",
    "kernel.jump": "cycles",
}

#: Kinds whose payload carries per-core CBA budget balances.
_BALANCE_KINDS = ("cba.drain", "cba.refill")


def chrome_trace(
    events: Sequence[TraceEvent], process_name: str = "repro-sim"
) -> dict[str, object]:
    """Convert trace events into a Chrome trace-event JSON document."""
    trace_events: list[dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": process_name}},
    ]
    tids: dict[str, int] = {}

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = len(tids) + 1
            tids[track] = tid
            trace_events.append(
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": track}}
            )
        return tid

    for event in events:
        payload = event.payload
        kind = event.kind
        category = kind.partition(".")[0]
        duration_key = _SPAN_DURATION_KEYS.get(kind)
        if duration_key is not None and duration_key in payload:
            track = event.source
            if kind == "bus.grant":
                track = f"{event.source}/master{payload.get('master', '?')}"
            trace_events.append(
                {
                    "name": kind,
                    "cat": category,
                    "ph": "X",
                    "ts": int(event.cycle),
                    "dur": max(1, int(payload[duration_key])),  # type: ignore[call-overload]
                    "pid": 1,
                    "tid": tid_for(track),
                    "args": _plain_args(payload),
                }
            )
            continue
        if kind in _BALANCE_KINDS and "balances" in payload:
            balances = payload["balances"]
            if isinstance(balances, (list, tuple)):
                trace_events.append(
                    {
                        "name": "cba.budgets",
                        "cat": "cba",
                        "ph": "C",
                        "ts": int(event.cycle),
                        "pid": 1,
                        "tid": 0,
                        "args": {f"core{i}": int(b) for i, b in enumerate(balances)},
                    }
                )
        trace_events.append(
            {
                "name": kind,
                "cat": category,
                "ph": "i",
                "ts": int(event.cycle),
                "pid": 1,
                "tid": tid_for(event.source),
                "s": "t",
                "args": _plain_args(payload),
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": process_name, "time_unit": "cycle"},
    }


def write_chrome_trace(
    events: Sequence[TraceEvent], path: str | Path, process_name: str = "repro-sim"
) -> Path:
    """Convert ``events`` and write the JSON document to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = chrome_trace(events, process_name=process_name)
    target.write_text(json.dumps(document), encoding="utf-8")
    return target
