"""Text reports over recorded observability artifacts.

The ``repro obs`` CLI subcommands load the JSON artifacts written by
:mod:`repro.obs.record`, :class:`~repro.obs.profiler.KernelProfiler`,
:class:`~repro.obs.profiler.CampaignProfiler` and the metric exporters, and
render them with the functions here.  Everything is plain text written for a
terminal — the heavy lifting (Perfetto, Prometheus) happens in the tools the
artifacts target.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "render_profile",
    "render_kernel_profile",
    "render_campaign_profile",
    "render_metrics_file",
    "render_timeline_summary",
]


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_kernel_profile(data: dict[str, object]) -> str:
    """Render a :class:`KernelProfiler` report."""
    wall = float(data.get("run_wall_seconds", 0.0))  # type: ignore[arg-type]
    attributed = float(data.get("attributed_seconds", 0.0))  # type: ignore[arg-type]
    scheduler = float(data.get("scheduler_seconds", 0.0))  # type: ignore[arg-type]
    cycles = int(data.get("executed_cycles", 0))  # type: ignore[arg-type]
    lines = [
        "kernel profile",
        f"  runs: {data.get('runs', 0)}   executed cycles: {cycles}",
        f"  run wall: {wall:.4f}s   in component hooks: {attributed:.4f}s   "
        f"scheduler/other: {scheduler:.4f}s",
    ]
    components = data.get("components", {})
    if isinstance(components, dict) and components:
        totals = []
        for name, hooks in components.items():
            if not isinstance(hooks, dict):
                continue
            seconds = sum(
                float(value) for key, value in hooks.items() if key.endswith("_seconds")
            )
            calls = sum(
                int(value) for key, value in hooks.items() if key.endswith("_calls")
            )
            totals.append((seconds, calls, str(name)))
        totals.sort(reverse=True)
        lines.append("  per component (share of hook time):")
        hook_total = sum(seconds for seconds, _, _ in totals) or 1.0
        for seconds, calls, name in totals:
            share = seconds / hook_total
            lines.append(
                f"    {name:<20} {seconds:9.4f}s  {100 * share:5.1f}%  "
                f"[{_bar(share)}]  {calls} calls"
            )
    return "\n".join(lines)


def render_campaign_profile(data: dict[str, object]) -> str:
    """Render a :class:`CampaignProfiler` report."""
    wall = float(data.get("wall_seconds", 0.0))  # type: ignore[arg-type]
    attributed = float(data.get("attributed_seconds", 0.0))  # type: ignore[arg-type]
    coverage = float(data.get("coverage", 0.0))  # type: ignore[arg-type]
    lines = [
        "campaign profile",
        f"  jobs: {data.get('jobs', 0)}   workers: {data.get('workers', 1)}",
        f"  wall: {wall:.4f}s   attributed: {attributed:.4f}s   "
        f"coverage: {100 * coverage:.1f}%",
        "  per phase:",
    ]
    phases = data.get("phases", {})
    if isinstance(phases, dict):
        denominator = wall or attributed or 1.0
        for phase, entry in phases.items():
            if not isinstance(entry, dict):
                continue
            seconds = float(entry.get("seconds", 0.0))
            share = seconds / denominator
            lines.append(
                f"    {phase:<10} {seconds:9.4f}s  {100 * share:5.1f}%  "
                f"[{_bar(share)}]  {entry.get('events', 0)} events"
            )
    return "\n".join(lines)


def render_profile(data: dict[str, object]) -> str:
    """Render either profile report, dispatching on its ``type`` field."""
    if data.get("type") == "campaign_profile":
        return render_campaign_profile(data)
    return render_kernel_profile(data)


def render_metrics_file(path: str | Path) -> str:
    """Render a metrics artifact (JSONL rows, or raw Prometheus text)."""
    text = Path(path).read_text(encoding="utf-8")
    if Path(path).suffix.lower() in (".prom", ".txt"):
        return text.rstrip("\n")
    lines = []
    for raw in text.splitlines():
        raw = raw.strip()
        if not raw:
            continue
        row = json.loads(raw)
        labels = ",".join(f"{k}={v}" for k, v in sorted(row.get("labels", {}).items()))
        name = f"{row['name']}{{{labels}}}" if labels else str(row["name"])
        if "value" in row:
            lines.append(f"{name:<60} {row['type']:<9} {row['value']}")
        else:
            stats = row.get("stats", {})
            summary = "  ".join(f"{k}={stats[k]:g}" for k in ("count", "mean", "min", "max")
                                if k in stats)
            lines.append(f"{name:<60} {row['type']:<9} {summary}")
    return "\n".join(lines)


def render_timeline_summary(document: dict[str, object]) -> str:
    """Summarise a Chrome trace-event document (counts per phase and track)."""
    events = document.get("traceEvents", [])
    if not isinstance(events, list):
        return "timeline: no traceEvents array"
    threads: dict[int, str] = {}
    per_name: dict[str, int] = {}
    per_phase: dict[str, int] = {}
    span_cycles: dict[str, int] = {}
    first_ts: int | None = None
    last_ts = 0
    for event in events:
        if not isinstance(event, dict):
            continue
        phase = str(event.get("ph", "?"))
        if phase == "M":
            args = event.get("args", {})
            if event.get("name") == "thread_name" and isinstance(args, dict):
                threads[int(event.get("tid", 0))] = str(args.get("name", "?"))
            continue
        name = str(event.get("name", "?"))
        per_name[name] = per_name.get(name, 0) + 1
        per_phase[phase] = per_phase.get(phase, 0) + 1
        ts = int(event.get("ts", 0))
        first_ts = ts if first_ts is None else min(first_ts, ts)
        end = ts + int(event.get("dur", 0))
        last_ts = max(last_ts, end)
        if phase == "X":
            span_cycles[name] = span_cycles.get(name, 0) + int(event.get("dur", 0))
    lines = [
        "timeline summary (open the file in https://ui.perfetto.dev)",
        f"  events: {sum(per_phase.values())}   tracks: {len(threads)}   "
        f"cycles covered: {first_ts or 0}..{last_ts}",
        "  events by kind:",
    ]
    for name, count in sorted(per_name.items(), key=lambda item: -item[1]):
        extra = f"   ({span_cycles[name]} span cycles)" if name in span_cycles else ""
        lines.append(f"    {name:<20} {count}{extra}")
    return "\n".join(lines)
