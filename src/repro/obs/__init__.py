"""Observability: metrics registry, timeline tracing, wall-clock profiling.

Everything in this package is *opt-in* and zero-cost when disabled: the
simulator's hot paths keep the seed's pre-bound hook lists and
``trace.enabled`` guards, and instrumentation only ever swaps in when a
caller asks for it (:class:`~repro.sim.config.ObservabilityConfig`, the
campaign ``--profile``/``--metrics`` flags, or the ``repro obs`` commands).

Submodules
----------
* :mod:`repro.obs.registry` — labelled counters/gauges/samples/histograms;
* :mod:`repro.obs.exporters` — JSONL and Prometheus-text metric exports;
* :mod:`repro.obs.timeline` — ring-buffered recording and Chrome
  trace-event / Perfetto export;
* :mod:`repro.obs.profiler` — per-component kernel and per-phase campaign
  wall-clock attribution;
* :mod:`repro.obs.report` — text renderers for the ``repro obs`` commands;
* :mod:`repro.obs.record` — one-shot instrumented scenario recording
  (imported lazily by the CLI; it pulls in the platform layer).
"""

from .exporters import (
    to_jsonl,
    to_prometheus,
    write_jsonl,
    write_metrics,
    write_prometheus,
)
from .profiler import CampaignProfiler, KernelProfiler
from .registry import MetricsRegistry, label_key, registries_merged
from .timeline import TimelineRecorder, chrome_trace, write_chrome_trace

__all__ = [
    "MetricsRegistry",
    "label_key",
    "registries_merged",
    "TimelineRecorder",
    "chrome_trace",
    "write_chrome_trace",
    "KernelProfiler",
    "CampaignProfiler",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
    "write_prometheus",
    "write_metrics",
]
