"""One-shot instrumented recording of a contention scenario.

``repro obs record`` needs a single entry point that runs a fully
instrumented system — timeline tracing, kernel profiling, metrics — and
drops every artifact into one directory:

* ``timeline.json`` — Chrome trace-event document (open in Perfetto);
* ``kernel_profile.json`` — per-component wall-clock attribution;
* ``metrics.jsonl`` / ``metrics.prom`` — the metrics registry exports.

The recorded scenario mirrors :func:`repro.platform.scenarios.run_max_contention`
(task under analysis on core 0, greedy worst-case contenders elsewhere),
because maximum contention is exactly the pathology the timeline is for.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..experiments.runner import scale_workload
from ..platform.system import MulticoreSystem
from ..sim.config import CBAParameters, ObservabilityConfig, PlatformConfig
from ..workloads.registry import workload_by_name
from .exporters import write_jsonl, write_prometheus
from .timeline import write_chrome_trace

__all__ = ["record_contention"]


def record_contention(
    out_dir: str | Path,
    benchmark: str = "canrdr",
    cores: int = 4,
    arbitration: str = "random_permutations",
    use_cba: bool = False,
    access_scale: float = 0.25,
    seed: int = 2017,
    ring: int | None = None,
    max_cycles: int = 5_000_000,
) -> dict[str, object]:
    """Run one instrumented max-contention scenario; return a summary.

    ``ring`` bounds the timeline recorder to the most recent ``ring`` events
    (memory-bounded recording of long runs); ``None`` keeps everything.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    workload = scale_workload(workload_by_name(benchmark), access_scale)
    config = PlatformConfig(
        num_cores=cores,
        arbitration=arbitration,
        use_cba=use_cba,
        cba=CBAParameters(num_cores=cores),
    )
    obs = ObservabilityConfig(timeline=True, timeline_capacity=ring, profile_kernel=True)
    system = MulticoreSystem(
        config, seed=seed, label=f"{arbitration}-con", obs=obs
    )
    system.add_task(0, workload)
    for core in range(1, cores):
        system.add_greedy_contender(core)
    result = system.run(max_cycles=max_cycles)

    events = system.kernel.trace.events
    timeline_path = write_chrome_trace(
        events, out / "timeline.json", process_name=f"repro-sim {benchmark}"
    )
    profile_path = out / "kernel_profile.json"
    profiler = system.profiler
    if profiler is not None:
        profiler.write(profile_path)
    registry = system.collect_metrics()
    jsonl_path = write_jsonl(registry, out / "metrics.jsonl")
    prom_path = write_prometheus(registry, out / "metrics.prom")

    summary: dict[str, object] = {
        "benchmark": benchmark,
        "cores": cores,
        "arbitration": arbitration,
        "use_cba": use_cba,
        "seed": seed,
        "total_cycles": result.total_cycles,
        "bus_utilization": result.bus_utilization,
        "tua_cycles": result.execution_cycles(0),
        "trace_events": len(events),
        "metrics_series": len(registry),
        "artifacts": {
            "timeline": str(timeline_path),
            "kernel_profile": str(profile_path),
            "metrics_jsonl": str(jsonl_path),
            "metrics_prom": str(prom_path),
        },
    }
    (out / "summary.json").write_text(json.dumps(summary, indent=2), encoding="utf-8")
    return summary
