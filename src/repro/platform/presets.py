"""Configuration presets matching the paper's evaluated platform.

Figure 1 compares three bus configurations, all built on random-permutations
arbitration:

* **RP** — the baseline random-permutations bus (no CBA);
* **CBA** — the homogeneous credit-based bus;
* **H-CBA** — the heterogeneous credit-based bus where the task under
  analysis recovers 1/2 cycle of budget per cycle and every other core 1/6,
  virtually allocating 50% of the bandwidth to the TuA.

These presets return the corresponding :class:`~repro.sim.config.PlatformConfig`.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.hcba import heterogeneous_share_parameters
from ..sim.config import BusTimings, CBAParameters, PlatformConfig
from ..sim.errors import ConfigurationError

__all__ = [
    "paper_bus_timings",
    "rp_config",
    "cba_config",
    "hcba_config",
    "config_by_label",
    "PAPER_CONFIG_LABELS",
]


PAPER_CONFIG_LABELS: tuple[str, ...] = ("RP", "CBA", "H-CBA")


def paper_bus_timings() -> BusTimings:
    """The latency model of Section IV-A (5..56-cycle transactions, 28-cycle memory)."""
    return BusTimings(
        l2_hit_read=5,
        l2_hit_write=6,
        memory_latency=28,
        bus_overhead=0,
        max_latency=56,
    )


def rp_config(num_cores: int = 4, arbitration: str = "random_permutations") -> PlatformConfig:
    """Baseline configuration: request-fair arbitration, no CBA."""
    timings = paper_bus_timings()
    return PlatformConfig(
        num_cores=num_cores,
        arbitration=arbitration,
        use_cba=False,
        cba=CBAParameters(max_latency=timings.max_latency, num_cores=num_cores),
        bus_timings=timings,
    )


def cba_config(num_cores: int = 4, arbitration: str = "random_permutations") -> PlatformConfig:
    """Homogeneous CBA on top of the chosen base policy (paper default: RP)."""
    timings = paper_bus_timings()
    return PlatformConfig(
        num_cores=num_cores,
        arbitration=arbitration,
        use_cba=True,
        cba=CBAParameters(max_latency=timings.max_latency, num_cores=num_cores),
        bus_timings=timings,
    )


def hcba_config(
    num_cores: int = 4,
    favoured_core: int = 0,
    favoured_fraction: Fraction | float = Fraction(1, 2),
    arbitration: str = "random_permutations",
) -> PlatformConfig:
    """Heterogeneous CBA: ``favoured_core`` gets ``favoured_fraction`` of the bandwidth."""
    timings = paper_bus_timings()
    params = heterogeneous_share_parameters(
        num_cores=num_cores,
        max_latency=timings.max_latency,
        favoured_core=favoured_core,
        favoured_fraction=favoured_fraction,
    )
    return PlatformConfig(
        num_cores=num_cores,
        arbitration=arbitration,
        use_cba=True,
        cba=params,
        bus_timings=timings,
    )


def config_by_label(label: str, num_cores: int = 4, tua_core: int = 0) -> PlatformConfig:
    """Return the platform configuration for one of the paper's labels."""
    normalized = label.strip().upper().replace("_", "-")
    if normalized == "RP":
        return rp_config(num_cores)
    if normalized == "CBA":
        return cba_config(num_cores)
    if normalized in ("H-CBA", "HCBA"):
        return hcba_config(num_cores, favoured_core=tua_core)
    raise ConfigurationError(
        f"unknown configuration label {label!r}; expected one of {PAPER_CONFIG_LABELS}"
    )
