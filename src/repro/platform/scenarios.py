"""Standard execution scenarios.

The paper evaluates every benchmark under two scenarios per bus
configuration:

* **isolation (ISO)** — the task under analysis runs alone on the multicore;
* **maximum contention (CON)** — the other cores host worst-case contenders
  that keep maximum-length requests pending.

This module provides the scenario runners used by the experiments, plus a
multiprogram scenario (several real tasks consolidated together) used by the
examples and the fairness analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..sim.config import PlatformConfig
from ..workloads.base import WorkloadSpec
from .system import MulticoreSystem, SystemResult

__all__ = [
    "Scenario",
    "ScenarioResult",
    "run_isolation",
    "run_max_contention",
    "run_wcet_estimation",
    "run_multiprogram",
    "run_mixed_criticality",
]


class Scenario(str, Enum):
    """Named execution scenarios."""

    ISOLATION = "isolation"
    MAX_CONTENTION = "max_contention"
    WCET_ESTIMATION = "wcet_estimation"
    MULTIPROGRAM = "multiprogram"
    MIXED_CRITICALITY = "mixed_criticality"


@dataclass(frozen=True)
class ScenarioResult:
    """Execution time of the task under analysis plus the full system result."""

    scenario: Scenario
    tua_core: int
    tua_cycles: int
    system: SystemResult
    #: True when the simulation stopped at the cycle budget before the tasks
    #: completed.  ``tua_cycles`` is then meaningless (0 if the task under
    #: analysis never finished) and must not enter execution-time statistics.
    truncated: bool = False


def _build_system(
    config: PlatformConfig,
    seed: int,
    run_index: int,
    label: str,
    fast_forward: bool = True,
    materialize_traces: bool = True,
    batch_interpreter: bool = True,
    event_queue: bool = True,
) -> MulticoreSystem:
    return MulticoreSystem(
        config,
        seed=seed,
        run_index=run_index,
        label=label,
        fast_forward=fast_forward,
        materialize_traces=materialize_traces,
        batch_interpreter=batch_interpreter,
        event_queue=event_queue,
    )


def run_isolation(
    workload: WorkloadSpec,
    config: PlatformConfig,
    seed: int = 0,
    run_index: int = 0,
    tua_core: int = 0,
    max_cycles: int = 5_000_000,
    allow_truncation: bool = False,
    fast_forward: bool = True,
    materialize_traces: bool = True,
    batch_interpreter: bool = True,
    event_queue: bool = True,
) -> ScenarioResult:
    """Run ``workload`` alone on the platform (the ``*-ISO`` bars of Figure 1).

    Note that even in isolation CBA can delay the task: a request issued
    before the core has recovered a full budget waits, which is the isolation
    overhead the paper quantifies at ~3% on average.
    """
    system = _build_system(
        config,
        seed,
        run_index,
        label=f"{config.arbitration}-iso",
        fast_forward=fast_forward,
        materialize_traces=materialize_traces,
        batch_interpreter=batch_interpreter,
        event_queue=event_queue,
    )
    system.add_task(tua_core, workload)
    result = system.run(max_cycles=max_cycles, allow_truncation=allow_truncation)
    return ScenarioResult(
        scenario=Scenario.ISOLATION,
        tua_core=tua_core,
        tua_cycles=result.execution_cycles(tua_core),
        system=result,
        truncated=result.truncated,
    )


def run_max_contention(
    workload: WorkloadSpec,
    config: PlatformConfig,
    seed: int = 0,
    run_index: int = 0,
    tua_core: int = 0,
    max_cycles: int = 5_000_000,
    allow_truncation: bool = False,
    fast_forward: bool = True,
    materialize_traces: bool = True,
    batch_interpreter: bool = True,
    event_queue: bool = True,
) -> ScenarioResult:
    """Run ``workload`` against greedy maximum-length contenders (``*-CON``)."""
    system = _build_system(
        config,
        seed,
        run_index,
        label=f"{config.arbitration}-con",
        fast_forward=fast_forward,
        materialize_traces=materialize_traces,
        batch_interpreter=batch_interpreter,
        event_queue=event_queue,
    )
    system.add_task(tua_core, workload)
    for core in range(config.num_cores):
        if core != tua_core:
            system.add_greedy_contender(core)
    result = system.run(max_cycles=max_cycles, allow_truncation=allow_truncation)
    return ScenarioResult(
        scenario=Scenario.MAX_CONTENTION,
        tua_core=tua_core,
        tua_cycles=result.execution_cycles(tua_core),
        system=result,
        truncated=result.truncated,
    )


def run_wcet_estimation(
    workload: WorkloadSpec,
    config: PlatformConfig,
    seed: int = 0,
    run_index: int = 0,
    tua_core: int = 0,
    max_cycles: int = 5_000_000,
    allow_truncation: bool = False,
    fast_forward: bool = True,
    materialize_traces: bool = True,
    batch_interpreter: bool = True,
    event_queue: bool = True,
) -> ScenarioResult:
    """Run the analysis-time scenario of Section III-B / Table I.

    The task under analysis starts with zero budget; the contender cores run
    the WCET-estimation-mode request generators (request lines always set,
    compete only when their budget is full and the TuA has a request ready,
    hold the bus for ``MaxL`` when granted).
    """
    system = _build_system(
        config,
        seed,
        run_index,
        label=f"{config.arbitration}-wcet",
        fast_forward=fast_forward,
        materialize_traces=materialize_traces,
        batch_interpreter=batch_interpreter,
        event_queue=event_queue,
    )
    system.add_task(tua_core, workload)
    for core in range(config.num_cores):
        if core != tua_core:
            system.add_wcet_contender(core, tua_core=tua_core)
    system.set_tua_initial_budget(tua_core, 0)
    result = system.run(max_cycles=max_cycles, allow_truncation=allow_truncation)
    return ScenarioResult(
        scenario=Scenario.WCET_ESTIMATION,
        tua_core=tua_core,
        tua_cycles=result.execution_cycles(tua_core),
        system=result,
        truncated=result.truncated,
    )


def run_mixed_criticality(
    workload: WorkloadSpec,
    config: PlatformConfig,
    seed: int = 0,
    run_index: int = 0,
    tua_core: int = 0,
    max_cycles: int = 10_000_000,
    allow_truncation: bool = False,
    best_effort: "WorkloadSpec | str | None" = None,
    fast_forward: bool = True,
    materialize_traces: bool = True,
    batch_interpreter: bool = True,
    event_queue: bool = True,
) -> ScenarioResult:
    """Run a critical task against best-effort tasks on every other core.

    The mixed-criticality consolidation the paper motivates: the critical
    task (under CBA its budget bounds the interference it can suffer) shares
    the platform with best-effort programs that are real workloads — unlike
    the synthetic worst-case contenders of ``run_max_contention`` they
    compute, hit their caches and finish.  The run stops when every task is
    done, and ``tua_cycles`` measures the critical task only.

    ``best_effort`` picks the program for the non-critical cores: a
    :class:`~repro.workloads.base.WorkloadSpec`, the name of a synthetic
    builder (resolved via :func:`repro.workloads.synthetic.synthetic_workload`),
    or ``None`` for the default bus-heavy mix.
    """
    from ..workloads.synthetic import bus_hog_workload, synthetic_workload

    if best_effort is None:
        contender_spec = bus_hog_workload()
    elif isinstance(best_effort, str):
        contender_spec = synthetic_workload(best_effort)
    else:
        contender_spec = best_effort
    system = _build_system(
        config,
        seed,
        run_index,
        label=f"{config.arbitration}-mixed",
        fast_forward=fast_forward,
        materialize_traces=materialize_traces,
        batch_interpreter=batch_interpreter,
        event_queue=event_queue,
    )
    system.add_task(tua_core, workload)
    for core in range(config.num_cores):
        if core != tua_core:
            system.add_task(core, contender_spec)
    result = system.run(max_cycles=max_cycles, allow_truncation=allow_truncation)
    return ScenarioResult(
        scenario=Scenario.MIXED_CRITICALITY,
        tua_core=tua_core,
        tua_cycles=result.execution_cycles(tua_core),
        system=result,
        truncated=result.truncated,
    )


def run_multiprogram(
    workloads: dict[int, WorkloadSpec],
    config: PlatformConfig,
    seed: int = 0,
    run_index: int = 0,
    tua_core: int = 0,
    max_cycles: int = 10_000_000,
    allow_truncation: bool = False,
    fast_forward: bool = True,
    materialize_traces: bool = True,
    batch_interpreter: bool = True,
    event_queue: bool = True,
) -> ScenarioResult:
    """Consolidate several real tasks (one per core) and run them together."""
    system = _build_system(
        config,
        seed,
        run_index,
        label=f"{config.arbitration}-multi",
        fast_forward=fast_forward,
        materialize_traces=materialize_traces,
        batch_interpreter=batch_interpreter,
        event_queue=event_queue,
    )
    for core_id, workload in workloads.items():
        system.add_task(core_id, workload)
    result = system.run(max_cycles=max_cycles, allow_truncation=allow_truncation)
    tua_cycles = result.execution_cycles(tua_core) if tua_core in workloads else 0
    return ScenarioResult(
        scenario=Scenario.MULTIPROGRAM,
        tua_core=tua_core,
        tua_cycles=tua_cycles,
        system=result,
        truncated=result.truncated,
    )
