"""Platform assembly: the simulated 4-core LEON3-like system.

:class:`MulticoreSystem` wires together everything the paper's platform
contains: trace-driven cores with private L1 caches, the shared non-split bus
with its arbiter (optionally wrapped by CBA), the partitioned write-back L2,
the memory controller and the DRAM.  Experiments create a system from a
:class:`~repro.sim.config.PlatformConfig`, place workloads and contenders on
cores, run it, and read back a :class:`SystemResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arbiters.base import Arbiter
from ..arbiters.registry import create_arbiter
from ..bus.bus import SharedBus
from ..bus.latency import LatencyTable
from ..bus.monitor import BusMonitor
from ..cache.l1 import build_l1_cache
from ..cache.l2 import L2BusSlave, build_l2
from ..core.cba import CreditBasedArbiter
from ..cpu.core_model import CoreModel
from ..cpu.counters import CoreCounters
from ..memory.controller import MemoryController
from ..memory.dram import DRAM, BankedDRAM
from ..obs.profiler import KernelProfiler
from ..obs.registry import MetricsRegistry
from ..obs.timeline import TimelineRecorder
from ..sim.config import ObservabilityConfig, PlatformConfig
from ..sim.errors import ConfigurationError
from ..sim.kernel import Kernel
from ..sim.trace import TraceRecorder
from ..workloads.base import WorkloadSpec
from ..workloads.contender import GreedyContender, WCETModeContender

__all__ = ["MulticoreSystem", "SystemResult"]


@dataclass
class SystemResult:
    """Everything an experiment needs to know about one finished run."""

    config_label: str
    total_cycles: int
    core_counters: dict[int, CoreCounters]
    bus_utilization: float
    bandwidth_shares: list[float]
    grants_per_core: list[int]
    cycles_per_core: list[int]
    cba_blocked_cycles: int = 0
    l1_miss_rates: dict[int, float] = field(default_factory=dict)
    l2_miss_rate: float = 0.0
    #: True when the run stopped at the cycle budget before every task
    #: finished — the per-core execution counters then describe an
    #: incomplete run (0 for tasks that never finished) and must not be
    #: used as execution-time measurements.
    truncated: bool = False
    extra: dict[str, object] = field(default_factory=dict)
    #: Execution-strategy observability (batch interpreter counters, skipped
    #: cycles): kept apart from :attr:`extra` because these legitimately
    #: differ between bit-identical execution modes (lazy vs columnar,
    #: stepped vs fast-forwarded) and must not enter result comparisons.
    observability: dict[str, int] = field(default_factory=dict)

    def execution_cycles(self, core_id: int) -> int:
        """Execution time (cycles) of the task that ran on ``core_id``."""
        return self.core_counters[core_id].execution_cycles


class MulticoreSystem:
    """Builder and runner for one simulated multicore platform instance."""

    def __init__(
        self,
        config: PlatformConfig,
        seed: int = 0,
        run_index: int = 0,
        trace: TraceRecorder | None = None,
        label: str = "",
        fast_forward: bool = True,
        materialize_traces: bool = True,
        batch_interpreter: bool = True,
        event_queue: bool = True,
        obs: ObservabilityConfig | None = None,
    ) -> None:
        """Build the platform.

        ``fast_forward`` controls the kernel's event-aware cycle skipping.
        It is bit-identical to plain stepping (enforced by the equivalence
        test matrix) and on by default; the switch exists for those tests and
        for benchmarking the skipping itself.

        ``event_queue`` selects the kernel's heap-based wake scheduling
        (components push wakes at state transitions) over the per-component
        hint scan.  Both find the same wakes and are bit-identical (enforced
        by the event-queue rows of the equivalence matrix); on by default,
        the switch exists for those tests and for benchmarking the two
        scheduling mechanisms against each other.

        ``materialize_traces`` selects the columnar trace path: each task's
        trace is pre-computed into parallel ``(gap, address, kind)`` arrays
        that the core consumes with a cursor.  Bit-identical to the lazy
        item-at-a-time path for the run this system executes (enforced by the
        columnar equivalence matrix) and on by default; the switch exists for
        those tests and benchmarks.  Each run builds a fresh system (the
        campaign/scenario protocol), so traces are materialised once per run;
        resetting and re-running the *same* system replays the materialised
        sequence rather than redrawing it — pass ``materialize_traces=False``
        if fresh draws across in-place resets are needed.

        ``batch_interpreter`` enables the cores' bulk execution of bus-free
        trace stretches (consecutive L1 hits and pure compute, see
        :mod:`repro.cpu.core_model`).  It rides on the columnar path (inert
        when ``materialize_traces=False``), composes with fast-forwarding and
        is bit-identical to per-cycle stepping (enforced by the batch rows of
        the columnar equivalence matrix); on by default, the switch exists
        for those tests and benchmarks.

        ``obs`` opts into instrumentation
        (:class:`~repro.sim.config.ObservabilityConfig`): a timeline recorder
        becomes the kernel's trace (unless an explicit ``trace`` was passed,
        which wins), and kernel profiling is enabled at :meth:`finalize`.
        ``None`` (the default) changes nothing anywhere on the hot path.
        """
        self.config = config
        self.label = label or config.arbitration
        self.materialize_traces = materialize_traces
        self.batch_interpreter = batch_interpreter
        self.obs = obs
        self.profiler: KernelProfiler | None = None
        if trace is None and obs is not None and obs.timeline:
            trace = TimelineRecorder(
                kinds=obs.timeline_kinds, capacity=obs.timeline_capacity
            )
        self.kernel = Kernel(
            seed=seed,
            run_index=run_index,
            frequency_hz=config.frequency_hz,
            trace=trace,
            fast_forward=fast_forward,
            event_queue=event_queue,
        )
        streams = self.kernel.streams
        self.latency_table = LatencyTable(config.bus_timings)

        # Memory side (bus slave): partitioned L2 -> controller -> DRAM.
        mem_cfg = config.memory
        if mem_cfg.model == "banked":
            dram: DRAM | BankedDRAM = BankedDRAM(
                num_banks=mem_cfg.num_banks,
                row_bytes=mem_cfg.row_bytes,
                row_hit_latency=mem_cfg.row_hit_latency,
                row_miss_latency=mem_cfg.row_miss_latency,
                row_conflict_latency=mem_cfg.row_conflict_latency,
            )
        else:
            dram = DRAM(access_latency=config.bus_timings.memory_latency)
        self.dram = dram
        self.memory_controller = MemoryController(dram, policy=mem_cfg.controller_policy)
        self.l2 = build_l2(
            geometry=config.l2_geometry,
            num_cores=config.num_cores,
            partitioned=config.l2_partitioned,
            random_caches=config.random_caches,
            rng=streams.stream("l2"),
        )
        self.l2_slave = L2BusSlave(
            self.l2,
            self.memory_controller,
            self.latency_table,
            dynamic_memory=mem_cfg.model == "banked",
        )

        # Arbiter, optionally wrapped by CBA.
        base_arbiter = create_arbiter(
            config.arbitration,
            config.num_cores,
            rng=streams.stream("arbiter"),
            slot_cycles=config.bus_timings.max_latency,
        )
        self.base_arbiter: Arbiter = base_arbiter
        self.cba: CreditBasedArbiter | None = None
        arbiter: Arbiter = base_arbiter
        if config.use_cba:
            self.cba = CreditBasedArbiter(base_arbiter, config.cba)
            arbiter = self.cba
        self.arbiter = arbiter

        self.bus = SharedBus(
            name="bus",
            num_masters=config.num_cores,
            arbiter=arbiter,
            slave=self.l2_slave,
            max_latency=config.bus_timings.max_latency,
        )
        self.monitor = BusMonitor("bus_monitor", self.bus, window_cycles=1000)

        self.cores: dict[int, CoreModel] = {}
        self.contenders: dict[int, GreedyContender | WCETModeContender] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def _check_core_slot(self, core_id: int) -> None:
        if self._finalized:
            raise ConfigurationError("cannot add components after the system was finalized")
        if not 0 <= core_id < self.config.num_cores:
            raise ConfigurationError(f"core id {core_id} out of range")
        if core_id in self.cores or core_id in self.contenders:
            raise ConfigurationError(f"core {core_id} is already occupied")

    def add_task(self, core_id: int, workload: WorkloadSpec) -> CoreModel:
        """Place ``workload`` on ``core_id`` and return the core model."""
        self._check_core_slot(core_id)
        streams = self.kernel.streams
        l1 = build_l1_cache(
            name=f"core{core_id}.l1d",
            geometry=self.config.l1_geometry,
            random_caches=self.config.random_caches,
            rng=streams.stream(f"l1d.core{core_id}"),
        )
        # Give each core a private address range so tasks do not share data:
        # the paper's workloads are independent programs consolidated on the
        # multicore, interfering only through the bus (the L2 is partitioned).
        spec = workload.with_updates(
            base_address=workload.base_address + core_id * 0x0100_0000
        )
        trace = spec.build_trace(
            streams.stream(f"workload.core{core_id}"),
            materialize=self.materialize_traces,
        )
        core = CoreModel(
            name=f"core{core_id}",
            core_id=core_id,
            trace=trace,
            l1_data=l1,
            bus=self.bus,
            store_buffer_entries=self.config.store_buffer_entries,
            batch_interpreter=self.batch_interpreter,
        )
        self.cores[core_id] = core
        return core

    def add_greedy_contender(self, core_id: int) -> GreedyContender:
        """Place an operation-mode worst-case contender on ``core_id``."""
        self._check_core_slot(core_id)
        contender = GreedyContender(
            name=f"contender{core_id}",
            core_id=core_id,
            bus=self.bus,
            address=0x6000_0000 + core_id * 0x0100_0000,
        )
        self.contenders[core_id] = contender
        return contender

    def add_wcet_contender(self, core_id: int, tua_core: int) -> WCETModeContender:
        """Place a WCET-estimation-mode contender on ``core_id``.

        The contender observes the task under analysis on ``tua_core``
        (its request-ready line) and its own CBA budget, per Table I.
        """
        self._check_core_slot(core_id)
        if tua_core == core_id:
            raise ConfigurationError("the contender cannot observe itself as the TuA")

        def tua_request_ready() -> bool:
            tua = self.cores.get(tua_core)
            return tua is not None and tua.has_request_ready

        contender = WCETModeContender(
            name=f"wcet_contender{core_id}",
            core_id=core_id,
            bus=self.bus,
            tua_request_ready=tua_request_ready,
            cba=self.cba,
            address=0x7000_0000 + core_id * 0x0100_0000,
        )
        self.contenders[core_id] = contender
        return contender

    def set_tua_initial_budget(self, core_id: int, budget: int = 0) -> None:
        """Zero (or set) the starting budget of the task under analysis.

        The paper collects analysis-time measurements with the TuA starting
        at zero budget so the first request is delayed as much as possible.
        Ignored when CBA is not enabled.
        """
        if self.cba is not None:
            self.cba.set_initial_budget(core_id, budget)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Register every component with the kernel in pipeline order."""
        if self._finalized:
            return
        if not self.cores:
            raise ConfigurationError("the system has no task to run")
        for core_id in sorted(self.cores):
            self.kernel.register(self.cores[core_id])
        for core_id in sorted(self.contenders):
            self.kernel.register(self.contenders[core_id])
        self.kernel.register(self.bus)
        self.kernel.register(self.monitor)
        self._core_list = tuple(self.cores.values())
        self.kernel.add_stop_condition(self._all_tasks_finished)
        if self.cba is not None and self.kernel.trace.enabled:
            self.cba.attach_trace(self.kernel.trace)
        if self.obs is not None and self.obs.profile_kernel:
            self.profiler = KernelProfiler()
            self.kernel.enable_profiling(self.profiler)
        self._finalized = True

    def _all_tasks_finished(self) -> bool:
        # Evaluated once per executed cycle; a plain loop over a snapshot
        # tuple beats all() with a generator expression.
        for core in self._core_list:
            if not core.finished:
                return False
        return True

    def run(
        self, max_cycles: int = 5_000_000, allow_truncation: bool = False
    ) -> SystemResult:
        """Run until every task finishes (or ``max_cycles``) and summarise.

        By default hitting the cycle budget before every task finished is an
        error (a truncated run's execution times are meaningless for the
        paper's statistics).  Campaign-style callers that prefer to record the
        truncation and keep going pass ``allow_truncation=True`` and check
        :attr:`SystemResult.truncated`.
        """
        self.finalize()
        self.kernel.run(max_cycles=max_cycles)
        if self.kernel.truncated and not allow_truncation:
            raise ConfigurationError(
                f"simulation hit the {max_cycles}-cycle limit before all tasks finished; "
                "increase max_cycles or shrink the workload"
            )
        return self._collect_result()

    def _collect_result(self) -> SystemResult:
        num_cores = self.config.num_cores
        dram_stats = self.dram.stats
        counters = {core_id: core.counters for core_id, core in self.cores.items()}
        l1_miss_rates = {
            core_id: core.l1_data.miss_rate() for core_id, core in self.cores.items()
        }
        return SystemResult(
            config_label=self.label,
            total_cycles=self.kernel.clock.cycle,
            core_counters=counters,
            bus_utilization=self.bus.utilization(),
            bandwidth_shares=self.bus.bandwidth_shares(),
            grants_per_core=[self.bus.grants(m) for m in range(num_cores)],
            cycles_per_core=[self.bus.cycles_granted(m) for m in range(num_cores)],
            cba_blocked_cycles=self.cba.blocked_cycles if self.cba else 0,
            l1_miss_rates=l1_miss_rates,
            l2_miss_rate=self.l2.miss_rate(),
            truncated=self.kernel.truncated,
            extra={
                "arbitration": self.config.arbitration,
                "use_cba": self.config.use_cba,
                "contender_requests": {
                    core_id: contender.requests_completed
                    for core_id, contender in self.contenders.items()
                },
                # DRAM/controller state evolution is part of the bit-identity
                # contract: the equivalence matrix and the fuzzer compare
                # these across kernel modes like every other counter.
                "memory": {
                    "model": self.config.memory.model,
                    "controller_policy": self.config.memory.controller_policy,
                    "reads": dram_stats.counter("reads").value,
                    "writes": dram_stats.counter("writes").value,
                    "row_hits": dram_stats.counter("row_hits").value,
                    "row_misses": dram_stats.counter("row_misses").value,
                    "row_conflicts": dram_stats.counter("row_conflicts").value,
                    "busy_cycles": self.memory_controller.stats.counter(
                        "busy_cycles"
                    ).value,
                    "reordered_accesses": self.memory_controller.stats.counter(
                        "reordered_accesses"
                    ).value,
                },
            },
            observability={
                "batched_items": sum(c.batched_items for c in self.cores.values()),
                "batch_stretches": sum(c.batch_stretches for c in self.cores.values()),
                "cycles_skipped": self.kernel.cycles_skipped,
            },
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def collect_metrics(self, registry: MetricsRegistry | None = None) -> MetricsRegistry:
        """Fold everything this system counted into a labelled metrics registry.

        Every series carries a ``system=<label>`` label (per-core series add
        ``core=<id>``), so registries from several runs or configurations can
        be merged without collisions.  Pass an existing ``registry`` to
        accumulate across systems; the (possibly fresh) registry is returned.
        """
        if registry is None:
            registry = MetricsRegistry()
        label = self.label
        registry.ingest_group(self.bus.stats, prefix="bus.", system=label)
        registry.gauge("bus.utilization", system=label).set(self.bus.utilization())
        for core_id, core in self.cores.items():
            registry.ingest_group(core.obs, prefix="core.", system=label, core=core_id)
            values = dict(core.counters.as_dict())
            values.pop("core_id", None)
            registry.ingest_values(values, prefix="core.", system=label, core=core_id)
        mon = self.monitor
        registry.counter("bus.monitor_cycles_observed", system=label).increment(
            mon.total_cycles_observed
        )
        for master, busy in enumerate(mon.total_busy_per_master):
            registry.counter("bus.monitor_busy_cycles", system=label, core=master).increment(
                busy
            )
        if self.cba is not None:
            registry.counter("cba.blocked_cycles", system=label).increment(
                self.cba.blocked_cycles
            )
            for core_id, balance in enumerate(self.cba.budgets()):
                registry.gauge("cba.budget", system=label, core=core_id).set(balance)
        kernel = self.kernel
        registry.counter("kernel.cycles_total", system=label).increment(kernel.clock.cycle)
        registry.counter("kernel.cycles_skipped", system=label).increment(
            kernel.cycles_skipped
        )
        return registry
