"""Platform assembly: configuration presets, the multicore system builder and
the standard isolation / maximum-contention / WCET-estimation scenarios."""

from .presets import (
    PAPER_CONFIG_LABELS,
    cba_config,
    config_by_label,
    hcba_config,
    paper_bus_timings,
    rp_config,
)
from .scenarios import (
    Scenario,
    ScenarioResult,
    run_isolation,
    run_max_contention,
    run_multiprogram,
    run_wcet_estimation,
)
from .system import MulticoreSystem, SystemResult

__all__ = [
    "MulticoreSystem",
    "SystemResult",
    "Scenario",
    "ScenarioResult",
    "run_isolation",
    "run_max_contention",
    "run_wcet_estimation",
    "run_multiprogram",
    "paper_bus_timings",
    "rp_config",
    "cba_config",
    "hcba_config",
    "config_by_label",
    "PAPER_CONFIG_LABELS",
]
