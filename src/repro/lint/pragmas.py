"""``# repro-lint: allow[...]`` suppression pragmas.

Two forms, both extracted with :mod:`tokenize` so string literals that merely
*look* like pragmas are never honoured:

* line pragma — ``# repro-lint: allow[DET001]`` on the offending line, or on
  a comment-only line directly above it.  Several rules may be listed
  (``allow[DET001,HOT004]``); a bare family prefix (``allow[HOT]``)
  suppresses the whole family on that line.
* file pragma — ``# repro-lint: allow-file[RES003]`` anywhere in the file
  suppresses the listed rules for the entire file.

A pragma is an *in-place justification*: put the why on the same comment
line (everything after the closing bracket is free text).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["PragmaIndex", "scan_pragmas"]

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*(allow(?:-file)?)\[([^\]]*)\]")


@dataclass
class PragmaIndex:
    """Suppressions extracted from one file's comments."""

    #: line number -> rule ids / family prefixes allowed on that line.
    line_allows: dict[int, frozenset[str]] = field(default_factory=dict)
    #: rule ids / family prefixes allowed for the whole file.
    file_allows: frozenset[str] = frozenset()
    #: lines that consist solely of a comment (candidate "pragma above").
    comment_only_lines: frozenset[int] = frozenset()

    def suppresses(self, rule: str, line: int) -> bool:
        """Whether ``rule`` reported at ``line`` is pragma-suppressed."""
        if self._matches(self.file_allows, rule):
            return True
        if self._matches(self.line_allows.get(line, frozenset()), rule):
            return True
        # A comment-only line directly above the finding may carry the pragma.
        above = line - 1
        if above in self.comment_only_lines and self._matches(
            self.line_allows.get(above, frozenset()), rule
        ):
            return True
        return False

    @staticmethod
    def _matches(allowed: frozenset[str], rule: str) -> bool:
        if not allowed:
            return False
        if rule in allowed:
            return True
        return any(rule.startswith(prefix) for prefix in allowed if prefix.isalpha())


def scan_pragmas(source: str) -> PragmaIndex:
    """Extract the pragma index from one file's source text.

    Tokenisation errors (the engine only lints files that already parsed)
    fall back to an empty index rather than failing the run.
    """
    index = PragmaIndex()
    line_allows: dict[int, set[str]] = {}
    file_allows: set[str] = set()
    comment_only: set[int] = set()
    code_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):  # pragma: no cover
        return index
    for token in tokens:
        if token.type == tokenize.COMMENT:
            match = _PRAGMA_RE.search(token.string)
            if not match:
                continue
            rules = {
                chunk.strip()
                for chunk in match.group(2).split(",")
                if chunk.strip()
            }
            if not rules:
                continue
            if match.group(1) == "allow-file":
                file_allows |= rules
            else:
                line_allows.setdefault(token.start[0], set()).update(rules)
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            for line in range(token.start[0], token.end[0] + 1):
                code_lines.add(line)
    for line in line_allows:
        if line not in code_lines:
            comment_only.add(line)
    index.line_allows = {line: frozenset(rules) for line, rules in line_allows.items()}
    index.file_allows = frozenset(file_allows)
    index.comment_only_lines = frozenset(comment_only)
    return index
