"""Committed baseline of grandfathered findings.

A baseline lets the analyzer land with teeth even when pre-existing findings
cannot all be fixed in one PR: known findings are recorded by fingerprint and
stop failing the run, while anything *new* still does.  Two hard rules keep
the baseline honest:

* every entry must carry a non-empty written ``reason`` — a baseline without
  justifications is just a mute button;
* entries whose finding no longer exists are reported as *stale* so the
  baseline shrinks over time instead of fossilising.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..sim.errors import ConfigurationError
from .findings import Finding

__all__ = ["Baseline", "BaselineEntry"]

BASELINE_VERSION = 1

#: Reason written by ``--write-baseline``; committed baselines must replace it.
PLACEHOLDER_REASON = "TODO: justify this grandfathered finding"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    fingerprint: str
    rule: str
    path: str
    reason: str
    snippet: str = ""

    def to_dict(self) -> dict[str, str]:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    """The set of grandfathered findings, loaded from / saved to JSON."""

    entries: dict[str, BaselineEntry] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"{path}: invalid baseline JSON ({error})") from None
        if not isinstance(document, dict):
            raise ConfigurationError(f"{path}: baseline must be a JSON object")
        version = document.get("version", BASELINE_VERSION)
        if version != BASELINE_VERSION:
            raise ConfigurationError(
                f"{path}: baseline version {version!r} unsupported "
                f"(expected {BASELINE_VERSION})"
            )
        raw_entries = document.get("entries", [])
        if not isinstance(raw_entries, list):
            raise ConfigurationError(f"{path}: baseline entries must be a list")
        entries: dict[str, BaselineEntry] = {}
        for raw in raw_entries:
            if not isinstance(raw, dict):
                raise ConfigurationError(f"{path}: baseline entry is not an object")
            try:
                entry = BaselineEntry(
                    fingerprint=str(raw["fingerprint"]),
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    reason=str(raw.get("reason", "")).strip(),
                    snippet=str(raw.get("snippet", "")),
                )
            except KeyError as missing:
                raise ConfigurationError(
                    f"{path}: baseline entry missing field {missing}"
                ) from None
            if not entry.reason:
                raise ConfigurationError(
                    f"{path}: baseline entry {entry.fingerprint} ({entry.rule} in "
                    f"{entry.path}) has no reason — every grandfathered finding "
                    f"must be justified"
                )
            entries[entry.fingerprint] = entry
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        """Write the baseline with deterministic ordering."""
        document = {
            "version": BASELINE_VERSION,
            "entries": [
                self.entries[fingerprint].to_dict()
                for fingerprint in sorted(self.entries)
            ],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """Grandfather ``findings`` (with placeholder reasons to fill in)."""
        entries = {
            finding.fingerprint: BaselineEntry(
                fingerprint=finding.fingerprint,
                rule=finding.rule,
                path=finding.path,
                snippet=finding.snippet,
                reason=PLACEHOLDER_REASON,
            )
            for finding in findings
        }
        return cls(entries=entries)

    # ------------------------------------------------------------------
    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition ``findings`` into (new, baselined) plus stale entries."""
        new: list[Finding] = []
        baselined: list[Finding] = []
        seen: set[str] = set()
        for finding in findings:
            fingerprint = finding.fingerprint
            if fingerprint in self.entries:
                baselined.append(finding)
                seen.add(fingerprint)
            else:
                new.append(finding)
        stale = [
            self.entries[fingerprint]
            for fingerprint in sorted(self.entries)
            if fingerprint not in seen
        ]
        return new, baselined, stale
