"""Render a :class:`~repro.lint.engine.LintReport` as text or JSON."""

from __future__ import annotations

import json

from .engine import LintReport
from .rules import ALL_RULES

__all__ = ["render_text", "render_json", "render_rule_list"]

#: Schema version of the ``--format json`` document.
JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(finding.format_text())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose and report.baselined:
        lines.append("")
        lines.append("baselined (grandfathered, not failing):")
        for finding in report.baselined:
            lines.append(f"  {finding.format_text()}")
    for entry in report.stale_baseline:
        lines.append(
            f"stale baseline entry {entry.fingerprint}: {entry.rule} in "
            f"{entry.path} no longer occurs — remove it from the baseline"
        )
    summary = (
        f"repro lint: {report.files_scanned} files scanned, "
        f"{len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed} pragma-suppressed"
    )
    if report.stale_baseline:
        summary += f", {len(report.stale_baseline)} stale baseline entrie(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact format)."""
    document = {
        "version": JSON_SCHEMA_VERSION,
        "clean": report.clean,
        "files_scanned": report.files_scanned,
        "findings": [finding.to_dict() for finding in report.findings],
        "baselined": [finding.to_dict() for finding in report.baselined],
        "suppressed": report.suppressed,
        "stale_baseline": [entry.to_dict() for entry in report.stale_baseline],
        "summary": {
            "findings": len(report.findings),
            "baselined": len(report.baselined),
            "stale_baseline": len(report.stale_baseline),
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` output: id, family, one-line description."""
    lines = ["rule     family        description"]
    for rule_class in ALL_RULES:
        reported = getattr(rule_class, "REPORTED_IDS", (rule_class.id,))
        for rule_id in reported:
            lines.append(
                f"{rule_id:<8} {rule_class.family:<13} "
                f"{rule_class.describe(rule_id)}"
            )
    return "\n".join(lines)
