"""Findings model: what a rule reports and how it is identified.

A finding's :attr:`~Finding.fingerprint` deliberately ignores the line
*number* and hashes the line *content* (plus an occurrence index for
duplicates) instead, so baselined findings survive unrelated edits that
shift code up or down the file.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(str, enum.Enum):
    """How bad a finding is.  Informational only: *any* non-baselined,
    non-suppressed finding fails the run — reproducibility contracts do not
    come in ignorable flavours."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str  #: Path relative to the repository root, POSIX separators.
    line: int  #: 1-indexed line of the offending node.
    column: int  #: 0-indexed column of the offending node.
    message: str
    snippet: str = ""  #: The stripped source line, for reports and fingerprints.
    #: Disambiguates identical (rule, path, snippet) findings, in file order.
    occurrence: int = field(default=0, compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the baseline (line-move tolerant)."""
        digest = hashlib.blake2b(digest_size=8)
        for part in (self.rule, self.path, self.snippet, str(self.occurrence)):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (the ``--format json`` record schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def format_text(self) -> str:
        """One-line human-readable rendering (``path:line:col: RULE message``)."""
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )


def assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Number duplicate (rule, path, snippet) findings in file order.

    Fingerprints hash line content rather than line numbers; two identical
    violations on identical lines of one file would otherwise collide.
    """
    seen: dict[tuple[str, str, str], int] = {}
    numbered: list[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule)):
        key = (finding.rule, finding.path, finding.snippet)
        index = seen.get(key, 0)
        seen[key] = index + 1
        numbered.append(
            Finding(
                rule=finding.rule,
                severity=finding.severity,
                path=finding.path,
                line=finding.line,
                column=finding.column,
                message=finding.message,
                snippet=finding.snippet,
                occurrence=index,
            )
        )
    return numbered
