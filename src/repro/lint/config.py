"""Configuration: ``[tool.repro-lint]`` in ``pyproject.toml``.

Each rule *family* gets a path scope (directories or files, relative to the
repository root) so e.g. determinism rules bite inside the simulator but not
inside the observability exporters.  Rule-specific knobs (which modules hold
value classes, where ``os._exit`` is legal) live under ``options``.

``tomllib`` only exists on Python 3.11+; on 3.10 (still in the CI matrix) a
minimal built-in parser covers the TOML subset this configuration actually
uses — tables, strings, booleans, integers and (multi-line) string arrays.
No third-party dependency is introduced either way.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from ..sim.errors import ConfigurationError

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - Python 3.10 fallback, tested directly
    tomllib = None  # type: ignore[assignment]

__all__ = ["LintConfig", "load_config", "parse_minimal_toml"]

#: The rule families path scopes can be configured for.
FAMILIES = ("determinism", "ordering", "hotpath", "contracts", "resources")

#: The hot-path method names whose bodies the HOT rules inspect.
HOT_METHODS = ("tick", "post_tick", "fast_forward", "next_event")


@dataclass
class LintConfig:
    """Resolved configuration for one lint run (paths are root-relative)."""

    #: Repository root all relative paths resolve against.
    root: Path = field(default_factory=Path.cwd)
    #: Trees/files to analyse.
    paths: tuple[str, ...] = ("src/repro",)
    #: Committed baseline of grandfathered findings ("" = no baseline).
    baseline: str = "lint-baseline.json"
    #: Per-family path scopes; a family with no scope applies nowhere.
    scopes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Modules whose dataclasses must be slotted (CON003).
    value_class_modules: tuple[str, ...] = ()
    #: Modules where ``os._exit`` is allowed (RES003).
    os_exit_modules: tuple[str, ...] = ()
    #: Hot-path method names (HOT rules); overridable for tests.
    hot_methods: tuple[str, ...] = HOT_METHODS

    def families_for(self, relpath: str) -> frozenset[str]:
        """The rule families whose scope covers ``relpath``."""
        active = [
            family
            for family in FAMILIES
            if any(_covers(prefix, relpath) for prefix in self.scopes.get(family, ()))
        ]
        return frozenset(active)

    def is_value_class_module(self, relpath: str) -> bool:
        return any(_covers(prefix, relpath) for prefix in self.value_class_modules)

    def allows_os_exit(self, relpath: str) -> bool:
        return any(_covers(prefix, relpath) for prefix in self.os_exit_modules)


def _covers(prefix: str, relpath: str) -> bool:
    """True when ``prefix`` (a file or directory path) contains ``relpath``."""
    prefix = prefix.rstrip("/")
    return relpath == prefix or relpath.startswith(prefix + "/")


# ----------------------------------------------------------------------
# pyproject loading
# ----------------------------------------------------------------------
def load_config(root: Path, pyproject: Path | None = None) -> LintConfig:
    """Build a :class:`LintConfig` from ``pyproject.toml`` under ``root``.

    A missing file or a missing ``[tool.repro-lint]`` table yields the
    defaults (analyse ``src/repro``, every family scoped to nothing — the
    shipped pyproject configures real scopes).
    """
    root = Path(root)
    path = pyproject if pyproject is not None else root / "pyproject.toml"
    table: dict = {}
    if path.exists():
        text = path.read_text(encoding="utf-8")
        if tomllib is not None:
            try:
                document = tomllib.loads(text)
            except tomllib.TOMLDecodeError as error:
                raise ConfigurationError(f"{path}: invalid TOML ({error})") from None
        else:  # pragma: no cover - Python 3.10 path, covered by direct tests
            document = parse_minimal_toml(text)
        tool = document.get("tool", {})
        table = tool.get("repro-lint", {}) if isinstance(tool, dict) else {}
    if not isinstance(table, dict):
        raise ConfigurationError(f"{path}: [tool.repro-lint] must be a table")
    return _config_from_table(root, path, table)


def _config_from_table(root: Path, source: Path, table: dict) -> LintConfig:
    config = LintConfig(root=root)
    if "paths" in table:
        config.paths = _string_tuple(source, "paths", table["paths"])
    if "baseline" in table:
        baseline = table["baseline"]
        if not isinstance(baseline, str):
            raise ConfigurationError(f"{source}: repro-lint baseline must be a string")
        config.baseline = baseline
    scopes = table.get("scopes", {})
    if not isinstance(scopes, dict):
        raise ConfigurationError(f"{source}: [tool.repro-lint.scopes] must be a table")
    for family, value in scopes.items():
        if family not in FAMILIES:
            raise ConfigurationError(
                f"{source}: unknown repro-lint rule family {family!r} "
                f"(known: {', '.join(FAMILIES)})"
            )
        config.scopes[family] = _string_tuple(source, f"scopes.{family}", value)
    options = table.get("options", {})
    if not isinstance(options, dict):
        raise ConfigurationError(f"{source}: [tool.repro-lint.options] must be a table")
    if "value-class-modules" in options:
        config.value_class_modules = _string_tuple(
            source, "options.value-class-modules", options["value-class-modules"]
        )
    if "os-exit-modules" in options:
        config.os_exit_modules = _string_tuple(
            source, "options.os-exit-modules", options["os-exit-modules"]
        )
    return config


def _string_tuple(source: Path, key: str, value: object) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ConfigurationError(
            f"{source}: repro-lint {key} must be an array of strings"
        )
    return tuple(value)


# ----------------------------------------------------------------------
# Minimal TOML subset parser (Python 3.10, where tomllib is absent)
# ----------------------------------------------------------------------
_TABLE_RE = re.compile(r"^\[([^\]]+)\]\s*$")
_KEY_RE = re.compile(r'^([A-Za-z0-9_\-"\'.]+)\s*=\s*(.*)$')


def parse_minimal_toml(text: str) -> dict:
    """Parse the TOML subset the repro-lint configuration uses.

    Supported: ``[dotted.tables]``, ``key = "string" | true | false | int``
    and arrays of strings (single- or multi-line, trailing commas allowed).
    Unsupported constructs raise :class:`ConfigurationError` only when they
    appear inside a ``repro-lint`` table — foreign tables (ruff, mypy, ...)
    are skipped wholesale, so this parser never has to understand them.
    """
    document: dict = {}
    current: dict | None = None
    current_name = ""
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line or line.startswith("#"):
            continue
        match = _TABLE_RE.match(line)
        if match:
            current_name = match.group(1).strip()
            current = _descend(document, current_name)
            continue
        relevant = "repro-lint" in current_name
        match = _KEY_RE.match(line)
        if not match:
            if relevant:
                raise ConfigurationError(f"repro-lint config: cannot parse line {line!r}")
            continue
        key = match.group(1).strip().strip("\"'")
        raw = match.group(2).strip()
        if raw.startswith("[") and "]" not in raw.split("#", 1)[0]:
            # Multi-line array: keep consuming until the closing bracket.
            parts = [raw]
            while index < len(lines):
                part = lines[index].strip()
                index += 1
                parts.append(part)
                if part.split("#", 1)[0].strip().endswith("]"):
                    break
            # Join with newlines so per-item comments stay line-terminated.
            raw = "\n".join(parts)
        if current is None:
            current = document
        try:
            current[key] = _parse_value(raw)
        except ConfigurationError:
            if relevant:
                raise
    return document


def _descend(document: dict, dotted: str) -> dict:
    node = document
    for part in dotted.split("."):
        part = part.strip().strip("\"'")
        node = node.setdefault(part, {})
        if not isinstance(node, dict):
            raise ConfigurationError(f"repro-lint config: {dotted!r} is not a table")
    return node


def _parse_value(raw: str) -> object:
    raw = raw.strip()
    if raw.startswith("["):
        closing = raw.rfind("]")
        if closing < 0:
            raise ConfigurationError(f"repro-lint config: unterminated array {raw!r}")
        body = raw[1:closing]
        items: list[object] = []
        for chunk in _split_array(body):
            items.append(_parse_value(chunk))
        return items
    if raw.startswith(('"', "'")):
        quote = raw[0]
        end = raw.find(quote, 1)
        if end < 0:
            raise ConfigurationError(f"repro-lint config: unterminated string {raw!r}")
        return raw[1:end]
    # Strip a trailing comment from bare scalars.
    raw = raw.split("#", 1)[0].strip()
    if raw in ("true", "false"):
        return raw == "true"
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(f"repro-lint config: unsupported value {raw!r}") from None


def _split_array(body: str) -> list[str]:
    """Split an array body on commas outside quotes, dropping comments."""
    chunks: list[str] = []
    depth_quote = ""
    current: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if depth_quote:
            current.append(ch)
            if ch == depth_quote:
                depth_quote = ""
        elif ch in ('"', "'"):
            depth_quote = ch
            current.append(ch)
        elif ch == "#":
            # Comment runs to end of line within the joined body.
            nl = body.find("\n", i)
            i = len(body) if nl < 0 else nl
        elif ch == ",":
            chunks.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    chunks.append("".join(current))
    return [chunk.strip() for chunk in chunks if chunk.strip()]
