"""Command-line front end: ``repro lint`` / ``python -m repro.lint``.

Exit codes:

* ``0`` — clean (every finding suppressed in place or baselined);
* ``1`` — at least one new finding;
* ``2`` — configuration or usage error (bad paths, corrupt baseline, ...).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from ..sim.errors import SimulationError
from .baseline import Baseline
from .config import load_config
from .engine import LintEngine
from .report import render_json, render_rule_list, render_text

__all__ = ["add_lint_arguments", "main", "run_from_args"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags (shared by `repro lint` and `python -m repro.lint`)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to analyse (default: [tool.repro-lint] paths)",
    )
    parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="repository root holding pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="output_format",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="additionally write the JSON report to PATH (for CI artifacts)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file (default: [tool.repro-lint] baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report grandfathered findings as failures",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="grandfather all current findings into the baseline file "
             "(entries get placeholder reasons you must fill in) and exit 0",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list baselined findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint invocation from parsed arguments."""
    if args.list_rules:
        print(render_rule_list())
        return 0
    root = Path(args.root).resolve()
    config = load_config(root)
    if args.paths:
        config.paths = tuple(args.paths)
    if args.baseline is not None:
        config.baseline = args.baseline
    engine = LintEngine(config)
    baseline_path = (root / config.baseline) if config.baseline else None

    if args.write_baseline:
        if baseline_path is None:
            print("repro lint: --write-baseline needs a baseline path", file=sys.stderr)
            return 2
        findings = engine.collect_raw()
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"repro lint: wrote {len(findings)} entrie(s) to {baseline_path} — "
            f"replace every placeholder reason with a real justification"
        )
        return 0

    baseline = Baseline()
    if baseline_path is not None and not args.no_baseline:
        baseline = Baseline.load(baseline_path)
    report = engine.run(baseline)
    if args.output_format == "json":
        print(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    if args.output:
        Path(args.output).write_text(render_json(report) + "\n", encoding="utf-8")
    return report.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based contract analyzer: determinism, ordering "
                    "stability, hot-path discipline, component contracts, "
                    "fork/resource safety.",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_from_args(args)
    except SimulationError as error:
        print(f"repro lint: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
