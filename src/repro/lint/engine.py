"""The analyzer engine: one parse, one walk, all rules.

For every Python file under the configured paths the engine parses the
source once, pre-collects the import alias map, then performs a single
recursive walk maintaining the class/function stacks and dispatching each
node to the rules that (a) registered interest in its type and (b) are in
scope for the file's path.  Findings then flow through pragma suppression
and the committed baseline before the report is rendered.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from ..sim.errors import ConfigurationError
from .baseline import Baseline, BaselineEntry
from .config import LintConfig
from .context import FileContext
from .findings import Finding, assign_occurrences
from .pragmas import scan_pragmas
from .rules import make_rules
from .rules.base import Rule

__all__ = ["LintEngine", "LintReport", "run_lint"]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    #: Findings that fail the run (not suppressed, not baselined).
    findings: list[Finding] = field(default_factory=list)
    #: Findings matched (and silenced) by the committed baseline.
    baselined: list[Finding] = field(default_factory=list)
    #: Count of findings silenced by ``# repro-lint: allow[...]`` pragmas.
    suppressed: int = 0
    #: Baseline entries whose finding no longer exists (clean them up).
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


class LintEngine:
    """Runs all registered rules over the configured paths in one pass."""

    def __init__(self, config: LintConfig, rules: list[Rule] | None = None) -> None:
        self.config = config
        self.rules = rules if rules is not None else make_rules()
        ids = [rule.id for rule in self.rules]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate rule ids registered: {sorted(ids)}")
        #: node type -> rules interested (built once; the walk consults it
        #: with a per-type cache so isinstance checks happen once per type).
        self._dispatch_cache: dict[type, list[Rule]] = {}

    # ------------------------------------------------------------------
    def run(self, baseline: Baseline | None = None) -> LintReport:
        """Analyse every configured file and fold in the baseline."""
        report = LintReport()
        raw_findings: list[Finding] = []
        suppressed = 0
        for path in self._collect_files():
            findings, hidden = self._lint_file(path)
            raw_findings.extend(findings)
            suppressed += hidden
            report.files_scanned += 1
        numbered = assign_occurrences(raw_findings)
        if baseline is None:
            baseline = Baseline()
        new, matched, stale = baseline.split(numbered)
        report.findings = new
        report.baselined = matched
        report.stale_baseline = stale
        report.suppressed = suppressed
        return report

    def collect_raw(self) -> list[Finding]:
        """All non-pragma-suppressed findings (used by ``--write-baseline``)."""
        raw: list[Finding] = []
        for path in self._collect_files():
            findings, _ = self._lint_file(path)
            raw.extend(findings)
        return assign_occurrences(raw)

    # ------------------------------------------------------------------
    def _collect_files(self) -> list[Path]:
        root = self.config.root
        files: list[Path] = []
        seen: set[Path] = set()
        for entry in self.config.paths:
            target = (root / entry).resolve()
            if target.is_file():
                candidates = [target]
            elif target.is_dir():
                # sorted(): our own walk must not depend on filesystem order.
                candidates = sorted(target.rglob("*.py"))
            else:
                raise ConfigurationError(f"repro-lint path does not exist: {entry}")
            for candidate in candidates:
                if candidate not in seen:
                    seen.add(candidate)
                    files.append(candidate)
        return files

    def _lint_file(self, path: Path) -> tuple[list[Finding], int]:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            raise ConfigurationError(
                f"{path}: cannot parse ({error.msg} on line {error.lineno})"
            ) from None
        try:
            relpath = path.resolve().relative_to(self.config.root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        ctx = FileContext(
            path=path,
            relpath=relpath,
            source=source,
            lines=source.splitlines(),
            tree=tree,
            config=self.config,
            families=self.config.families_for(relpath),
        )
        ctx.collect_imports()
        active = [rule for rule in self.rules if rule.family in ctx.families]
        if not active:
            return [], 0
        for rule in active:
            rule.begin_file(ctx)
        self._walk(tree, ctx, active)
        for rule in active:
            rule.end_file(ctx)
        pragmas = scan_pragmas(source)
        kept: list[Finding] = []
        hidden = 0
        for finding in ctx.findings:
            if pragmas.suppresses(finding.rule, finding.line):
                hidden += 1
            else:
                kept.append(finding)
        return kept, hidden

    def _walk(self, node: ast.AST, ctx: FileContext, active: list[Rule]) -> None:
        node_type = type(node)
        interested = self._dispatch_cache.get(node_type)
        if interested is None:
            interested = [
                rule
                for rule in self.rules
                if any(issubclass(node_type, t) for t in rule.interests)
            ]
            self._dispatch_cache[node_type] = interested
        for rule in interested:
            if rule in active:
                rule.visit(node, ctx)
        is_class = isinstance(node, ast.ClassDef)
        is_function = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        if is_class:
            ctx.class_stack.append(node)
        if is_function:
            ctx.function_stack.append(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx, active)
        if is_class:
            ctx.class_stack.pop()
        if is_function:
            ctx.function_stack.pop()


def run_lint(config: LintConfig, baseline: Baseline | None = None) -> LintReport:
    """Convenience wrapper: engine + baseline in one call."""
    if baseline is None and config.baseline:
        baseline = Baseline.load(config.root / config.baseline)
    return LintEngine(config).run(baseline)
