"""``repro lint`` — AST-based contract analyzer for this repository.

Generic linters (ruff, mypy — both already in CI) check Python; this package
checks the *repository's own invariants*, the ones every optimisation PR is
trusted against:

* **determinism** (``DET``) — seeded RNG only (:class:`~repro.sim.rng.
  RandomStreams` / :func:`~repro.sim.rng.derive_seed`), no wall-clock reads,
  no ``os.urandom``, no salted builtin ``hash()`` for content keys;
* **hash/ordering stability** (``ORD``) — canonical (sorted) JSON encodings
  and no unordered ``set``/filesystem iteration feeding stores or draws;
* **hot-path discipline** (``HOT``) — no per-cycle allocation, formatting or
  repeated deep attribute chains inside ``tick``/``post_tick``/
  ``fast_forward``/``next_event`` bodies;
* **component contracts** (``CON``) — event-driven components push wakes,
  ``fast_forward`` overrides come with ``next_event``, value classes carry
  ``__slots__``;
* **fork/resource safety** (``RES``) — ``SharedMemory`` segments are closed
  and unlinked on all paths, ``flock`` acquisitions are paired with releases,
  ``os._exit`` stays confined to the fault injector.

The engine parses every file once and dispatches AST nodes to all registered
rules in a single pass.  Findings can be suppressed in place with a
``# repro-lint: allow[RULE]`` pragma (same line or the comment line directly
above) or grandfathered in a committed baseline file whose entries each
carry a written reason.  Configuration lives under ``[tool.repro-lint]`` in
``pyproject.toml``; run it as ``repro lint`` or ``python -m repro.lint``.
"""

from __future__ import annotations

from .baseline import Baseline
from .config import LintConfig, load_config
from .engine import LintEngine, LintReport, run_lint
from .findings import Finding, Severity
from .rules import ALL_RULES, rule_ids

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "Severity",
    "load_config",
    "rule_ids",
    "run_lint",
]
