"""Per-file analysis context shared by all rules during the single pass."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .config import LintConfig
from .findings import Finding, Severity

__all__ = ["FileContext"]


@dataclass
class FileContext:
    """Everything a rule may need about the file currently being walked."""

    path: Path
    relpath: str  #: POSIX path relative to the repository root.
    source: str
    lines: list[str]
    tree: ast.Module
    config: LintConfig
    #: Rule families whose configured scope covers this file.
    families: frozenset[str]
    #: Import alias map: local name -> dotted origin ("np" -> "numpy",
    #: "perf_counter" -> "time.perf_counter").  Collected from every
    #: ``import`` statement in the file before rules run.
    imports: dict[str, str] = field(default_factory=dict)
    #: Enclosing classes / functions of the node being visited (outermost
    #: first); maintained by the engine's walker.
    class_stack: list[ast.ClassDef] = field(default_factory=list)
    function_stack: list[ast.AST] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    # ------------------------------------------------------------------
    def report(
        self,
        rule: str,
        severity: Severity,
        node: ast.AST,
        message: str,
    ) -> None:
        """Record one finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        self.findings.append(
            Finding(
                rule=rule,
                severity=severity,
                path=self.relpath,
                line=line,
                column=column,
                message=message,
                snippet=snippet,
            )
        )

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def collect_imports(self) -> None:
        """Build the alias map from every import statement in the file."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    origin = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.imports[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str:
        """Dotted origin of a Name/Attribute expression, or ``""`` if unknown.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when the file imported ``numpy as np``; expressions rooted at local
        variables (``self.random``) resolve to ``""`` so rules keyed on
        module origins never fire on look-alike attributes.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return ""
        origin = self.imports.get(current.id)
        if origin is None:
            return ""
        parts.append(origin)
        return ".".join(reversed(parts))

    def call_name(self, call: ast.Call) -> str:
        """Resolved dotted name of a call's callee (``""`` when unknown)."""
        return self.resolve(call.func)
