"""Rule protocol: what the engine dispatches AST nodes to.

A rule declares the node types it wants (:attr:`Rule.interests`) and the
family whose configured path scope gates it.  The engine walks each file's
tree exactly once, calling :meth:`Rule.visit` for matching nodes of files
the rule is in scope for, bracketed by :meth:`Rule.begin_file` /
:meth:`Rule.end_file` for rules that accumulate per-file state.
"""

from __future__ import annotations

import ast

from ..context import FileContext
from ..findings import Severity

__all__ = ["Rule"]


class Rule:
    """Base class for one lint rule."""

    #: Short stable identifier, e.g. ``"DET001"`` (family prefix + number).
    id: str = ""
    #: Rule family key used for path scoping (see ``config.FAMILIES``).
    family: str = ""
    severity: Severity = Severity.ERROR
    #: One-line description shown by ``repro lint --list-rules``.
    description: str = ""
    #: AST node types dispatched to :meth:`visit`.
    interests: tuple[type[ast.AST], ...] = ()

    @classmethod
    def describe(cls, rule_id: str) -> str:
        """The ``--list-rules`` description for ``rule_id`` (rules reporting
        under several ids — see ``REPORTED_IDS`` — override this)."""
        return cls.description

    def begin_file(self, ctx: FileContext) -> None:
        """Called before the walk of each in-scope file."""

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Called for each node whose type is in :attr:`interests`."""

    def end_file(self, ctx: FileContext) -> None:
        """Called after the walk of each in-scope file."""

    # ------------------------------------------------------------------
    def report(self, ctx: FileContext, node: ast.AST, message: str) -> None:
        ctx.report(self.id, self.severity, node, message)
