"""Component-contract rules (``CON``).

The kernel's scheduling contracts are easy to half-implement: an
``event_driven`` component that never pushes a wake silently never runs
again once the poll fallback stops covering it; a ``fast_forward`` override
without a matching ``next_event`` breaks the "only skip promised cycles"
invariant; an unslotted value class silently grows a ``__dict__`` per cache
line / bus request and melts the allocation budget.  These rules encode the
contracts structurally.
"""

from __future__ import annotations

import ast

from ..context import FileContext
from .base import Rule

__all__ = ["EventDrivenWakeRule", "FastForwardHintRule", "SlottedValueClassRule"]

_WAKE_CALLS = frozenset({"schedule_wake", "_wake_schedule"})


def _class_methods(node: ast.ClassDef) -> dict[str, ast.AST]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _assigns_true(node: ast.ClassDef, name: str) -> ast.stmt | None:
    """The class-body statement assigning ``name = True``, if any."""
    for stmt in node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == name
                and isinstance(value, ast.Constant)
                and value.value is True
            ):
                return stmt
    return None


class EventDrivenWakeRule(Rule):
    id = "CON001"
    family = "contracts"
    description = (
        "a class declaring event_driven = True must push wakes "
        "(schedule_wake/_wake_schedule) somewhere in its body"
    )
    interests = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.ClassDef)
        marker = _assigns_true(node, "event_driven")
        if marker is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                func = sub.func
                name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
                if name in _WAKE_CALLS:
                    return
        self.report(
            ctx,
            marker,
            f"class {node.name} declares event_driven = True but never calls "
            f"schedule_wake/_wake_schedule: once off the poll fallback it "
            f"would sleep forever — push wakes at its state transitions (a "
            f"pure observer that genuinely never wakes may pragma this)",
        )


class FastForwardHintRule(Rule):
    id = "CON002"
    family = "contracts"
    description = (
        "a class overriding fast_forward must also define next_event — the "
        "kernel only skips cycles the hint promised were uniform"
    )
    interests = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.ClassDef)
        methods = _class_methods(node)
        if "fast_forward" in methods and "next_event" not in methods:
            self.report(
                ctx,
                methods["fast_forward"],
                f"class {node.name} overrides fast_forward() without defining "
                f"next_event(): the inherited hint ('wake me every cycle') "
                f"makes the override dead code at best and a skipped-state "
                f"bug at worst",
            )


def _dataclass_decorator(node: ast.ClassDef) -> tuple[ast.AST | None, bool]:
    """Return (decorator-node, slotted) for @dataclass classes, else (None, _)."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name != "dataclass":
            continue
        slotted = False
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    slotted = True
        return decorator, slotted
    return None, False


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


class SlottedValueClassRule(Rule):
    id = "CON003"
    family = "contracts"
    description = (
        "value classes (dataclasses in the configured value-class modules) "
        "must be slotted — they are allocated per access/request/window"
    )
    interests = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.ClassDef)
        if not ctx.config.is_value_class_module(ctx.relpath):
            return
        decorator, slotted = _dataclass_decorator(node)
        if decorator is None:
            return
        if slotted or _declares_slots(node):
            return
        self.report(
            ctx,
            node,
            f"value class {node.name} is a dataclass without slots; instances "
            f"are allocated in bulk on simulation paths — add "
            f"@dataclass(slots=True) (or declare __slots__)",
        )
