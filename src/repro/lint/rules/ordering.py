"""Hash/ordering-stability rules (``ORD``): canonical encodings only.

Content-hash job IDs, artifact-store CRCs and seeded draws are only stable
if the bytes (or the iteration order) feeding them are.  These rules catch
the two classic leaks: JSON encodings that depend on dict insertion order,
and iteration over inherently unordered collections (sets, directory
listings) whose order then flows into stores, hashes or draws.
"""

from __future__ import annotations

import ast

from ..context import FileContext
from .base import Rule

__all__ = ["JsonSortKeysRule", "UnorderedIterationRule", "FilesystemOrderRule"]


def _is_canonical_sorted_dict(arg: ast.AST) -> bool:
    """Recognise the canonical-encoder idiom: a dict comprehension (or dict
    call) whose keys iterate ``sorted(...)`` — e.g.
    ``{key: record[key] for key in sorted(record)}``."""
    if isinstance(arg, ast.DictComp):
        return any(
            isinstance(gen.iter, ast.Call)
            and isinstance(gen.iter.func, ast.Name)
            and gen.iter.func.id == "sorted"
            for gen in arg.generators
        )
    if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name):
        if arg.func.id in ("dict", "OrderedDict") and arg.args:
            return _is_canonical_sorted_dict(arg.args[0])
        if arg.func.id == "sorted":
            return True
    return False


class JsonSortKeysRule(Rule):
    id = "ORD001"
    family = "ordering"
    description = (
        "json.dumps/json.dump without sort_keys=True (or a sorted-dict "
        "argument) — insertion-ordered encodings are not canonical"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        name = ctx.call_name(node)
        if name not in ("json.dumps", "json.dump"):
            return
        for keyword in node.keywords:
            if keyword.arg == "sort_keys":
                if isinstance(keyword.value, ast.Constant) and keyword.value.value:
                    return
                break
        if node.args and _is_canonical_sorted_dict(node.args[0]):
            return
        self.report(
            ctx,
            node,
            f"{name}() without sort_keys=True: the encoding depends on dict "
            f"insertion order, which is not a canonical byte stream for "
            f"hashes, CRCs or stored records",
        )


def _unordered_source(node: ast.AST) -> str:
    """Classify an iteration source as unordered, returning a label or ''."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return "a set"
        if isinstance(func, ast.Attribute):
            # obj.union(...), obj.intersection(...), obj.difference(...)
            if func.attr in ("union", "intersection", "difference", "symmetric_difference"):
                return f"a set ({func.attr}())"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd)):
        left = _unordered_source(node.left)
        right = _unordered_source(node.right)
        if left or right:
            return "a set expression"
    return ""


class UnorderedIterationRule(Rule):
    id = "ORD002"
    family = "ordering"
    description = (
        "iteration directly over a set expression — wrap it in sorted() "
        "before the order can feed hashes, stores or draws"
    )
    interests = (ast.For, ast.comprehension)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        source = node.iter if isinstance(node, (ast.For, ast.comprehension)) else None
        if source is None:
            return
        label = _unordered_source(source)
        if label:
            self.report(
                ctx,
                node if isinstance(node, ast.For) else source,
                f"iterating {label} yields a hash-order-dependent sequence; "
                f"wrap the iterable in sorted(...) so downstream hashes, "
                f"stores and draws see a canonical order",
            )


_FS_LISTING = frozenset(
    {
        "os.listdir",
        "os.scandir",
        "glob.glob",
        "glob.iglob",
    }
)

_FS_METHODS = frozenset({"iterdir", "glob", "rglob"})


class FilesystemOrderRule(Rule):
    id = "ORD003"
    family = "ordering"
    description = (
        "iteration directly over a directory listing — filesystem order is "
        "arbitrary; wrap it in sorted()"
    )
    interests = (ast.For, ast.comprehension)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        source = node.iter if isinstance(node, (ast.For, ast.comprehension)) else None
        if not isinstance(source, ast.Call):
            return
        func = source.func
        listing = ctx.call_name(source) in _FS_LISTING or (
            isinstance(func, ast.Attribute) and func.attr in _FS_METHODS
        )
        if listing:
            self.report(
                ctx,
                node if isinstance(node, ast.For) else source,
                "directory listings come back in arbitrary filesystem order; "
                "wrap the call in sorted(...) before iterating",
            )
