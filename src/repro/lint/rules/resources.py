"""Fork/resource-safety rules (``RES``).

Campaign workers fork, crash (sometimes on purpose — the chaos harness) and
get killed on timeouts; resources that survive a dead process must therefore
be cleaned up on *every* path.  A leaked ``SharedMemory`` segment fills
``/dev/shm`` across campaign runs, an unreleased ``flock`` deadlocks the
next campaign, and a stray ``os._exit`` skips every ``finally`` in the
process — which is exactly why only the fault injector may call it.
"""

from __future__ import annotations

import ast

from ..context import FileContext
from .base import Rule

__all__ = ["SharedMemoryCleanupRule", "FlockPairRule", "OsExitRule"]


def _cleanup_profile(func: ast.AST) -> tuple[bool, bool, bool]:
    """Scan a function for (close_called, unlink_called, cleanup_on_error).

    ``cleanup_on_error`` is True when a ``.close()`` or ``.unlink()`` call
    sits inside a ``finally`` block or an ``except`` handler — the static
    approximation of "released on all paths, including failures".
    """
    close_called = unlink_called = cleanup_on_error = False

    def is_cleanup(node: ast.AST) -> str:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("close", "unlink")
        ):
            return node.func.attr
        return ""

    for node in ast.walk(func):
        kind = is_cleanup(node)
        if kind == "close":
            close_called = True
        elif kind == "unlink":
            unlink_called = True
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                for sub in ast.walk(handler):
                    if is_cleanup(sub):
                        cleanup_on_error = True
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if is_cleanup(sub):
                        cleanup_on_error = True
    return close_called, unlink_called, cleanup_on_error


class SharedMemoryCleanupRule(Rule):
    id = "RES001"
    family = "resources"
    description = (
        "every SharedMemory(...) must be close()d — and unlink()ed by its "
        "owner — on all paths, including failures (cleanup in finally/except)"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name != "SharedMemory":
            return
        enclosing = ctx.function_stack[-1] if ctx.function_stack else None
        if enclosing is None:
            self.report(
                ctx,
                node,
                "SharedMemory created at module level: nothing scopes its "
                "cleanup — create segments inside a function that closes and "
                "unlinks them on all paths",
            )
            return
        close_called, unlink_called, cleanup_on_error = _cleanup_profile(enclosing)
        problems: list[str] = []
        if not close_called:
            problems.append("never close()d")
        if not unlink_called:
            problems.append("never unlink()ed")
        if not cleanup_on_error:
            problems.append("no close()/unlink() in a finally/except (error paths leak)")
        if problems:
            self.report(
                ctx,
                node,
                f"SharedMemory segment {', '.join(problems)} in this function; "
                f"a leaked segment outlives the process and fills /dev/shm "
                f"across campaign runs",
            )


class FlockPairRule(Rule):
    id = "RES002"
    family = "resources"
    description = "a module taking fcntl.flock(LOCK_EX) must also release with LOCK_UN"
    interests = (ast.Call,)

    def begin_file(self, ctx: FileContext) -> None:
        self._acquires: list[ast.Call] = []
        self._releases = 0

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name != "flock":
            return
        flags = " ".join(ast.dump(arg) for arg in node.args[1:])
        if "LOCK_UN" in flags:
            self._releases += 1
        elif "LOCK_EX" in flags or "LOCK_SH" in flags:
            self._acquires.append(node)

    def end_file(self, ctx: FileContext) -> None:
        if self._acquires and not self._releases:
            for call in self._acquires:
                self.report(
                    ctx,
                    call,
                    "flock(LOCK_EX) acquired but this module never calls "
                    "flock(..., LOCK_UN); relying on process exit to release "
                    "deadlocks campaigns that share one interpreter",
                )
        self._acquires = []
        self._releases = 0


class OsExitRule(Rule):
    id = "RES003"
    family = "resources"
    description = (
        "os._exit skips every finally/atexit in the process; only the fault "
        "injector (configured os-exit-modules) may call it"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        if ctx.call_name(node) != "os._exit":
            return
        if ctx.config.allows_os_exit(ctx.relpath):
            return
        self.report(
            ctx,
            node,
            "os._exit() terminates without running finally blocks, flushing "
            "stores or releasing locks; deliberate crash semantics belong in "
            "the fault injector only",
        )
