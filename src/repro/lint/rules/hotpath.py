"""Hot-path discipline rules (``HOT``).

``tick``/``post_tick``/``fast_forward``/``next_event`` bodies run up to once
per simulated cycle across millions of cycles; the performance PRs hand-
removed every avoidable allocation and attribute re-lookup from them.  These
rules keep regressions out: no collection displays or comprehensions, no
string formatting, no lambdas/nested defs, and no repeated multi-hop
``self.a.b`` chains (bind them to a local once instead).

The rules fire only inside methods with those names, in the files the
``hotpath`` scope configures (the component files that define them).
"""

from __future__ import annotations

import ast

from ..context import FileContext
from .base import Rule

__all__ = ["HotPathRule"]

_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _iter_hot_body(func: ast.AST):
    """Yield nodes of a hot method body, skipping nested function bodies.

    Nested defs/lambdas are themselves reported (HOT003); what they contain
    runs only if they are called, which is already the problem.
    """
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _self_chain(node: ast.Attribute) -> str | None:
    """Dotted text of a ``self.a.b...`` chain of depth >= 2, else ``None``."""
    parts: list[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not (isinstance(current, ast.Name) and current.id == "self"):
        return None
    if len(parts) < 2:
        return None
    parts.append("self")
    return ".".join(reversed(parts))


class HotPathRule(Rule):
    """All four HOT checks in one body sub-walk (the bodies are tiny)."""

    id = "HOT"  # reports under the specific ids below
    family = "hotpath"
    description = "hot-path discipline inside tick/post_tick/fast_forward/next_event"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef)

    ALLOC_ID = "HOT001"
    FORMAT_ID = "HOT002"
    LAMBDA_ID = "HOT003"
    CHAIN_ID = "HOT004"

    #: The ids findings are reported under (for --list-rules and tests).
    REPORTED_IDS = (ALLOC_ID, FORMAT_ID, LAMBDA_ID, CHAIN_ID)

    _DESCRIPTIONS = {
        ALLOC_ID: "no collection displays/comprehensions in hot methods (per-cycle allocation)",
        FORMAT_ID: "no f-strings or str.format() in hot methods (per-cycle allocation)",
        LAMBDA_ID: "no lambdas or nested defs in hot methods (closure per call)",
        CHAIN_ID: "no repeated multi-hop self.a.b lookups in hot methods (bind a local once)",
    }

    @classmethod
    def describe(cls, rule_id: str) -> str:
        return cls._DESCRIPTIONS.get(rule_id, cls.description)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if node.name not in ctx.config.hot_methods:
            return
        if not ctx.class_stack:
            return  # only methods are hot paths
        attributes: list[ast.Attribute] = []
        inner_chain_ids: set[int] = set()
        call_func_ids: set[int] = set()
        for sub in _iter_hot_body(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                call_func_ids.add(id(sub.func))
            if isinstance(sub, _DISPLAYS):
                kind = type(sub).__name__
                ctx.report(
                    self.ALLOC_ID,
                    self.severity,
                    sub,
                    f"{kind} allocated inside hot method {node.name}(); this "
                    f"runs per cycle — preallocate it outside the hot path "
                    f"or restructure the state",
                )
            elif isinstance(sub, ast.JoinedStr):
                ctx.report(
                    self.FORMAT_ID,
                    self.severity,
                    sub,
                    f"f-string built inside hot method {node.name}(); "
                    f"formatting allocates every cycle — move it behind a "
                    f"guard outside the hot path",
                )
            elif isinstance(sub, ast.Call) and (
                isinstance(sub.func, ast.Attribute) and sub.func.attr == "format"
            ):
                ctx.report(
                    self.FORMAT_ID,
                    self.severity,
                    sub,
                    f"str.format() called inside hot method {node.name}(); "
                    f"formatting allocates every cycle",
                )
            elif isinstance(sub, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                ctx.report(
                    self.LAMBDA_ID,
                    self.severity,
                    sub,
                    f"function object created inside hot method {node.name}(); "
                    f"closures allocate per call — pre-bind it at "
                    f"registration time",
                )
            elif isinstance(sub, ast.Attribute):
                attributes.append(sub)
                if isinstance(sub.value, ast.Attribute):
                    inner_chain_ids.add(id(sub.value))
        # Count only *maximal* chains: `self.a.b.c` must not also count its
        # `self.a.b` prefix, or one duplicate would report twice.  For method
        # calls the chain is the *object* being re-looked-up — `self.bus
        # .arbiter.step()` and `self.bus.arbiter.account()` both re-walk
        # `self.bus.arbiter`, so the method name is stripped before counting.
        chains: dict[str, list[ast.Attribute]] = {}
        for attribute in attributes:
            if id(attribute) in inner_chain_ids:
                continue
            target: ast.AST = attribute
            if id(attribute) in call_func_ids:
                target = attribute.value
                if not isinstance(target, ast.Attribute):
                    continue
            chain = _self_chain(target)
            if chain is not None:
                chains.setdefault(chain, []).append(target)
        for chain, sites in sorted(chains.items()):
            if len(sites) < 2:
                continue
            second = sorted(sites, key=lambda n: (n.lineno, n.col_offset))[1]
            ctx.report(
                self.CHAIN_ID,
                self.severity,
                second,
                f"attribute chain {chain} looked up {len(sites)} times in hot "
                f"method {node.name}(); bind it to a local once "
                f"(e.g. `x = {chain}`) and reuse that",
            )
