"""Determinism rules (``DET``): seeded randomness and nothing else.

The repository's entire equivalence matrix (serial == pool campaigns,
stepping == fast-forward == batch == event-queue kernels) rests on every
draw flowing through :class:`~repro.sim.rng.RandomStreams` /
:func:`~repro.sim.rng.derive_seed` and every content key through blake2b.
These rules ban the ambient entropy sources that silently break that:
wall-clock reads, OS randomness, the global :mod:`random` state, unseeded
numpy generators and the per-process-salted builtin ``hash()``.
"""

from __future__ import annotations

import ast

from ..context import FileContext
from .base import Rule

__all__ = [
    "WallClockRule",
    "OsEntropyRule",
    "GlobalRandomRule",
    "GlobalNumpyRandomRule",
    "BuiltinHashRule",
]

#: Functions that read a clock.  ``time.sleep`` is deliberately absent —
#: sleeping affects wall time, not simulated state.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_OS_ENTROPY = frozenset({"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4"})

#: numpy.random constructors that are fine *when explicitly seeded*.
_NP_SEEDED_OK = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)


class WallClockRule(Rule):
    id = "DET001"
    family = "determinism"
    description = (
        "no wall-clock reads in simulation/campaign code — timestamps leak "
        "host state into results; use cycle counts, or pragma pure telemetry"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        name = ctx.call_name(node)
        if name in _WALL_CLOCK:
            self.report(
                ctx,
                node,
                f"wall-clock read {name}() in deterministic code; simulated "
                f"time lives in Clock.cycle — if this is pure telemetry, "
                f"justify it with a repro-lint pragma",
            )


class OsEntropyRule(Rule):
    id = "DET002"
    family = "determinism"
    description = "no OS entropy (os.urandom, uuid1/uuid4) — seeds must derive from the experiment seed"
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        name = ctx.call_name(node)
        if name in _OS_ENTROPY or name.startswith("secrets."):
            self.report(
                ctx,
                node,
                f"OS entropy source {name}(); derive randomness from the "
                f"experiment seed via RandomStreams/derive_seed",
            )


class GlobalRandomRule(Rule):
    id = "DET003"
    family = "determinism"
    description = "no global `random` module — its hidden state breaks run independence"
    interests = (ast.Import, ast.ImportFrom, ast.Call)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    self.report(
                        ctx,
                        node,
                        "stdlib `random` imported; use RandomStreams named "
                        "streams so draws are seeded and per-run independent",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "random":
                self.report(
                    ctx,
                    node,
                    "stdlib `random` imported; use RandomStreams named "
                    "streams so draws are seeded and per-run independent",
                )
        else:
            assert isinstance(node, ast.Call)
            name = ctx.call_name(node)
            if name.startswith("random.") and not name.startswith("random.Random("):
                self.report(
                    ctx,
                    node,
                    f"global-state draw {name}(); route it through a "
                    f"RandomStreams named stream",
                )


class GlobalNumpyRandomRule(Rule):
    id = "DET004"
    family = "determinism"
    description = (
        "no global/unseeded numpy.random — generators must be built from a "
        "derive_seed child seed"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        name = ctx.call_name(node)
        if not name.startswith("numpy.random."):
            return
        if name in _NP_SEEDED_OK:
            if node.args or node.keywords:
                return  # explicitly seeded: fine
            self.report(
                ctx,
                node,
                f"{name}() without a seed draws entropy from the OS; pass a "
                f"derive_seed(...) child seed",
            )
            return
        self.report(
            ctx,
            node,
            f"{name}() uses numpy's global RNG state; draw from a seeded "
            f"Generator obtained via RandomStreams",
        )


class BuiltinHashRule(Rule):
    id = "DET005"
    family = "determinism"
    description = (
        "no builtin hash() — it is salted per process; content keys go "
        "through hashlib.blake2b / derive_seed"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "hash"
            and func.id not in ctx.imports
        ):
            self.report(
                ctx,
                node,
                "builtin hash() is salted per process (PYTHONHASHSEED); use "
                "hashlib.blake2b for content keys or derive_seed for seeds",
            )
