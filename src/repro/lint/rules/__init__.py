"""Rule registry: every rule family, instantiable in one call.

Adding a rule = subclass :class:`~repro.lint.rules.base.Rule` in the family
module, give it a unique ``id`` (family prefix + number) and ``family``, and
list the class here.  The engine, pragma matching, reports and baseline all
pick it up from this registry.
"""

from __future__ import annotations

from .base import Rule
from .contracts import EventDrivenWakeRule, FastForwardHintRule, SlottedValueClassRule
from .determinism import (
    BuiltinHashRule,
    GlobalNumpyRandomRule,
    GlobalRandomRule,
    OsEntropyRule,
    WallClockRule,
)
from .hotpath import HotPathRule
from .ordering import FilesystemOrderRule, JsonSortKeysRule, UnorderedIterationRule
from .resources import FlockPairRule, OsExitRule, SharedMemoryCleanupRule

__all__ = ["ALL_RULES", "Rule", "make_rules", "rule_ids"]

#: Every registered rule class, in report order.
ALL_RULES: tuple[type[Rule], ...] = (
    WallClockRule,
    OsEntropyRule,
    GlobalRandomRule,
    GlobalNumpyRandomRule,
    BuiltinHashRule,
    JsonSortKeysRule,
    UnorderedIterationRule,
    FilesystemOrderRule,
    HotPathRule,
    EventDrivenWakeRule,
    FastForwardHintRule,
    SlottedValueClassRule,
    SharedMemoryCleanupRule,
    FlockPairRule,
    OsExitRule,
)


def make_rules() -> list[Rule]:
    """Fresh rule instances for one engine run."""
    return [rule_class() for rule_class in ALL_RULES]


def rule_ids() -> tuple[str, ...]:
    """Every id findings can be reported under (HOT expands to its four)."""
    ids: list[str] = []
    for rule_class in ALL_RULES:
        if rule_class is HotPathRule:
            ids.extend(
                (
                    HotPathRule.ALLOC_ID,
                    HotPathRule.FORMAT_ID,
                    HotPathRule.LAMBDA_ID,
                    HotPathRule.CHAIN_ID,
                )
            )
        else:
            ids.append(rule_class.id)
    return tuple(ids)
