"""Bus transaction descriptors.

A :class:`BusRequest` describes one transfer a master (a core's cache
interface) wants to perform over the shared bus.  Because the modelled bus is
*non-split* (as in the paper's AMBA AHB configuration), a request occupies the
bus from the cycle it is granted until its full turnaround completes; the
duration is recorded on the request when the slave resolves it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["AccessType", "BusRequest"]

_request_ids = itertools.count()


class AccessType(str, Enum):
    """Kind of memory operation carried by a bus request."""

    READ = "read"
    WRITE = "write"
    ATOMIC = "atomic"

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE

    @property
    def is_atomic(self) -> bool:
        return self is AccessType.ATOMIC


@dataclass(slots=True)
class BusRequest:
    """One bus transaction from request to completion.

    Lifecycle timestamps are filled in as the request progresses:
    ``issue_cycle`` when the master asserts its request line, ``grant_cycle``
    when the arbiter grants the bus, ``complete_cycle`` when the (non-split)
    transaction releases the bus.  One of these is allocated per memory
    access of every core, hence ``slots=True``; ad-hoc data belongs in
    :attr:`annotations`, not in new attributes.
    """

    master_id: int
    address: int
    access: AccessType = AccessType.READ
    issue_cycle: int = 0
    #: Unique, monotonically increasing identifier (useful for tracing/tests).
    request_id: int = field(default_factory=lambda: next(_request_ids))
    grant_cycle: int | None = None
    complete_cycle: int | None = None
    #: Number of cycles the bus is held, resolved by the slave at grant time.
    duration: int | None = None
    #: Free-form annotations added by the memory hierarchy (hit/miss, dirty
    #: eviction, ...), used by statistics and tests.
    annotations: dict[str, object] = field(default_factory=dict)

    @property
    def granted(self) -> bool:
        return self.grant_cycle is not None

    @property
    def completed(self) -> bool:
        return self.complete_cycle is not None

    @property
    def wait_cycles(self) -> int:
        """Cycles spent waiting for the bus grant (0 if not granted yet)."""
        if self.grant_cycle is None:
            return 0
        return self.grant_cycle - self.issue_cycle

    @property
    def total_latency(self) -> int:
        """Cycles from issue to completion (0 if not completed yet)."""
        if self.complete_cycle is None:
            return 0
        return self.complete_cycle - self.issue_cycle

    def annotate(self, **kwargs: object) -> "BusRequest":
        """Attach annotations and return ``self`` for chaining."""
        self.annotations.update(kwargs)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BusRequest(id={self.request_id}, master={self.master_id}, "
            f"addr=0x{self.address:x}, access={self.access.value}, "
            f"issue={self.issue_cycle}, grant={self.grant_cycle}, "
            f"complete={self.complete_cycle}, duration={self.duration})"
        )
