"""Bus monitor.

A passive observer that samples the bus every cycle and keeps per-master
occupancy and waiting statistics beyond what the bus itself accumulates.
Experiments attach a monitor when they need windowed bandwidth shares (e.g.
to show how CBA converges to a fair share over time) without burdening the
bus model itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.component import Component
from .bus import SharedBus

__all__ = ["BandwidthWindow", "BusMonitor"]


@dataclass(frozen=True, slots=True)
class BandwidthWindow:
    """Bandwidth accounting over one fixed-length window of cycles."""

    start_cycle: int
    end_cycle: int
    busy_cycles_per_master: tuple[int, ...]
    idle_cycles: int

    @property
    def length(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def shares(self) -> tuple[float, ...]:
        """Per-master share of the window's *busy* cycles (0s if bus idle)."""
        busy = sum(self.busy_cycles_per_master)
        if not busy:
            return tuple(0.0 for _ in self.busy_cycles_per_master)
        return tuple(c / busy for c in self.busy_cycles_per_master)

    @property
    def utilization(self) -> float:
        if not self.length:
            return 0.0
        return sum(self.busy_cycles_per_master) / self.length


class BusMonitor(Component):
    """Samples bus occupancy every cycle and aggregates it into windows."""

    #: Event-queue protocol: the monitor is a pure observer and never pushes
    #: a wake at all — the absence of a heap entry is exactly its permanent
    #: ``next_event`` answer of ``None``.  Declaring it event-driven removes
    #: it from the kernel's poll fallback.
    event_driven = True  # repro-lint: allow[CON001]

    def __init__(self, name: str, bus: SharedBus, window_cycles: int = 1000) -> None:
        super().__init__(name)
        if window_cycles <= 0:
            raise ValueError("window length must be positive")
        self.bus = bus
        self.window_cycles = window_cycles
        self.windows: list[BandwidthWindow] = []
        self._window_start = 0
        self._busy = [0] * bus.num_masters
        self._idle = 0
        self.total_busy_per_master = [0] * bus.num_masters
        self.total_cycles_observed = 0

    def tick(self) -> None:
        holder = self.bus.holder
        if holder is None:
            self._idle += 1
        else:
            self._busy[holder] += 1
            self.total_busy_per_master[holder] += 1
        self.total_cycles_observed += 1
        boundary = self.now + 1
        if boundary - self._window_start >= self.window_cycles:
            self._close_window(boundary)

    # ------------------------------------------------------------------
    # Fast-forward support
    # ------------------------------------------------------------------
    def next_event(self, now: int) -> int | None:
        """The monitor is a pure observer: it never forces a wake-up.

        Window boundaries crossed inside a jump are reproduced exactly by
        :meth:`fast_forward`, so no hint is needed for them either.
        """
        return None

    def fast_forward(self, cycles: int) -> None:
        """Sample ``cycles`` skipped cycles of constant bus occupancy in bulk,
        closing windows at the exact boundaries plain stepping would have."""
        holder = self.bus.holder
        cursor = self.now
        end = cursor + cycles
        while cursor < end:
            window_end = self._window_start + self.window_cycles
            chunk_end = window_end if window_end < end else end
            span = chunk_end - cursor
            if holder is None:
                self._idle += span
            else:
                self._busy[holder] += span
                self.total_busy_per_master[holder] += span
            self.total_cycles_observed += span
            if chunk_end == window_end:
                self._close_window(window_end)
            cursor = chunk_end

    def _close_window(self, end_cycle: int) -> None:
        window = BandwidthWindow(
            start_cycle=self._window_start,
            end_cycle=end_cycle,
            busy_cycles_per_master=tuple(self._busy),
            idle_cycles=self._idle,
        )
        self.windows.append(window)
        trace = self.kernel.trace
        if trace.enabled:
            trace.record(
                end_cycle,
                self.name,
                "bus.window",
                start=window.start_cycle,
                busy=sum(window.busy_cycles_per_master),
                idle=window.idle_cycles,
                utilization=round(window.utilization, 6),
            )
        self._window_start = end_cycle
        self._busy = [0] * self.bus.num_masters
        self._idle = 0

    def overall_shares(self) -> list[float]:
        """Per-master share of all observed busy cycles."""
        busy = sum(self.total_busy_per_master)
        if not busy:
            return [0.0] * self.bus.num_masters
        return [c / busy for c in self.total_busy_per_master]

    def reset(self) -> None:
        self.windows.clear()
        self._window_start = 0
        self._busy = [0] * self.bus.num_masters
        self._idle = 0
        self.total_busy_per_master = [0] * self.bus.num_masters
        self.total_cycles_observed = 0
