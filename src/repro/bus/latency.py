"""Latency classification of bus transactions.

The paper's platform has a small set of transaction classes with fixed bus
hold times (Section IV-A): an L2 read hit takes 5 cycles, a memory access
28 cycles and the longest transactions (dirty-line eviction plus fetch, or an
atomic read+write) take two memory accesses, 56 cycles, which defines
``MaxL``.  :class:`LatencyTable` centralises that mapping so the bus, the
arbiters and the analytical bounds all agree on transaction durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..sim.config import BusTimings

__all__ = ["TransactionClass", "LatencyTable"]


class TransactionClass(str, Enum):
    """Coarse classification of a bus transaction by its timing behaviour."""

    L2_HIT_READ = "l2_hit_read"
    L2_HIT_WRITE = "l2_hit_write"
    L2_MISS_CLEAN = "l2_miss_clean"
    L2_MISS_DIRTY = "l2_miss_dirty"
    ATOMIC = "atomic"


@dataclass(frozen=True)
class LatencyTable:
    """Maps :class:`TransactionClass` to bus hold cycles."""

    timings: BusTimings = BusTimings()

    def duration(self, kind: TransactionClass) -> int:
        """Bus hold time in cycles for a transaction of class ``kind``."""
        timings = self.timings
        if kind is TransactionClass.L2_HIT_READ:
            return timings.l2_hit_read + timings.bus_overhead
        if kind is TransactionClass.L2_HIT_WRITE:
            return timings.l2_hit_write + timings.bus_overhead
        if kind is TransactionClass.L2_MISS_CLEAN:
            return timings.l2_miss_clean()
        if kind is TransactionClass.L2_MISS_DIRTY:
            return timings.l2_miss_dirty()
        if kind is TransactionClass.ATOMIC:
            return timings.atomic()
        raise ValueError(f"unknown transaction class: {kind!r}")

    @property
    def max_latency(self) -> int:
        """The paper's ``MaxL``: the longest bus hold time of any class."""
        return max(self.duration(kind) for kind in TransactionClass)

    @property
    def min_latency(self) -> int:
        """The shortest bus hold time of any class."""
        return min(self.duration(kind) for kind in TransactionClass)

    def as_dict(self) -> dict[str, int]:
        """All class durations as a plain dictionary (for reports/tests)."""
        return {kind.value: self.duration(kind) for kind in TransactionClass}
