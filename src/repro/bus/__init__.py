"""Non-split shared bus model.

Contains the transaction descriptors, the latency table derived from the
paper's platform timings, the master/slave port protocols, the cycle-accurate
:class:`~repro.bus.bus.SharedBus` and a passive :class:`~repro.bus.monitor.BusMonitor`.
"""

from .bus import SharedBus
from .latency import LatencyTable, TransactionClass
from .monitor import BandwidthWindow, BusMonitor
from .ports import BusMasterPort, BusSlavePort, CallbackMaster, FixedLatencySlave
from .transaction import AccessType, BusRequest

__all__ = [
    "SharedBus",
    "LatencyTable",
    "TransactionClass",
    "BusMonitor",
    "BandwidthWindow",
    "BusMasterPort",
    "BusSlavePort",
    "CallbackMaster",
    "FixedLatencySlave",
    "AccessType",
    "BusRequest",
]
