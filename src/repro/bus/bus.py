"""The shared non-split bus.

:class:`SharedBus` models the AMBA AHB-style bus of the paper's platform:

* one outstanding request per master (the cores are in-order and blocking);
* non-split transactions — the granted master holds the bus for the whole
  turnaround of its request (L2 access, and memory access(es) on a miss);
* single-cycle arbitration — when the bus is idle, the arbiter picks among
  the masters with a pending request and the winner starts in that cycle.

The bus drives the arbiter through the hooks defined by
:class:`repro.arbiters.Arbiter`, which is also how the credit-based
arbitration of the paper plugs in (it *is* an arbiter wrapping another one).
"""

from __future__ import annotations

from ..arbiters.base import Arbiter
from ..sim.component import Component
from ..sim.errors import ProtocolError
from ..sim.stats import StatGroup
from .ports import BusMasterPort, BusSlavePort
from .transaction import BusRequest

__all__ = ["SharedBus"]


class SharedBus(Component):
    """Cycle-accurate model of a non-split shared bus."""

    #: The bus pushes its wake into the kernel's event queue at the end of
    #: every tick: the release cycle while a transaction holds the bus, the
    #: arbiter's next grant opportunity while idle with pending requests
    #: (TDMA slot boundaries, CBA credit-replenish targets), nothing while
    #: idle and empty (only a master's submission — an executed tick by
    #: construction — can change anything).  Re-assertions of an unchanged
    #: wake are deduplicated by the queue, so the steady state costs no heap
    #: churn.
    event_driven = True

    def __init__(
        self,
        name: str,
        num_masters: int,
        arbiter: Arbiter,
        slave: BusSlavePort,
        max_latency: int = 56,
    ) -> None:
        """Create the bus.

        Parameters
        ----------
        num_masters:
            Number of master ports (one per core).
        arbiter:
            The arbitration policy (possibly wrapped by CBA).
        slave:
            The slave side (L2 + memory controller) that resolves transaction
            durations.
        max_latency:
            Upper bound on any transaction duration (the paper's ``MaxL``);
            the bus enforces that the slave never exceeds it.
        """
        super().__init__(name)
        if arbiter.num_masters != num_masters:
            raise ProtocolError(
                f"arbiter handles {arbiter.num_masters} masters, bus has {num_masters}"
            )
        if max_latency <= 0:
            raise ProtocolError("max_latency must be positive")
        self.num_masters = num_masters
        self.arbiter = arbiter
        self.slave = slave
        self.max_latency = max_latency
        self._masters: list[BusMasterPort | None] = [None] * num_masters
        self._pending: list[BusRequest | None] = [None] * num_masters
        self._num_pending = 0
        self._holder: int | None = None
        self._active_request: BusRequest | None = None
        self._release_cycle = 0
        #: Wake currently pushed into the kernel's event queue (``None`` when
        #: nothing is scheduled).  Caching it locally keeps the steady state
        #: — re-asserting the same release cycle every tick of a long
        #: transaction — a single comparison instead of a call into the
        #: kernel's dedup.
        self._wake_target: int | None = None
        self.stats = StatGroup(name=f"{name}.stats")
        # The per-cycle and per-transaction paths below run millions of times
        # per campaign; bind the counters/histograms once instead of paying a
        # string-keyed dict lookup (and f-string formatting for the per-master
        # families) on every access.
        stats = self.stats
        self._c_submitted = stats.counter("requests_submitted")
        self._c_completed = stats.counter("requests_completed")
        self._c_grants = stats.counter("grants")
        self._c_cycles_total = stats.counter("cycles_total")
        self._c_cycles_busy = stats.counter("cycles_busy")
        self._c_cycles_idle_pending = stats.counter("cycles_idle_with_pending")
        self._c_cycles_idle = stats.counter("cycles_idle")
        self._c_grants_master = [
            stats.counter(f"grants_master_{m}") for m in range(num_masters)
        ]
        self._c_cycles_master = [
            stats.counter(f"cycles_master_{m}") for m in range(num_masters)
        ]
        self._h_total_latency = stats.histogram("total_latency")
        self._h_wait_cycles = stats.histogram("wait_cycles")
        self._h_grant_duration = stats.histogram("grant_duration")
        # Skip the per-cycle arbiter callback entirely for policies that keep
        # the base class's no-op (everything except CBA).
        self._arbiter_is_stateful = type(arbiter).cycle_update is not Arbiter.cycle_update

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect_master(self, master_id: int, port: BusMasterPort) -> None:
        """Attach the master port for ``master_id`` (called by the platform builder)."""
        if not 0 <= master_id < self.num_masters:
            raise ProtocolError(f"master id {master_id} out of range")
        self._masters[master_id] = port

    # ------------------------------------------------------------------
    # Master-side API
    # ------------------------------------------------------------------
    def submit(self, request: BusRequest) -> None:
        """Assert the request line of ``request.master_id``.

        Masters are blocking: submitting while a previous request from the
        same master is still pending or in flight is a protocol violation.
        """
        master = request.master_id
        if not 0 <= master < self.num_masters:
            raise ProtocolError(f"request from unknown master {master}")
        if self._pending[master] is not None or self._holder == master:
            raise ProtocolError(
                f"master {master} already has an outstanding bus request"
            )
        self._pending[master] = request
        self._num_pending += 1
        self.arbiter.on_request(master, request.issue_cycle)
        self._c_submitted.value += 1
        trace = self.kernel.trace
        if trace.enabled:
            trace.record(
                self.now,
                self.name,
                "bus.request",
                master=master,
                request_id=request.request_id,
                pending=self._num_pending,
            )

    def has_pending(self, master_id: int) -> bool:
        """True when ``master_id`` has a request waiting for the bus."""
        return self._pending[master_id] is not None

    @property
    def busy(self) -> bool:
        """True while a transaction holds the bus."""
        return self._holder is not None

    @property
    def holder(self) -> int | None:
        """Master currently holding the bus, or ``None``."""
        return self._holder

    @property
    def pending_masters(self) -> list[int]:
        """Masters with a request waiting to be granted."""
        return [m for m in range(self.num_masters) if self._pending[m] is not None]

    # ------------------------------------------------------------------
    # Per-cycle behaviour
    # ------------------------------------------------------------------
    def tick(self) -> None:
        cycle = self.now
        self._complete_if_done(cycle)
        if self._holder is None:
            self._arbitrate_and_grant(cycle)
        self._update_occupancy_stats()
        if self._arbiter_is_stateful:
            # The arbiter sees the holder of *this* cycle (including a
            # transaction granted this very cycle), which is what drives CBA
            # budget draining.
            self.arbiter.cycle_update(cycle, self._holder)
        if self._wake_push:
            # After the whole cycle's bus activity (and the arbiter's budget
            # update) is in: push the wake the hint scan would compute when
            # polled for cycle + 1.  The steady states — holding with the
            # release cycle already pushed, idle-empty with nothing pushed —
            # skip the call entirely.
            if self._holder is not None:
                if self._wake_target != self._release_cycle:
                    self._reschedule_wake(cycle + 1)
            elif self._num_pending or self._wake_target is not None:
                self._reschedule_wake(cycle + 1)

    def _reschedule_wake(self, next_cycle: int) -> None:
        """Event-queue push mirroring :meth:`next_event` at ``next_cycle``."""
        if self._holder is not None:
            wake = self._release_cycle
        elif self._num_pending:
            wake = self.arbiter.next_grant_opportunity(
                self.pending_masters, next_cycle
            )
        else:
            wake = None
        if wake == self._wake_target:
            return
        self._wake_target = wake
        if wake is None:
            self._wake_cancel(self._wake_slot)
        else:
            self._wake_schedule(self._wake_slot, wake)

    def _complete_if_done(self, cycle: int) -> None:
        if self._holder is None or self._active_request is None:
            return
        if cycle < self._release_cycle:
            return
        request = self._active_request
        holder = self._holder
        request.complete_cycle = cycle
        self._holder = None
        self._active_request = None
        self._c_completed.value += 1
        self._h_total_latency.add(request.total_latency)
        self._h_wait_cycles.add(request.wait_cycles)
        trace = self.kernel.trace
        if trace.enabled:
            trace.record(
                cycle,
                self.name,
                "bus.complete",
                master=holder,
                request_id=request.request_id,
                duration=request.duration,
                wait=request.wait_cycles,
            )
        port = self._masters[holder]
        if port is not None:
            port.on_complete(request, cycle)

    def _arbitrate_and_grant(self, cycle: int) -> None:
        requestors = self.pending_masters
        if not requestors:
            return
        choice = self.arbiter.arbitrate(requestors, cycle)
        if choice is None:
            return
        request = self._pending[choice]
        if request is None:  # pragma: no cover - guarded by arbiter validation
            raise ProtocolError(f"arbiter granted master {choice} with no pending request")
        duration = self.slave.resolve(request, cycle)
        if not 1 <= duration <= self.max_latency:
            raise ProtocolError(
                f"slave returned duration {duration} outside [1, {self.max_latency}]"
            )
        request.grant_cycle = cycle
        request.duration = duration
        self._pending[choice] = None
        self._num_pending -= 1
        self._holder = choice
        self._active_request = request
        self._release_cycle = cycle + duration
        self.arbiter.on_grant(choice, duration, cycle)
        self._c_grants.value += 1
        self._c_grants_master[choice].value += 1
        self._c_cycles_master[choice].value += duration
        self._h_grant_duration.add(duration)
        trace = self.kernel.trace
        if trace.enabled:
            trace.record(
                cycle,
                self.name,
                "bus.grant",
                master=choice,
                request_id=request.request_id,
                duration=duration,
            )
        port = self._masters[choice]
        if port is not None:
            port.on_grant(request, cycle)

    def _update_occupancy_stats(self) -> None:
        self._c_cycles_total.value += 1
        if self._holder is not None:
            self._c_cycles_busy.value += 1
        elif self._num_pending:
            # Idle although someone wants the bus: either the arbiter withheld
            # the grant (TDMA outside a slot, CBA budget not replenished) or
            # no eligible requestor existed this cycle.
            self._c_cycles_idle_pending.value += 1
        else:
            self._c_cycles_idle.value += 1

    # ------------------------------------------------------------------
    # Fast-forward support
    # ------------------------------------------------------------------
    def next_event(self, now: int) -> int | None:
        """Wake hint: completion of the transaction in flight, or the
        arbiter's next chance to grant a waiting request.

        While a transaction holds the (non-split) bus nothing can happen
        until its release cycle; while idle with pending requests the arbiter
        bounds the next grant (TDMA slot boundaries, CBA budget refills);
        while idle and empty only a master's submission — a core-side event
        covered by the cores' own hints — can change anything.
        """
        if self._holder is not None:
            return self._release_cycle
        if not self._num_pending:
            return None
        return self.arbiter.next_grant_opportunity(self.pending_masters, now)

    def fast_forward(self, cycles: int) -> None:
        """Bulk-account ``cycles`` skipped cycles of constant bus state."""
        self._c_cycles_total.value += cycles
        holder = self._holder
        # One allocation per fast-forward jump (thousands of cycles), not per
        # tick — the empty-list default keeps the common holder branch cheap.
        # repro-lint: allow[HOT001]
        requestors: list[int] = []
        if holder is not None:
            self._c_cycles_busy.value += cycles
        elif self._num_pending:
            self._c_cycles_idle_pending.value += cycles
            requestors = self.pending_masters
        else:
            self._c_cycles_idle.value += cycles
        self.arbiter.advance_cycles(self.now, cycles, holder, requestors)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of cycles the bus was held by some master."""
        total = self.stats.counter("cycles_total").value
        if not total:
            return 0.0
        return self.stats.counter("cycles_busy").value / total

    def cycles_granted(self, master_id: int) -> int:
        """Total bus-hold cycles granted to ``master_id`` so far."""
        return self.stats.counter(f"cycles_master_{master_id}").value

    def grants(self, master_id: int) -> int:
        """Total number of grants given to ``master_id`` so far."""
        return self.stats.counter(f"grants_master_{master_id}").value

    def bandwidth_shares(self) -> list[float]:
        """Per-master share of all granted bus cycles (sums to 1 when any)."""
        cycles = [self.cycles_granted(m) for m in range(self.num_masters)]
        total = sum(cycles)
        if not total:
            return [0.0] * self.num_masters
        return [c / total for c in cycles]

    def reset(self) -> None:
        self._pending = [None] * self.num_masters
        self._num_pending = 0
        self._holder = None
        self._active_request = None
        self._release_cycle = 0
        self._wake_target = None
        self.stats.reset()
        self.arbiter.reset()
