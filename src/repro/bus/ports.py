"""Master and slave port interfaces of the shared bus.

The bus talks to two kinds of peers:

* **masters** (one per core) which assert a request and are notified when the
  transaction completes — :class:`BusMasterPort`;
* a **slave** (the L2 + memory controller side) which resolves how long a
  granted transaction holds the bus — :class:`BusSlavePort`.

Both are defined as :class:`typing.Protocol` so any object implementing the
methods can be plugged in (the real cache hierarchy, or the lightweight stubs
used in unit tests and the analytical experiments).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .transaction import BusRequest

__all__ = ["BusMasterPort", "BusSlavePort", "CallbackMaster", "FixedLatencySlave"]


@runtime_checkable
class BusMasterPort(Protocol):
    """What the bus expects from a master (a core-side bus interface)."""

    def on_grant(self, request: BusRequest, cycle: int) -> None:
        """Called the cycle the request is granted the bus."""

    def on_complete(self, request: BusRequest, cycle: int) -> None:
        """Called the cycle the request releases the bus (data returned)."""


@runtime_checkable
class BusSlavePort(Protocol):
    """What the bus expects from the slave side (L2 + memory)."""

    def resolve(self, request: BusRequest, cycle: int) -> int:
        """Serve ``request`` and return the number of cycles the bus is held.

        The returned duration must be at least 1 and at most the platform's
        ``MaxL``; the bus enforces this invariant.
        """


class CallbackMaster:
    """A minimal master port forwarding notifications to plain callables.

    Useful in tests and in the analytical experiments where there is no full
    cache hierarchy behind the master.
    """

    def __init__(self, on_grant=None, on_complete=None) -> None:
        self._on_grant = on_grant
        self._on_complete = on_complete

    def on_grant(self, request: BusRequest, cycle: int) -> None:
        if self._on_grant is not None:
            self._on_grant(request, cycle)

    def on_complete(self, request: BusRequest, cycle: int) -> None:
        if self._on_complete is not None:
            self._on_complete(request, cycle)


class FixedLatencySlave:
    """A slave that serves every request in a fixed number of cycles.

    This models the "streaming contender" abstraction used in the paper's
    illustrative example (Section II), where every contender request takes the
    memory latency, and is handy for unit-testing arbiters in isolation.
    """

    def __init__(self, latency: int) -> None:
        if latency <= 0:
            raise ValueError("fixed slave latency must be positive")
        self.latency = latency
        self.requests_served = 0

    def resolve(self, request: BusRequest, cycle: int) -> int:
        self.requests_served += 1
        request.annotate(slave="fixed", latency=self.latency)
        return self.latency
