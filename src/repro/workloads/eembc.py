"""Synthetic EEMBC Autobench-like workloads.

The paper evaluates CBA with the EEMBC Autobench suite on the FPGA prototype
(Figure 1 reports ``cacheb``, ``canrdr``, ``matrix`` and ``tblook``).  The
binaries themselves are proprietary, so — following the substitution rule in
DESIGN.md — each benchmark is modelled as a :class:`~repro.workloads.base.WorkloadSpec`
whose parameters reflect the published characterisation of the suite (Poovey,
*Characterization of the EEMBC Benchmark Suite*, 2007) at the level of detail
the bus observes: memory-access intensity, working-set size, locality pattern
and write share.

What matters for reproducing Figure 1's *shape* is the relative ordering:

* ``matrix`` is the most memory-intensive of the four (largest slowdown under
  request-fair arbitration, 3.34x in the paper);
* ``cacheb`` stresses the cache with a working set larger than the L1;
* ``canrdr`` is control-dominated with a small working set (low bus demand);
* ``tblook`` performs pointer-chasing table lookups — cache-sensitive, and
  its requests rarely occur back-to-back (the property the paper uses to
  explain its behaviour under CBA in isolation).

The remaining Autobench kernels are provided as well so the suite can be run
in full; their parameters follow the same characterisation source.
"""

from __future__ import annotations

import numpy as np

from ..cpu.trace import WorkloadTrace
from ..sim.errors import WorkloadError
from .base import AddressPattern, WorkloadSpec

__all__ = [
    "EEMBC_AUTOBENCH",
    "FIGURE1_BENCHMARKS",
    "eembc_workload",
    "eembc_trace",
    "available_benchmarks",
]


def _spec(name: str, **kwargs: object) -> WorkloadSpec:
    defaults = dict(
        base_address=0x2000_0000,
        tags=("eembc", "autobench"),
    )
    defaults.update(kwargs)
    return WorkloadSpec(name=name, description=str(defaults.pop("description", "")), **defaults)


#: The four benchmarks shown in Figure 1 of the paper.
FIGURE1_BENCHMARKS: tuple[str, ...] = ("cacheb", "canrdr", "matrix", "tblook")


EEMBC_AUTOBENCH: dict[str, WorkloadSpec] = {
    # --- The Figure 1 four -------------------------------------------------
    "cacheb": _spec(
        "cacheb",
        description="cache buster: working set exceeding the private caches",
        num_accesses=2200,
        working_set_bytes=10 * 1024,
        mean_compute_gap=22.0,
        gap_variability=0.4,
        pattern=AddressPattern.STRIDED,
        stride_bytes=64,
        write_fraction=0.20,
        hot_fraction=0.75,
        hot_region_bytes=2 * 1024,
    ),
    "canrdr": _spec(
        "canrdr",
        description="CAN remote data request: control-dominated, small state",
        num_accesses=1200,
        working_set_bytes=4 * 1024,
        mean_compute_gap=30.0,
        gap_variability=0.5,
        pattern=AddressPattern.SEQUENTIAL,
        stride_bytes=16,
        write_fraction=0.10,
        hot_fraction=0.85,
        hot_region_bytes=1536,
    ),
    "matrix": _spec(
        "matrix",
        description="matrix arithmetic: dense streaming with poor reuse in L1",
        num_accesses=2500,
        working_set_bytes=8 * 1024,
        mean_compute_gap=18.0,
        gap_variability=0.2,
        pattern=AddressPattern.STRIDED,
        stride_bytes=32,
        write_fraction=0.25,
        hot_fraction=0.70,
        hot_region_bytes=2 * 1024,
    ),
    "tblook": _spec(
        "tblook",
        description="table lookup: pointer chasing, cache sensitive, sparse requests",
        num_accesses=1200,
        working_set_bytes=8 * 1024,
        mean_compute_gap=28.0,
        gap_variability=0.8,
        pattern=AddressPattern.POINTER_CHASE,
        write_fraction=0.05,
        hot_fraction=0.80,
        hot_region_bytes=2 * 1024,
    ),
    # --- Rest of the Autobench suite ---------------------------------------
    "a2time": _spec(
        "a2time",
        description="angle-to-time conversion: periodic control kernel",
        num_accesses=1000,
        working_set_bytes=6 * 1024,
        mean_compute_gap=26.0,
        gap_variability=0.4,
        pattern=AddressPattern.SEQUENTIAL,
        write_fraction=0.15,
        hot_fraction=0.8,
        hot_region_bytes=2 * 1024,
    ),
    "aifftr": _spec(
        "aifftr",
        description="FFT: strided butterflies over a medium working set",
        num_accesses=1800,
        working_set_bytes=12 * 1024,
        mean_compute_gap=20.0,
        gap_variability=0.3,
        pattern=AddressPattern.STRIDED,
        stride_bytes=128,
        write_fraction=0.25,
        hot_fraction=0.7,
        hot_region_bytes=2 * 1024,
    ),
    "aiifft": _spec(
        "aiifft",
        description="inverse FFT: same profile as aifftr",
        num_accesses=1800,
        working_set_bytes=12 * 1024,
        mean_compute_gap=20.0,
        gap_variability=0.3,
        pattern=AddressPattern.STRIDED,
        stride_bytes=128,
        write_fraction=0.25,
        hot_fraction=0.7,
        hot_region_bytes=2 * 1024,
    ),
    "basefp": _spec(
        "basefp",
        description="basic floating point: compute heavy, light memory",
        num_accesses=900,
        working_set_bytes=4 * 1024,
        mean_compute_gap=34.0,
        gap_variability=0.3,
        pattern=AddressPattern.SEQUENTIAL,
        write_fraction=0.12,
        hot_fraction=0.85,
        hot_region_bytes=1 * 1024,
    ),
    "bitmnp": _spec(
        "bitmnp",
        description="bit manipulation: register dominated, small tables",
        num_accesses=800,
        working_set_bytes=3 * 1024,
        mean_compute_gap=30.0,
        gap_variability=0.4,
        pattern=AddressPattern.RANDOM,
        write_fraction=0.15,
        hot_fraction=0.8,
        hot_region_bytes=1 * 1024,
    ),
    "idctrn": _spec(
        "idctrn",
        description="inverse DCT: blocked accesses with moderate reuse",
        num_accesses=1600,
        working_set_bytes=10 * 1024,
        mean_compute_gap=20.0,
        gap_variability=0.3,
        pattern=AddressPattern.STRIDED,
        stride_bytes=64,
        write_fraction=0.25,
        hot_fraction=0.72,
        hot_region_bytes=2 * 1024,
    ),
    "iirflt": _spec(
        "iirflt",
        description="IIR filter: small state, regular accesses",
        num_accesses=1100,
        working_set_bytes=6 * 1024,
        mean_compute_gap=24.0,
        gap_variability=0.3,
        pattern=AddressPattern.SEQUENTIAL,
        write_fraction=0.2,
        hot_fraction=0.8,
        hot_region_bytes=2 * 1024,
    ),
    "pntrch": _spec(
        "pntrch",
        description="pointer chase: linked-list traversal, low locality",
        num_accesses=1300,
        working_set_bytes=10 * 1024,
        mean_compute_gap=24.0,
        gap_variability=0.6,
        pattern=AddressPattern.POINTER_CHASE,
        write_fraction=0.05,
        hot_fraction=0.7,
        hot_region_bytes=2 * 1024,
    ),
    "puwmod": _spec(
        "puwmod",
        description="pulse width modulation: tight control loop",
        num_accesses=900,
        working_set_bytes=4 * 1024,
        mean_compute_gap=28.0,
        gap_variability=0.4,
        pattern=AddressPattern.SEQUENTIAL,
        write_fraction=0.2,
        hot_fraction=0.8,
        hot_region_bytes=1 * 1024,
    ),
    "rspeed": _spec(
        "rspeed",
        description="road speed calculation: sparse sensor table accesses",
        num_accesses=950,
        working_set_bytes=6 * 1024,
        mean_compute_gap=26.0,
        gap_variability=0.5,
        pattern=AddressPattern.RANDOM,
        write_fraction=0.15,
        hot_fraction=0.78,
        hot_region_bytes=2 * 1024,
    ),
    "ttsprk": _spec(
        "ttsprk",
        description="tooth-to-spark: lookup tables plus control logic",
        num_accesses=1100,
        working_set_bytes=8 * 1024,
        mean_compute_gap=22.0,
        gap_variability=0.5,
        pattern=AddressPattern.RANDOM,
        write_fraction=0.2,
        hot_fraction=0.75,
        hot_region_bytes=2 * 1024,
    ),
}


def available_benchmarks() -> list[str]:
    """Names of all modelled EEMBC Autobench benchmarks."""
    return sorted(EEMBC_AUTOBENCH)


def eembc_workload(name: str) -> WorkloadSpec:
    """Return the workload spec of the EEMBC benchmark called ``name``."""
    try:
        return EEMBC_AUTOBENCH[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown EEMBC benchmark {name!r}; available: {available_benchmarks()}"
        ) from exc


def eembc_trace(
    name: str, rng: np.random.Generator, *, materialize: bool = True
) -> WorkloadTrace:
    """Build one run's trace of the EEMBC benchmark called ``name``.

    Convenience for analysis tools and benchmarks that want a ready trace
    rather than a spec; ``materialize=True`` (the default) returns the
    columnar :class:`~repro.cpu.trace.MaterializedTrace` form.
    """
    return eembc_workload(name).build_trace(rng, materialize=materialize)
