"""Generic synthetic workloads.

Besides the EEMBC-like profiles (:mod:`repro.workloads.eembc`), experiments
need a few archetypal traffic patterns:

* :func:`streaming_workload` — a memory-streaming task that misses in every
  cache level (large sequential working set, no reuse).  This is the
  "contender issuing constantly read requests to memory" of the paper's
  illustrative example.
* :func:`cpu_bound_workload` — long compute gaps, tiny working set, so the
  bus is touched rarely.
* :func:`bus_hog_workload` — back-to-back long requests (atomics / misses
  with writebacks) with no compute gap, the worst neighbour imaginable.
* :func:`short_request_workload` — frequent short requests (L2 hits), the
  victim profile of the illustrative example.
"""

from __future__ import annotations

from typing import Callable

from ..sim.errors import WorkloadError
from .base import AddressPattern, WorkloadSpec

__all__ = [
    "streaming_workload",
    "cpu_bound_workload",
    "bus_hog_workload",
    "short_request_workload",
    "mixed_workload",
    "SYNTHETIC_BUILDERS",
    "synthetic_workload",
]


def streaming_workload(
    num_accesses: int = 2000,
    working_set_bytes: int = 4 * 1024 * 1024,
    name: str = "streaming",
) -> WorkloadSpec:
    """A streaming task: sequential reads over a working set far larger than
    the caches, so essentially every access misses and goes to memory."""
    return WorkloadSpec(
        name=name,
        num_accesses=num_accesses,
        working_set_bytes=working_set_bytes,
        mean_compute_gap=0.0,
        gap_variability=0.0,
        pattern=AddressPattern.SEQUENTIAL,
        stride_bytes=32,
        write_fraction=0.0,
        atomic_fraction=0.0,
        description="memory-streaming reads, every access misses",
        tags=("synthetic", "streaming"),
    )


def cpu_bound_workload(
    num_accesses: int = 500,
    name: str = "cpu_bound",
) -> WorkloadSpec:
    """A compute-bound task touching a tiny, cache-resident working set."""
    return WorkloadSpec(
        name=name,
        num_accesses=num_accesses,
        working_set_bytes=2 * 1024,
        mean_compute_gap=40.0,
        gap_variability=0.3,
        pattern=AddressPattern.SEQUENTIAL,
        write_fraction=0.1,
        hot_fraction=0.6,
        hot_region_bytes=512,
        description="compute bound, seldom uses the bus",
        tags=("synthetic", "cpu-bound"),
    )


def bus_hog_workload(
    num_accesses: int = 2000,
    name: str = "bus_hog",
) -> WorkloadSpec:
    """A pathological neighbour: back-to-back atomic/missing accesses."""
    return WorkloadSpec(
        name=name,
        num_accesses=num_accesses,
        working_set_bytes=8 * 1024 * 1024,
        mean_compute_gap=0.0,
        gap_variability=0.0,
        pattern=AddressPattern.RANDOM,
        write_fraction=0.4,
        atomic_fraction=0.2,
        description="back-to-back long requests (misses, writebacks, atomics)",
        tags=("synthetic", "hog"),
    )


def short_request_workload(
    num_accesses: int = 1000,
    mean_compute_gap: float = 4.0,
    name: str = "short_requests",
) -> WorkloadSpec:
    """Frequent short requests that mostly hit in the L2 (the TuA profile of
    the paper's illustrative example: 6-cycle turnarounds, issued often)."""
    return WorkloadSpec(
        name=name,
        num_accesses=num_accesses,
        working_set_bytes=6 * 1024,
        mean_compute_gap=mean_compute_gap,
        gap_variability=0.2,
        pattern=AddressPattern.SEQUENTIAL,
        write_fraction=0.0,
        hot_fraction=0.5,
        hot_region_bytes=2 * 1024,
        description="frequent short (L2-hit) requests",
        tags=("synthetic", "short-requests"),
    )


#: Name -> default-parameter builder for every synthetic profile, so the
#: registry, benchmarks and CLI can enumerate the profiles without
#: re-instantiating this module's knowledge of them.
SYNTHETIC_BUILDERS: dict[str, Callable[[], WorkloadSpec]] = {}


def _register(builder: Callable[..., WorkloadSpec]) -> None:
    SYNTHETIC_BUILDERS[builder().name] = builder


def synthetic_workload(name: str) -> WorkloadSpec:
    """Return the default-parameter spec of the synthetic profile ``name``."""
    try:
        return SYNTHETIC_BUILDERS[name]()
    except KeyError as exc:
        raise WorkloadError(
            f"unknown synthetic workload {name!r}; available: {sorted(SYNTHETIC_BUILDERS)}"
        ) from exc


def mixed_workload(
    num_accesses: int = 1500,
    name: str = "mixed",
) -> WorkloadSpec:
    """A balanced task mixing locality, strided misses and occasional writes."""
    return WorkloadSpec(
        name=name,
        num_accesses=num_accesses,
        working_set_bytes=64 * 1024,
        mean_compute_gap=8.0,
        gap_variability=0.6,
        pattern=AddressPattern.STRIDED,
        write_fraction=0.25,
        atomic_fraction=0.01,
        hot_fraction=0.3,
        hot_region_bytes=4 * 1024,
        description="mixed locality and miss traffic",
        tags=("synthetic", "mixed"),
    )


for _builder in (
    streaming_workload,
    cpu_bound_workload,
    bus_hog_workload,
    short_request_workload,
    mixed_workload,
):
    _register(_builder)
del _builder
