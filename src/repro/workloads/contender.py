"""Contender agents for contention scenarios.

The paper evaluates the task under analysis (TuA) both in isolation and under
*maximum contention*.  Maximum contention is produced by contender cores that
always have a request ready and whose requests take the maximum latency
``MaxL`` (Section III-B).  Two flavours exist:

* :class:`GreedyContender` — operation-mode worst neighbour: it keeps one
  maximum-length request pending at all times.  Used for the ``*-CON``
  configurations of Figure 1.
* :class:`WCETModeContender` — the analysis-mode contender of Table I: its
  request line is always asserted, but it only *competes* when its budget is
  full **and** the TuA has a request ready; once granted it holds the bus for
  ``MaxL`` cycles.  Used by the MBPTA experiment, where measurements must
  upper-bound operation-time contention without wasting contender budget when
  the TuA is not even requesting.

Both are bus masters in their own right (they bypass the cache hierarchy and
issue atomic, maximum-length transactions straight at the bus), which mirrors
how the FPGA implementation generates analysis-mode traffic in hardware
rather than running a real program on the contender cores.
"""

from __future__ import annotations

from typing import Callable

from ..bus.bus import SharedBus
from ..bus.transaction import AccessType, BusRequest
from ..core.cba import CreditBasedArbiter
from ..core.wcet_mode import CompeteGate, OperatingMode
from ..sim.component import Component

__all__ = ["GreedyContender", "WCETModeContender"]


class GreedyContender(Component):
    """A contender that always keeps one maximum-length request pending.

    Event-queue protocol: the contender's only self-scheduled event is the
    re-issue after a completion, so it cancels its wake when a request goes
    out and schedules the next cycle when the completion callback arrives.
    """

    event_driven = True

    def __init__(
        self,
        name: str,
        core_id: int,
        bus: SharedBus,
        address: int = 0x6000_0000,
    ) -> None:
        super().__init__(name)
        self.core_id = core_id
        self.bus = bus
        self.address = address
        self.requests_issued = 0
        self.requests_completed = 0
        self._in_flight = False
        # Probed once per tick and once per wake hint; pre-binding spares the
        # method lookups on the hot path (same idiom as the bus counters).
        self._bus_has_pending = bus.has_pending
        bus.connect_master(core_id, self)

    def tick(self) -> None:
        if self._in_flight or self._bus_has_pending(self.core_id):
            return
        self._issue()

    def next_event(self, now: int) -> int | None:
        """Issue as soon as the previous request completes (a bus event)."""
        if self._in_flight or self._bus_has_pending(self.core_id):
            return None
        return now

    def _issue(self) -> None:
        request = BusRequest(
            master_id=self.core_id,
            # Distinct addresses defeat any caching in the slave: every
            # contender request walks the full memory path.
            address=self.address + self.requests_issued * 4096,
            access=AccessType.ATOMIC,
            issue_cycle=self.now,
        )
        self.bus.submit(request)
        self.requests_issued += 1
        self._in_flight = True
        # Nothing self-scheduled until the completion callback (a bus event).
        if self._wake_push:
            self._wake_cancel(self._wake_slot)

    def on_grant(self, request: BusRequest, cycle: int) -> None:
        """Bus master protocol: nothing to do at grant time."""

    def on_complete(self, request: BusRequest, cycle: int) -> None:
        self.requests_completed += 1
        self._in_flight = False
        # Re-issue on the next tick (the bus completes during its own tick
        # at ``cycle``; the contender's next chance to act is cycle + 1).
        if self._wake_push:
            self._wake_schedule(self._wake_slot, cycle + 1)

    def reset(self) -> None:
        self.requests_issued = 0
        self.requests_completed = 0
        self._in_flight = False


class WCETModeContender(Component):
    """The WCET-estimation-mode contender of Table I.

    This contender stays on the kernel's *poll* fallback (``event_driven``
    remains False) on purpose: its wake hint reads state it does not own —
    the task under analysis's request line and its own CBA budget, both of
    which can change during *other* components' ticks (the bus completing
    the TuA's transaction, a deferred TuA request going out) after this
    contender already ticked in the same cycle.  A pushed wake computed at
    its own tick could therefore be *later* than the true one, which the
    event-queue contract forbids; polling re-evaluates the cross-component
    condition at every scheduling decision, exactly like the scan kernel.

    Parameters
    ----------
    tua_request_ready:
        Callable returning whether the task under analysis currently has a
        request ready (``REQ1``).
    cba:
        The CBA arbiter, when present, so the contender can observe its own
        budget (``BUDGi == full``).  Without CBA the budget condition is
        trivially true and the contender competes whenever the TuA requests.
    """

    def __init__(
        self,
        name: str,
        core_id: int,
        bus: SharedBus,
        tua_request_ready: Callable[[], bool],
        cba: CreditBasedArbiter | None = None,
        address: int = 0x7000_0000,
    ) -> None:
        super().__init__(name)
        self.core_id = core_id
        self.bus = bus
        self.tua_request_ready = tua_request_ready
        self.cba = cba
        self.address = address
        self.gate = CompeteGate(mode=OperatingMode.WCET_ESTIMATION, compete=False)
        self.requests_issued = 0
        self.requests_completed = 0
        self._in_flight = False
        self._bus_has_pending = bus.has_pending
        bus.connect_master(core_id, self)

    def _budget_full(self) -> bool:
        if self.cba is None:
            return True
        account = self.cba.credits[self.core_id]
        return account.eligible

    def tick(self) -> None:
        self.gate.update(
            budget_full=self._budget_full(),
            tua_request_ready=bool(self.tua_request_ready()),
        )
        if self._in_flight or self._bus_has_pending(self.core_id):
            return
        if self.gate.compete:
            self._issue()

    def next_event(self, now: int) -> int | None:
        """Wake hint honouring the COMP-bit dynamics of Table I.

        The gate's inputs are frozen during a skip except the contender's own
        budget, which replenishes monotonically while it is not holding the
        bus.  The only self-scheduled event is therefore the cycle the budget
        refills while the TuA is requesting, which would set COMP and trigger
        an issue.  All other transitions ride on bus/TuA events:

        * request in flight — COMP cannot *gain* observable effect until the
          completion (and while holding, the draining budget keeps the gate
          shut); the bus hint covers the completion cycle;
        * COMP already set and free to issue — issue this very tick;
        * TuA not requesting — the gate cannot open until the TuA's state
          changes, which is a ticked cycle by construction.
        """
        if self._in_flight or self._bus_has_pending(self.core_id):
            return None
        if self.gate.compete or self.gate.mode is OperatingMode.OPERATION:
            return now
        if not self.tua_request_ready():
            return None
        if self._budget_full():
            return now
        return now + self.cba.credits[self.core_id].cycles_until_eligible()

    def _issue(self) -> None:
        request = BusRequest(
            master_id=self.core_id,
            address=self.address + self.requests_issued * 4096,
            access=AccessType.ATOMIC,
            issue_cycle=self.now,
        )
        self.bus.submit(request)
        self.requests_issued += 1
        self._in_flight = True

    def on_grant(self, request: BusRequest, cycle: int) -> None:
        """Bus master protocol: the grant clears the compete bit (Table I)."""
        self.gate.on_granted()

    def on_complete(self, request: BusRequest, cycle: int) -> None:
        self.requests_completed += 1
        self._in_flight = False

    def reset(self) -> None:
        self.gate.reset()
        self.requests_issued = 0
        self.requests_completed = 0
        self._in_flight = False
