"""Workload generators: parametric synthetic tasks, EEMBC Autobench-like
profiles and the contender agents used for maximum-contention scenarios."""

from .base import AddressPattern, WorkloadSpec
from .contender import GreedyContender, WCETModeContender
from .eembc import (
    EEMBC_AUTOBENCH,
    FIGURE1_BENCHMARKS,
    available_benchmarks,
    eembc_workload,
)
from .registry import SYNTHETIC_WORKLOADS, available_workloads, workload_by_name
from .synthetic import (
    bus_hog_workload,
    cpu_bound_workload,
    mixed_workload,
    short_request_workload,
    streaming_workload,
)

__all__ = [
    "AddressPattern",
    "WorkloadSpec",
    "GreedyContender",
    "WCETModeContender",
    "EEMBC_AUTOBENCH",
    "FIGURE1_BENCHMARKS",
    "available_benchmarks",
    "eembc_workload",
    "SYNTHETIC_WORKLOADS",
    "available_workloads",
    "workload_by_name",
    "streaming_workload",
    "cpu_bound_workload",
    "bus_hog_workload",
    "short_request_workload",
    "mixed_workload",
]
