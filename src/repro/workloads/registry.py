"""Registry of every named workload in the library.

Experiments and the command-line examples refer to workloads by name; this
module maps names to :class:`~repro.workloads.base.WorkloadSpec` objects,
covering both the EEMBC-like suite and the generic synthetic profiles.
"""

from __future__ import annotations

from ..sim.errors import WorkloadError
from .base import WorkloadSpec
from .eembc import EEMBC_AUTOBENCH
from .synthetic import SYNTHETIC_BUILDERS

__all__ = ["workload_by_name", "available_workloads", "SYNTHETIC_WORKLOADS"]


SYNTHETIC_WORKLOADS: dict[str, WorkloadSpec] = {
    name: builder() for name, builder in SYNTHETIC_BUILDERS.items()
}


def available_workloads() -> list[str]:
    """All workload names known to the registry."""
    return sorted(set(EEMBC_AUTOBENCH) | set(SYNTHETIC_WORKLOADS))


def workload_by_name(name: str) -> WorkloadSpec:
    """Look up a workload by name (EEMBC benchmark or synthetic profile)."""
    if name in EEMBC_AUTOBENCH:
        return EEMBC_AUTOBENCH[name]
    if name in SYNTHETIC_WORKLOADS:
        return SYNTHETIC_WORKLOADS[name]
    raise WorkloadError(
        f"unknown workload {name!r}; available: {available_workloads()}"
    )
