"""Workload descriptions.

A workload is a *recipe* for generating the memory-access trace a core will
execute.  The recipe is deterministic given a random stream, so the same
workload produces different — but reproducible — traces across runs, which is
exactly how the randomised platform of the paper behaves (the program is
fixed; the cache placements and arbitration random choices vary per run).

:class:`WorkloadSpec` captures the parameters that matter to the bus:

* how many memory accesses the task performs and how much computation
  separates them (bus demand);
* how large the touched data set is and how local the accesses are
  (hit/miss behaviour in L1 and L2, hence request durations);
* the mix of reads, writes and atomic operations (short vs long requests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..bus.transaction import AccessType
from ..cpu.requests import MemoryAccess, TraceItem
from ..cpu.trace import (
    KIND_BY_ACCESS,
    KIND_NONE,
    GeneratorTrace,
    MaterializedTrace,
    WorkloadTrace,
)
from ..sim.errors import WorkloadError

__all__ = [
    "AddressPattern",
    "WorkloadSpec",
    "enable_trace_column_cache",
    "trace_column_cache_stats",
]


# ----------------------------------------------------------------------
# Deterministic-trace column cache
# ----------------------------------------------------------------------
# Some specs draw nothing that reaches the trace (constant gaps, structured
# addresses, a pure read/write mix): every run materialises byte-identical
# columns.  Warm campaign workers re-materialise such traces hundreds of
# times, so they may opt into caching the generated columns keyed by the
# (frozen, hashable) spec itself.  Safe for bit-identity because the
# workload stream is private per core — skipping its draws is unobservable
# outside the trace — and the cache only ever serves specs whose columns
# cannot differ between runs (:attr:`WorkloadSpec.deterministic_trace`).
# Disabled by default; :func:`repro.campaign.batches.init_batch_worker`
# turns it on inside pool workers only.
_TRACE_CACHE_ENABLED = False
_TRACE_CACHE: dict["WorkloadSpec", tuple[list[int], list[int], list[int]]] = {}
_TRACE_CACHE_HITS = 0
_TRACE_CACHE_MISSES = 0
_TRACE_CACHE_CAPACITY = 128


def enable_trace_column_cache(enabled: bool = True) -> None:
    """Switch the deterministic-trace column cache on or off (clears it)."""
    global _TRACE_CACHE_ENABLED, _TRACE_CACHE_HITS, _TRACE_CACHE_MISSES
    _TRACE_CACHE_ENABLED = enabled
    _TRACE_CACHE.clear()
    _TRACE_CACHE_HITS = 0
    _TRACE_CACHE_MISSES = 0


def trace_column_cache_stats() -> tuple[int, int]:
    """``(hits, misses)`` served by the column cache since it was enabled."""
    return _TRACE_CACHE_HITS, _TRACE_CACHE_MISSES


class AddressPattern:
    """Named address-generation patterns."""

    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    RANDOM = "random"
    POINTER_CHASE = "pointer_chase"
    ALL = (SEQUENTIAL, STRIDED, RANDOM, POINTER_CHASE)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parametric description of a task's memory behaviour."""

    name: str
    #: Number of memory accesses the task performs (trace length).
    num_accesses: int = 1000
    #: Bytes of data the task touches; small working sets fit in the L1.
    working_set_bytes: int = 8 * 1024
    #: Mean compute cycles between consecutive memory accesses.
    mean_compute_gap: float = 4.0
    #: Dispersion of the compute gap: 0 = constant gap, 1 = geometric-like.
    gap_variability: float = 0.5
    #: Address generation pattern (one of :class:`AddressPattern`).
    pattern: str = AddressPattern.SEQUENTIAL
    #: Stride in bytes for the strided pattern.
    stride_bytes: int = 32
    #: Fraction of accesses that are writes.
    write_fraction: float = 0.2
    #: Fraction of accesses that are atomic read-modify-writes.
    atomic_fraction: float = 0.0
    #: Fraction of accesses redirected to a small hot region (temporal reuse).
    hot_fraction: float = 0.0
    #: Size of the hot region in bytes.
    hot_region_bytes: int = 1024
    #: Base address of the task's data segment (also separates cores' data).
    base_address: int = 0x1000_0000
    #: Tail compute cycles after the last access.
    tail_compute_cycles: int = 0
    #: Free-form description used in reports.
    description: str = ""
    #: Extra metadata (e.g. the EEMBC category).
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.num_accesses <= 0:
            raise WorkloadError(f"{self.name}: num_accesses must be positive")
        if self.working_set_bytes <= 0:
            raise WorkloadError(f"{self.name}: working_set_bytes must be positive")
        if self.mean_compute_gap < 0:
            raise WorkloadError(f"{self.name}: mean_compute_gap cannot be negative")
        if not 0.0 <= self.gap_variability <= 1.0:
            raise WorkloadError(f"{self.name}: gap_variability must be in [0, 1]")
        if self.pattern not in AddressPattern.ALL:
            raise WorkloadError(f"{self.name}: unknown address pattern {self.pattern!r}")
        if self.stride_bytes <= 0:
            raise WorkloadError(f"{self.name}: stride_bytes must be positive")
        for frac_name in ("write_fraction", "atomic_fraction", "hot_fraction"):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{self.name}: {frac_name} must be in [0, 1]")
        if self.write_fraction + self.atomic_fraction > 1.0:
            raise WorkloadError(
                f"{self.name}: write_fraction + atomic_fraction cannot exceed 1"
            )
        if self.hot_region_bytes <= 0:
            raise WorkloadError(f"{self.name}: hot_region_bytes must be positive")
        if self.tail_compute_cycles < 0:
            raise WorkloadError(f"{self.name}: tail_compute_cycles cannot be negative")

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------
    def generate_items(self, rng: np.random.Generator) -> Iterator[TraceItem]:
        """Yield the trace items of one run of this workload."""
        pointer_state = 0
        for index in range(self.num_accesses):
            gap = self._draw_gap(rng)
            address, pointer_state = self._draw_address(rng, index, pointer_state)
            access_type = self._draw_access_type(rng)
            yield TraceItem(
                compute_cycles=gap,
                access=MemoryAccess(address=address, access=access_type),
            )
        if self.tail_compute_cycles:
            yield TraceItem(compute_cycles=self.tail_compute_cycles, access=None)

    def generate_columns(
        self, rng: np.random.Generator
    ) -> tuple[list[int], list[int], list[int]]:
        """Generate one run's trace as ``(gaps, addresses, kinds)`` columns.

        The draw helpers are invoked per item in exactly the order
        :meth:`generate_items` uses (gap, address, access type), so the RNG
        stream is consumed identically and the columns encode the same
        sequence the lazy trace would have produced — only without building a
        ``TraceItem``/``MemoryAccess`` pair per item.
        """
        gaps: list[int] = []
        addresses: list[int] = []
        kinds: list[int] = []
        pointer_state = 0
        for index in range(self.num_accesses):
            gaps.append(self._draw_gap(rng))
            address, pointer_state = self._draw_address(rng, index, pointer_state)
            addresses.append(address)
            kinds.append(KIND_BY_ACCESS[self._draw_access_type(rng)])
        if self.tail_compute_cycles:
            gaps.append(self.tail_compute_cycles)
            addresses.append(0)
            kinds.append(KIND_NONE)
        return gaps, addresses, kinds

    @property
    def deterministic_trace(self) -> bool:
        """True when every run of this spec materialises identical columns.

        Holds when each of the three draw sites is draw-free or
        draw-independent: gaps (no randomness when the mean is zero or the
        variability is zero), addresses (no hot-region redirection and a
        structured pattern), and access kinds (a pure atomic, pure write or
        pure read mix — :meth:`_draw_access_type` consumes a draw either way,
        but the outcome is fixed and the workload stream is private, so
        skipping the draw is unobservable).
        """
        gaps_fixed = self.mean_compute_gap == 0 or self.gap_variability == 0
        addresses_fixed = (
            self.hot_fraction == 0.0 and self.pattern != AddressPattern.RANDOM
        )
        kinds_fixed = self.atomic_fraction == 1.0 or (
            self.atomic_fraction == 0.0 and self.write_fraction in (0.0, 1.0)
        )
        return gaps_fixed and addresses_fixed and kinds_fixed

    def materialize_trace(self, rng: np.random.Generator) -> MaterializedTrace:
        """Build one run's trace in columnar form (see :meth:`generate_columns`).

        When the column cache is enabled and the spec's trace is
        deterministic, the columns are generated once and replayed for every
        later run — the trace items are identical either way.
        """
        global _TRACE_CACHE_HITS, _TRACE_CACHE_MISSES
        if _TRACE_CACHE_ENABLED and self.deterministic_trace:
            columns = _TRACE_CACHE.get(self)
            if columns is None:
                _TRACE_CACHE_MISSES += 1
                columns = self.generate_columns(rng)
                while len(_TRACE_CACHE) >= _TRACE_CACHE_CAPACITY:
                    _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
                _TRACE_CACHE[self] = columns
            else:
                _TRACE_CACHE_HITS += 1
            gaps, addresses, kinds = columns
            return MaterializedTrace.from_columns(
                gaps, addresses, kinds, name=self.name
            )
        gaps, addresses, kinds = self.generate_columns(rng)
        return MaterializedTrace.from_columns(gaps, addresses, kinds, name=self.name)

    def build_trace(
        self, rng: np.random.Generator, *, materialize: bool = False
    ) -> WorkloadTrace:
        """Build a replayable trace bound to ``rng``.

        With ``materialize=True`` the whole run is drawn up front into a
        :class:`~repro.cpu.trace.MaterializedTrace` (bit-identical items; the
        workload stream is private to the trace, so eager drawing changes no
        other component's randomness).  The default stays lazy.
        """
        if materialize:
            return self.materialize_trace(rng)
        return GeneratorTrace(lambda: self.generate_items(rng), name=self.name)

    # ------------------------------------------------------------------
    # Draw helpers
    # ------------------------------------------------------------------
    def _draw_gap(self, rng: np.random.Generator) -> int:
        if self.mean_compute_gap == 0:
            return 0
        if self.gap_variability == 0:
            return int(round(self.mean_compute_gap))
        # Blend a constant component with a geometric component so the mean
        # stays at mean_compute_gap while the variability knob controls how
        # bursty the request stream is.
        constant = (1.0 - self.gap_variability) * self.mean_compute_gap
        random_mean = self.gap_variability * self.mean_compute_gap
        random_part = rng.geometric(1.0 / (random_mean + 1.0)) - 1 if random_mean > 0 else 0
        return max(0, int(round(constant + random_part)))

    def _draw_address(
        self, rng: np.random.Generator, index: int, pointer_state: int
    ) -> tuple[int, int]:
        span = self.working_set_bytes
        if self.hot_fraction and rng.random() < self.hot_fraction:
            offset = int(rng.integers(0, max(1, self.hot_region_bytes)))
            return self.base_address + offset, pointer_state
        if self.pattern == AddressPattern.SEQUENTIAL:
            offset = (index * self.stride_bytes) % span
        elif self.pattern == AddressPattern.STRIDED:
            offset = (index * self.stride_bytes * 4) % span
        elif self.pattern == AddressPattern.RANDOM:
            offset = int(rng.integers(0, span))
        elif self.pattern == AddressPattern.POINTER_CHASE:
            # A linear congruential walk over the working set: each access
            # depends on the previous one, touching cache lines in a
            # hard-to-prefetch, low-locality order (table lookup behaviour).
            pointer_state = (pointer_state * 1103515245 + 12345 + index) % span
            offset = pointer_state
        else:  # pragma: no cover - guarded by __post_init__
            raise WorkloadError(f"unknown pattern {self.pattern!r}")
        return self.base_address + offset, pointer_state

    def _draw_access_type(self, rng: np.random.Generator) -> AccessType:
        draw = rng.random()
        if draw < self.atomic_fraction:
            return AccessType.ATOMIC
        if draw < self.atomic_fraction + self.write_fraction:
            return AccessType.WRITE
        return AccessType.READ

    def with_updates(self, **kwargs: object) -> "WorkloadSpec":
        """Return a copy of the spec with fields replaced."""
        from dataclasses import replace

        return replace(self, **kwargs)
