"""Tests for the isolation / contention / WCET-estimation scenarios."""

import pytest

from repro.platform.scenarios import (
    Scenario,
    run_isolation,
    run_max_contention,
    run_mixed_criticality,
    run_multiprogram,
    run_wcet_estimation,
)


def test_isolation_scenario_reports_tua_cycles(rp_platform, tiny_workload):
    result = run_isolation(tiny_workload, rp_platform, seed=3)
    assert result.scenario is Scenario.ISOLATION
    assert result.tua_cycles > 0
    assert result.tua_cycles == result.system.execution_cycles(0)


def test_contention_slows_the_tua_down(rp_platform, tiny_workload):
    iso = run_isolation(tiny_workload, rp_platform, seed=3)
    con = run_max_contention(tiny_workload, rp_platform, seed=3)
    assert con.scenario is Scenario.MAX_CONTENTION
    assert con.tua_cycles > iso.tua_cycles


def test_cba_reduces_contention_impact(rp_platform, cba_platform, tiny_workload):
    """The paper's headline comparison on a small workload: the execution time
    under maximum contention is lower with CBA than without."""
    rp_con = run_max_contention(tiny_workload, rp_platform, seed=3)
    cba_con = run_max_contention(tiny_workload, cba_platform, seed=3)
    assert cba_con.tua_cycles < rp_con.tua_cycles


def test_wcet_estimation_scenario_uses_wcet_contenders(cba_platform, tiny_workload):
    result = run_wcet_estimation(tiny_workload, cba_platform, seed=3)
    assert result.scenario is Scenario.WCET_ESTIMATION
    contender_requests = result.system.extra["contender_requests"]
    assert len(contender_requests) == 3
    assert result.tua_cycles > 0


def test_wcet_estimation_upper_bounds_isolation(cba_platform, tiny_workload):
    iso = run_isolation(tiny_workload, cba_platform, seed=3)
    wcet = run_wcet_estimation(tiny_workload, cba_platform, seed=3)
    assert wcet.tua_cycles >= iso.tua_cycles


def test_multiprogram_scenario_runs_every_task(rp_platform, tiny_workload, quiet_workload):
    result = run_multiprogram(
        {0: tiny_workload, 1: quiet_workload}, rp_platform, seed=3
    )
    assert result.scenario is Scenario.MULTIPROGRAM
    assert result.system.core_counters[0].finished
    assert result.system.core_counters[1].finished


def test_different_run_indices_produce_different_execution_times(rp_platform, tiny_workload):
    """Per-run randomisation (cache placement, arbitration) must show up as
    execution-time variability — the property MBPTA requires."""
    cycles = {
        run_isolation(tiny_workload, rp_platform, seed=9, run_index=i).tua_cycles
        for i in range(4)
    }
    assert len(cycles) > 1


def test_same_seed_and_run_index_reproduce_exactly(rp_platform, tiny_workload):
    first = run_isolation(tiny_workload, rp_platform, seed=11, run_index=2)
    second = run_isolation(tiny_workload, rp_platform, seed=11, run_index=2)
    assert first.tua_cycles == second.tua_cycles


def test_mixed_criticality_runs_best_effort_on_other_cores(rp_platform, tiny_workload):
    result = run_mixed_criticality(tiny_workload, rp_platform, seed=3)
    assert result.scenario is Scenario.MIXED_CRITICALITY
    assert result.tua_cycles > 0
    # Every best-effort core ran a real program to completion.
    for core in range(1, rp_platform.num_cores):
        assert result.system.core_counters[core].finished


def test_mixed_criticality_accepts_named_best_effort(rp_platform, tiny_workload):
    by_name = run_mixed_criticality(
        tiny_workload, rp_platform, seed=3, best_effort="cpu_bound"
    )
    default = run_mixed_criticality(tiny_workload, rp_platform, seed=3)
    assert by_name.tua_cycles > 0
    # A compute-dominated neighbour interferes less than the default bus hog.
    assert by_name.tua_cycles <= default.tua_cycles


def test_mixed_criticality_accepts_a_spec(rp_platform, tiny_workload, quiet_workload):
    result = run_mixed_criticality(
        tiny_workload, rp_platform, seed=3, best_effort=quiet_workload
    )
    assert result.tua_cycles > 0
    assert result.system.core_counters[1].finished
