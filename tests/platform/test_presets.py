"""Tests for the paper's platform configuration presets."""

from fractions import Fraction

import pytest

from repro.platform.presets import (
    PAPER_CONFIG_LABELS,
    cba_config,
    config_by_label,
    hcba_config,
    paper_bus_timings,
    rp_config,
)
from repro.sim.errors import ConfigurationError


def test_paper_bus_timings_match_section_iv():
    timings = paper_bus_timings()
    assert timings.l2_hit_read == 5
    assert timings.memory_latency == 28
    assert timings.max_latency == 56


def test_rp_config_is_random_permutations_without_cba():
    config = rp_config()
    assert config.arbitration == "random_permutations"
    assert not config.use_cba
    assert config.num_cores == 4


def test_cba_config_enables_homogeneous_cba():
    config = cba_config()
    assert config.use_cba
    assert config.cba.replenish_shares is None
    assert config.cba.scaled_full_budget == 4 * 56


def test_hcba_config_implements_the_paper_half_share():
    config = hcba_config(favoured_core=0)
    assert config.use_cba
    assert config.cba.replenish_shares == (3, 1, 1, 1)


def test_hcba_other_favoured_core_and_fraction():
    config = hcba_config(favoured_core=2, favoured_fraction=Fraction(2, 5))
    shares = config.cba.replenish_shares
    assert shares is not None
    assert shares[2] == max(shares)


def test_config_by_label_accepts_paper_labels():
    for label in PAPER_CONFIG_LABELS:
        config = config_by_label(label)
        assert config.num_cores == 4
    assert config_by_label("hcba").use_cba
    assert config_by_label(" rp ").use_cba is False


def test_config_by_label_rejects_unknown_label():
    with pytest.raises(ConfigurationError):
        config_by_label("tdma-magic")
