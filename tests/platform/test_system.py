"""Tests for the multicore system builder."""

import pytest

from repro.core.cba import CreditBasedArbiter
from repro.platform.system import MulticoreSystem
from repro.sim.errors import ConfigurationError


def test_system_requires_at_least_one_task(rp_platform):
    system = MulticoreSystem(rp_platform, seed=1)
    with pytest.raises(ConfigurationError):
        system.run(max_cycles=100)


def test_single_task_runs_to_completion(rp_platform, tiny_workload):
    system = MulticoreSystem(rp_platform, seed=1)
    system.add_task(0, tiny_workload)
    result = system.run(max_cycles=200_000)
    assert result.execution_cycles(0) > 0
    counters = result.core_counters[0]
    assert counters.accesses == tiny_workload.num_accesses
    assert counters.finished


def test_core_slots_cannot_be_reused(rp_platform, tiny_workload):
    system = MulticoreSystem(rp_platform, seed=1)
    system.add_task(0, tiny_workload)
    with pytest.raises(ConfigurationError):
        system.add_task(0, tiny_workload)
    with pytest.raises(ConfigurationError):
        system.add_greedy_contender(0)
    with pytest.raises(ConfigurationError):
        system.add_task(9, tiny_workload)


def test_cba_config_wraps_the_base_arbiter(cba_platform, tiny_workload):
    system = MulticoreSystem(cba_platform, seed=1)
    system.add_task(0, tiny_workload)
    assert isinstance(system.cba, CreditBasedArbiter)
    assert system.arbiter is system.cba
    assert system.cba.base is system.base_arbiter


def test_rp_config_has_no_cba(rp_platform, tiny_workload):
    system = MulticoreSystem(rp_platform, seed=1)
    system.add_task(0, tiny_workload)
    assert system.cba is None


def test_set_tua_initial_budget_noop_without_cba(rp_platform, tiny_workload):
    system = MulticoreSystem(rp_platform, seed=1)
    system.add_task(0, tiny_workload)
    system.set_tua_initial_budget(0, 0)  # must not raise


def test_set_tua_initial_budget_applies_with_cba(cba_platform, tiny_workload):
    system = MulticoreSystem(cba_platform, seed=1)
    system.add_task(0, tiny_workload)
    system.set_tua_initial_budget(0, 0)
    assert system.cba.budget(0) == 0


def test_contenders_generate_bus_traffic(rp_platform, tiny_workload):
    system = MulticoreSystem(rp_platform, seed=1)
    system.add_task(0, tiny_workload)
    for core in range(1, 4):
        system.add_greedy_contender(core)
    result = system.run(max_cycles=500_000)
    contender_requests = result.extra["contender_requests"]
    assert all(count > 0 for count in contender_requests.values())
    assert result.bus_utilization > 0.5


def test_wcet_contender_requires_distinct_tua(rp_platform, tiny_workload):
    system = MulticoreSystem(rp_platform, seed=1)
    system.add_task(0, tiny_workload)
    with pytest.raises(ConfigurationError):
        system.add_wcet_contender(1, tua_core=1)


def test_result_contains_bandwidth_accounting(rp_platform, tiny_workload):
    system = MulticoreSystem(rp_platform, seed=1)
    system.add_task(0, tiny_workload)
    result = system.run(max_cycles=200_000)
    assert len(result.bandwidth_shares) == 4
    assert result.bandwidth_shares[0] == pytest.approx(1.0)
    assert result.grants_per_core[0] == result.core_counters[0].bus_requests
    assert 0.0 <= result.bus_utilization <= 1.0


def test_components_cannot_be_added_after_finalize(rp_platform, tiny_workload):
    system = MulticoreSystem(rp_platform, seed=1)
    system.add_task(0, tiny_workload)
    system.finalize()
    with pytest.raises(ConfigurationError):
        system.add_task(1, tiny_workload)


def test_run_limit_raises_when_tasks_do_not_finish(rp_platform, tiny_workload):
    system = MulticoreSystem(rp_platform, seed=1)
    system.add_task(0, tiny_workload)
    with pytest.raises(ConfigurationError):
        system.run(max_cycles=10)
