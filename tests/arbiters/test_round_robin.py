"""Tests for round-robin arbitration."""

import pytest

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.sim.errors import ArbitrationError


def grant(arbiter, requestors, cycle=0, duration=1):
    choice = arbiter.arbitrate(requestors, cycle)
    if choice is not None:
        arbiter.on_grant(choice, duration, cycle)
    return choice


def test_rotates_through_all_requestors():
    arbiter = RoundRobinArbiter(4)
    order = [grant(arbiter, [0, 1, 2, 3]) for _ in range(8)]
    assert order == [0, 1, 2, 3, 0, 1, 2, 3]


def test_skips_non_requesting_masters():
    arbiter = RoundRobinArbiter(4)
    assert grant(arbiter, [2]) == 2
    assert grant(arbiter, [0, 1]) == 0
    assert grant(arbiter, [1, 3]) == 1
    assert grant(arbiter, [3]) == 3


def test_no_requestors_returns_none():
    assert RoundRobinArbiter(4).arbitrate([], 0) is None


def test_single_requestor_repeatedly_granted():
    arbiter = RoundRobinArbiter(4)
    assert [grant(arbiter, [2]) for _ in range(3)] == [2, 2, 2]


def test_accounts_grants_and_cycles():
    arbiter = RoundRobinArbiter(2)
    grant(arbiter, [0], duration=5)
    grant(arbiter, [1], duration=7)
    grant(arbiter, [0], duration=5)
    assert arbiter.grants_per_master == [2, 1]
    assert arbiter.cycles_granted_per_master == [10, 7]


def test_invalid_requestor_rejected():
    with pytest.raises(ArbitrationError):
        RoundRobinArbiter(2).arbitrate([5], 0)


def test_reset_restores_rotation_start():
    arbiter = RoundRobinArbiter(3)
    grant(arbiter, [0, 1, 2])
    grant(arbiter, [0, 1, 2])
    arbiter.reset()
    assert grant(arbiter, [0, 1, 2]) == 0
    assert arbiter.grants_per_master == [1, 0, 0]


def test_fairness_under_saturation():
    """With every master always requesting, slots are shared exactly evenly."""
    arbiter = RoundRobinArbiter(4)
    for _ in range(400):
        grant(arbiter, [0, 1, 2, 3])
    assert arbiter.grants_per_master == [100, 100, 100, 100]
