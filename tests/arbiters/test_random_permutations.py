"""Tests for random-permutations arbitration."""

import numpy as np

from repro.arbiters.random_permutations import RandomPermutationsArbiter


def saturated_grants(arbiter, rounds, num_masters):
    order = []
    for _ in range(rounds):
        choice = arbiter.arbitrate(list(range(num_masters)), 0)
        arbiter.on_grant(choice, 1, 0)
        order.append(choice)
    return order


def test_only_requestors_granted(rng):
    arbiter = RandomPermutationsArbiter(4, rng)
    for _ in range(100):
        choice = arbiter.arbitrate([0, 2], 0)
        assert choice in (0, 2)
        arbiter.on_grant(choice, 1, 0)


def test_no_requestors_returns_none(rng):
    assert RandomPermutationsArbiter(4, rng).arbitrate([], 0) is None


def test_under_saturation_each_window_grants_each_master_once(rng):
    arbiter = RandomPermutationsArbiter(4, rng)
    order = saturated_grants(arbiter, 40, 4)
    for start in range(0, 40, 4):
        window = order[start : start + 4]
        assert sorted(window) == [0, 1, 2, 3]


def test_bounded_distance_between_grants_to_same_master(rng):
    """A master never waits more than 2N-1 grants between consecutive grants
    under saturation — the property that makes RP attractive for MBPTA."""
    num_masters = 4
    arbiter = RandomPermutationsArbiter(num_masters, rng)
    order = saturated_grants(arbiter, 400, num_masters)
    last_seen = {m: None for m in range(num_masters)}
    for position, master in enumerate(order):
        if last_seen[master] is not None:
            assert position - last_seen[master] <= 2 * num_masters - 1
        last_seen[master] = position


def test_sequences_reproducible_for_fixed_seed():
    a = RandomPermutationsArbiter(4, np.random.default_rng(3))
    b = RandomPermutationsArbiter(4, np.random.default_rng(3))
    assert saturated_grants(a, 40, 4) == saturated_grants(b, 40, 4)


def test_long_run_slot_fairness(rng):
    arbiter = RandomPermutationsArbiter(4, rng)
    saturated_grants(arbiter, 1000, 4)
    assert arbiter.grants_per_master == [250, 250, 250, 250]


def test_reset_clears_permutation_window(rng):
    arbiter = RandomPermutationsArbiter(4, rng)
    saturated_grants(arbiter, 2, 4)
    arbiter.reset()
    assert arbiter.grants_per_master == [0, 0, 0, 0]
    order = saturated_grants(arbiter, 4, 4)
    assert sorted(order) == [0, 1, 2, 3]
